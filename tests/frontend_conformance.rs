//! Front-end conformance: the committed real-format fixtures under
//! `tests/fixtures/` must import, validate, and optimize to the frozen
//! golden outcomes under `tests/golden/` — and the outcome must be
//! identical under both kernel families (vector / scalar) and under
//! threads=1 vs threads=4. Regenerate snapshots (and the generated
//! `mixed16.sdf` fixture) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p wavemin --test frontend_conformance
//! ```

use std::path::PathBuf;
use std::sync::Mutex;
use wavemin::prelude::*;
use wavemin_cells::units::Picoseconds;
use wavemin_mosp::{kernels, Kernel};
use wavemin_testkit::golden;

/// Kernel selection is a process-wide switch; tests that force it must
/// not interleave.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn repo_tests_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests")
}

fn fixture(name: &str) -> String {
    let path = repo_tests_dir().join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn import_fixture(sdf: &str) -> wavemin::io::ImportedDesign {
    let lib = wavemin_cells::liberty::parse_library(&fixture("wavemin_cells.lib"))
        .expect("fixture library parses");
    wavemin::io::import_sdf(&fixture(sdf), lib).expect("fixture imports")
}

fn conformance_config(threads: usize) -> WaveMinConfig {
    WaveMinConfig::default()
        .with_sample_count(16)
        .with_skew_bound(Picoseconds::new(40.0))
        .with_threads(threads)
}

/// Optimizes `design` under every (kernel family × thread count) corner,
/// asserts all corners render identically, and returns the rendering.
fn render_all_corners(design: &Design) -> String {
    let _guard = KERNEL_LOCK.lock().unwrap();
    let run = |kernel: Kernel, threads: usize| {
        kernels::force(Some(kernel));
        let out = ClkWaveMin::new(conformance_config(threads))
            .run(design)
            .expect("optimize");
        kernels::force(None);
        golden::render_outcome(&out)
    };
    let vector_1 = run(Kernel::Vector, 1);
    let scalar_1 = run(Kernel::Scalar, 1);
    let vector_4 = run(Kernel::Vector, 4);
    assert_eq!(
        vector_1, scalar_1,
        "outcome must not depend on the kernel family"
    );
    assert_eq!(
        vector_1, vector_4,
        "outcome must not depend on the thread count"
    );
    vector_1
}

#[test]
fn tiny_tree_arrivals_are_exact() {
    let imp = import_fixture("tiny_tree.sdf");
    assert_eq!(imp.design.tree.len(), 7);
    assert_eq!(imp.design.tree.leaves().len(), 4);
    // Hand-computed chains from the fixture header: s0 lands at 58.0 ps,
    // s1..s3 at 58.25 ps (the inverting branch selects the fall slots).
    let timing = imp.design.timing(0).expect("timing");
    for (name, want) in [("s0", 58.0), ("s1", 58.25), ("s2", 58.25), ("s3", 58.25)] {
        let (chain_name, chain) = imp
            .sink_arrivals
            .iter()
            .find(|(n, _)| n == name)
            .expect("sink present");
        assert_eq!(chain.value(), want, "{chain_name}: SDF chain arrival");
        let id = imp.instances.iter().position(|n| n == name).unwrap();
        assert_eq!(
            timing.output_arrival[id].value(),
            want,
            "{name}: lowered design reproduces the arrival bit-for-bit"
        );
    }
    assert_eq!(imp.recovered_skew.value(), 0.25);
}

#[test]
fn tiny_tree_matches_golden_under_all_corners() {
    let imp = import_fixture("tiny_tree.sdf");
    let rendered = render_all_corners(&imp.design);
    golden::check_snapshot(
        &repo_tests_dir().join("golden"),
        "frontend_tiny_tree",
        &rendered,
    );
}

#[test]
fn mixed16_matches_golden_under_all_corners() {
    let imp = import_fixture("mixed16.sdf");
    assert_eq!(imp.design.tree.len(), 16);
    assert_eq!(imp.design.tree.leaves().len(), 12);
    let rendered = render_all_corners(&imp.design);
    golden::check_snapshot(
        &repo_tests_dir().join("golden"),
        "frontend_mixed16",
        &rendered,
    );
}

#[test]
fn mixed16_fixture_matches_its_generator() {
    // The fixture is the committed export of a testkit design; keep the
    // two in lockstep so the fixture never silently drifts from what the
    // exporter produces. GOLDEN_REGEN=1 rewrites the fixture (keeping
    // its comment header).
    let design = wavemin_testkit::designs::random_polarity_design(5, 3, 12);
    let generated = wavemin::io::export_sdf(&design).expect("export");
    let path = repo_tests_dir().join("fixtures").join("mixed16.sdf");
    let committed = fixture("mixed16.sdf");
    let header: String = committed
        .lines()
        .take_while(|l| l.starts_with("//"))
        .map(|l| format!("{l}\n"))
        .collect();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, format!("{header}{generated}")).expect("rewrite fixture");
        return;
    }
    let body: String = committed
        .lines()
        .skip_while(|l| l.starts_with("//"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        body, generated,
        "tests/fixtures/mixed16.sdf drifted from its generator; \
         regenerate with GOLDEN_REGEN=1"
    );
}
