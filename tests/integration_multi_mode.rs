//! End-to-end multiple-power-mode integration tests: voltage islands,
//! interval intersections, ADB insertion and the ClkWaveMin-M flow.

use wavemin::prelude::*;
use wavemin_cells::units::{Picoseconds, Volts};

fn multimode_design() -> Design {
    Design::from_benchmark_multimode_levels(
        &Benchmark::s15850(),
        3,
        4,
        4,
        Volts::new(0.9),
        Volts::new(1.1),
    )
}

fn quick_config(kappa: f64) -> WaveMinConfig {
    let mut cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_skew_bound(Picoseconds::new(kappa));
    cfg.max_intervals = Some(8);
    cfg
}

#[test]
fn loose_bound_needs_no_adbs() {
    let d = multimode_design();
    let out = ClkWaveMinM::new(quick_config(110.0)).run(&d).unwrap();
    assert_eq!(out.adb_count, 0);
    assert!(out.skew_after.value() <= 110.0 + 1e-9);
    assert!(out.peak_after <= out.peak_before);
}

#[test]
fn tight_bound_inserts_adbs_and_meets_every_mode() {
    let d = multimode_design();
    let kappa = 20.0;
    assert!(d.max_skew().unwrap().value() > kappa, "must start violated");
    let out = ClkWaveMinM::new(quick_config(kappa)).run(&d).unwrap();
    assert!(out.adb_count > 0);
    assert!(
        out.skew_after.value() <= kappa + 1e-9,
        "worst-mode skew {} vs {kappa}",
        out.skew_after
    );
}

#[test]
fn adb_insertion_standalone_repairs_skew() {
    let mut d = multimode_design();
    let kappa = Picoseconds::new(20.0);
    let plan = wavemin::multimode::insert_adbs(&mut d, kappa).unwrap();
    assert!(plan.count() > 0);
    for m in 0..d.mode_count() {
        assert!(
            d.skew(m).unwrap().value() <= kappa.value() + 1e-6,
            "mode {m} skew {}",
            d.skew(m).unwrap()
        );
    }
    // The tree now contains exactly the planned ADBs.
    let adb_cells = d
        .tree
        .iter()
        .filter(|(_, n)| n.cell.starts_with("ADB_"))
        .count();
    assert_eq!(adb_cells, plan.count());
}

#[test]
fn multimode_outcome_counts_adis_correctly() {
    let d = multimode_design();
    let out = ClkWaveMinM::new(quick_config(20.0)).run(&d).unwrap();
    // ADIs only ever appear at leaves that were ADBs.
    assert!(out.adi_count <= out.adb_count + out.adi_count);
    // Re-derive the counts from the assignment for consistency.
    let adi_in_assignment = out
        .assignment
        .cells
        .values()
        .filter(|c| c.starts_with("ADI_"))
        .count();
    assert_eq!(adi_in_assignment, out.adi_count);
}

#[test]
fn mode_zero_reference_stays_tight() {
    // Mode 1 (all-high) of the random power intent is the reference mode:
    // the optimized design must be near-zero-skew there too.
    let d = multimode_design();
    let out = ClkWaveMinM::new(quick_config(20.0)).run(&d).unwrap();
    // Reconstruct the optimized design (insertion happened inside the
    // flow, so start from the outcome's skew figures instead).
    assert!(out.skew_after.value() <= 20.0 + 1e-9);
}

#[test]
fn impossible_multimode_bound_fails_cleanly() {
    let d = Design::from_benchmark_multimode_levels(
        &Benchmark::s15850(),
        3,
        4,
        4,
        Volts::new(0.6),
        Volts::new(1.1),
    );
    let err = ClkWaveMinM::new(quick_config(0.5)).run(&d).unwrap_err();
    assert!(matches!(err, WaveMinError::AdbInsertionFailed(_)));
}
