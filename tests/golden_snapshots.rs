//! Golden snapshot tests: small canonical designs with frozen optimizer
//! output committed under `tests/golden/`. Any change to the numeric
//! kernels, dominance handling, or solver ordering that shifts a chosen
//! assignment or the achieved peak (beyond 1e-9 mA) diffs against these
//! files and must be an explicit, reviewed regeneration:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p wavemin --test golden_snapshots
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use wavemin::prelude::*;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Stable textual form of an outcome: the peak (full precision) and the
/// complete assignment (BTreeMaps iterate in node order, so the listing
/// is deterministic by construction).
fn render(out: &Outcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "peak_after_ma = {:.17e}", out.peak_after.value());
    let _ = writeln!(s, "assignment:");
    for (node, cell) in &out.assignment.cells {
        let _ = writeln!(s, "{}={}", node.0, cell);
    }
    for (mode, codes) in out.assignment.delay_codes.iter().enumerate() {
        let _ = writeln!(s, "delay_codes[{mode}]:");
        for (node, code) in codes {
            let _ = writeln!(s, "{}={:.17e}", node.0, code.value());
        }
    }
    s
}

fn peak_of(snapshot: &str) -> f64 {
    let line = snapshot
        .lines()
        .find(|l| l.starts_with("peak_after_ma = "))
        .expect("snapshot has a peak line");
    line["peak_after_ma = ".len()..]
        .trim()
        .parse()
        .expect("parsable peak")
}

fn check(name: &str, out: &Outcome) {
    let path = golden_dir().join(format!("{name}.txt"));
    let got = render(out);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with GOLDEN_REGEN=1",
            path.display()
        )
    });
    // Peak compares numerically to 1e-9 mA (robust to a formatting-only
    // regeneration); everything else — the assignment listing and delay
    // codes — must match the frozen text exactly.
    let got_peak = peak_of(&got);
    let want_peak = peak_of(&want);
    assert!(
        (got_peak - want_peak).abs() <= 1e-9,
        "{name}: peak {got_peak} differs from golden {want_peak}"
    );
    let tail = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("peak_after_ma"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        tail(&got),
        tail(&want),
        "{name}: assignment diverged from the golden snapshot"
    );
}

#[test]
fn clkwavemin_s15850_matches_golden() {
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    let mut cfg = WaveMinConfig::default().with_sample_count(16);
    cfg.max_intervals = Some(6);
    let out = ClkWaveMin::new(cfg).run(&d).expect("optimize");
    check("clkwavemin_s15850", &out);
}

#[test]
fn clkwavemin_s13207_matches_golden() {
    let d = Design::from_benchmark(&Benchmark::s13207(), 7);
    let mut cfg = WaveMinConfig::default().with_sample_count(16);
    cfg.max_intervals = Some(6);
    let out = ClkWaveMin::new(cfg).run(&d).expect("optimize");
    check("clkwavemin_s13207", &out);
}

#[test]
fn fast_variant_s15850_matches_golden() {
    let d = Design::from_benchmark(&Benchmark::s15850(), 11);
    let cfg = WaveMinConfig::default().with_sample_count(16);
    let out = ClkWaveMinFast::new(cfg).run(&d).expect("optimize");
    check("fast_s15850", &out);
}

#[test]
fn multimode_s15850_matches_golden() {
    let d = Design::from_benchmark_multimode_levels(
        &Benchmark::s15850(),
        3,
        4,
        4,
        wavemin_cells::units::Volts::new(0.9),
        wavemin_cells::units::Volts::new(1.1),
    );
    let cfg = WaveMinConfig::default()
        .with_skew_bound(wavemin_cells::units::Picoseconds::new(22.0))
        .with_sample_count(8);
    let out = ClkWaveMinM::new(cfg).run(&d).expect("optimize");
    check("multimode_s15850", &out);
}
