//! Golden snapshot tests: small canonical designs with frozen optimizer
//! output committed under `tests/golden/`. Any change to the numeric
//! kernels, dominance handling, or solver ordering that shifts a chosen
//! assignment or the achieved peak (beyond 1e-9 mA) diffs against these
//! files and must be an explicit, reviewed regeneration:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p wavemin --test golden_snapshots
//! ```

use std::path::PathBuf;
use wavemin::prelude::*;
use wavemin_testkit::{designs, golden};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn check(name: &str, out: &Outcome) {
    golden::check_snapshot(&golden_dir(), name, &golden::render_outcome(out));
}

#[test]
fn clkwavemin_s15850_matches_golden() {
    let d = designs::s15850(7);
    let mut cfg = WaveMinConfig::default().with_sample_count(16);
    cfg.max_intervals = Some(6);
    let out = ClkWaveMin::new(cfg).run(&d).expect("optimize");
    check("clkwavemin_s15850", &out);
}

#[test]
fn clkwavemin_s13207_matches_golden() {
    let d = designs::s13207(7);
    let mut cfg = WaveMinConfig::default().with_sample_count(16);
    cfg.max_intervals = Some(6);
    let out = ClkWaveMin::new(cfg).run(&d).expect("optimize");
    check("clkwavemin_s13207", &out);
}

#[test]
fn fast_variant_s15850_matches_golden() {
    let d = designs::s15850(11);
    let cfg = WaveMinConfig::default().with_sample_count(16);
    let out = ClkWaveMinFast::new(cfg).run(&d).expect("optimize");
    check("fast_s15850", &out);
}

#[test]
fn multimode_s15850_matches_golden() {
    let d = Design::from_benchmark_multimode_levels(
        &Benchmark::s15850(),
        3,
        4,
        4,
        wavemin_cells::units::Volts::new(0.9),
        wavemin_cells::units::Volts::new(1.1),
    );
    let cfg = WaveMinConfig::default()
        .with_skew_bound(wavemin_cells::units::Picoseconds::new(22.0))
        .with_sample_count(8);
    let out = ClkWaveMinM::new(cfg).run(&d).expect("optimize");
    check("multimode_s15850", &out);
}
