//! End-to-end single-power-mode integration tests: synthesis → timing →
//! preprocessing → optimization → evaluation, across all crates.

use wavemin::prelude::*;
use wavemin_cells::units::Picoseconds;

fn design() -> Design {
    Design::from_benchmark(&Benchmark::s13207(), 17)
}

fn quick_config() -> WaveMinConfig {
    let mut cfg = WaveMinConfig::default().with_sample_count(32);
    cfg.max_intervals = Some(8);
    cfg
}

#[test]
fn full_pipeline_reduces_peak_and_noise() {
    let d = design();
    let out = ClkWaveMin::new(quick_config()).run(&d).expect("optimize");
    assert!(out.peak_after < out.peak_before);
    assert!(out.vdd_noise_after <= out.vdd_noise_before);
    assert!(out.skew_after.value() <= 20.0 + 1e-9);
}

#[test]
fn wavemin_beats_or_matches_every_baseline() {
    let d = design();
    let cfg = quick_config();
    let wave = ClkWaveMin::new(cfg.clone()).run(&d).unwrap();
    let peakmin = ClkPeakMin::new(cfg.clone()).run(&d).unwrap();
    let nieh = NiehOppositePhase::new().run(&d).unwrap();
    // Table V shape: fine-grained WaveMin should not lose to the coarse
    // baselines (small tolerance for evaluation noise).
    assert!(
        wave.peak_after.value() <= peakmin.peak_after.value() * 1.05,
        "wavemin {} vs peakmin {}",
        wave.peak_after,
        peakmin.peak_after
    );
    assert!(
        wave.peak_after.value() <= nieh.peak_after.value() * 1.05,
        "wavemin {} vs nieh {}",
        wave.peak_after,
        nieh.peak_after
    );
}

#[test]
fn optimized_design_remains_structurally_valid() {
    let d = design();
    let out = ClkWaveMin::new(quick_config()).run(&d).unwrap();
    let mut optimized = d.clone();
    out.assignment.apply_to(&mut optimized);
    assert_eq!(
        optimized.tree.validate(|c| optimized.lib.get(c).is_some()),
        Ok(())
    );
    // Only leaves were touched.
    for id in optimized.tree.non_leaves() {
        assert_eq!(optimized.tree.node(id).cell, d.tree.node(id).cell);
    }
}

#[test]
fn assignment_only_uses_configured_candidates() {
    let d = design();
    let cfg = quick_config();
    let out = ClkWaveMin::new(cfg.clone()).run(&d).unwrap();
    for cell in out.assignment.cells.values() {
        assert!(
            cfg.assignment_cells.contains(cell),
            "unexpected cell {cell}"
        );
    }
}

#[test]
fn outcome_is_deterministic() {
    let d = design();
    let a = ClkWaveMin::new(quick_config()).run(&d).unwrap();
    let b = ClkWaveMin::new(quick_config()).run(&d).unwrap();
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.peak_after, b.peak_after);
}

#[test]
fn fast_variant_tracks_full_algorithm() {
    let d = design();
    let cfg = quick_config();
    let full = ClkWaveMin::new(cfg.clone()).run(&d).unwrap();
    let fast = ClkWaveMinFast::new(cfg).run(&d).unwrap();
    let ratio = fast.peak_after.value() / full.peak_after.value();
    assert!(ratio < 1.25, "greedy drifted too far: ratio {ratio}");
    assert!(fast.skew_after.value() <= 20.0 + 1e-9);
}

#[test]
fn skew_bound_sweep_trades_freedom_for_noise() {
    // A wider κ can only help (more feasible candidates).
    let d = design();
    let tight = ClkWaveMin::new(quick_config().with_skew_bound(Picoseconds::new(8.0)))
        .run(&d)
        .unwrap();
    let wide = ClkWaveMin::new(quick_config().with_skew_bound(Picoseconds::new(40.0)))
        .run(&d)
        .unwrap();
    assert!(
        wide.peak_after.value() <= tight.peak_after.value() * 1.1,
        "wide {} vs tight {}",
        wide.peak_after,
        tight.peak_after
    );
    assert!(tight.skew_after.value() <= 8.0 + 1e-9);
    assert!(wide.skew_after.value() <= 40.0 + 1e-9);
}

#[test]
fn monte_carlo_on_optimized_design() {
    let d = design();
    let out = ClkWaveMin::new(quick_config()).run(&d).unwrap();
    let mut optimized = d.clone();
    out.assignment.apply_to(&mut optimized);
    let stats = MonteCarlo::new(
        wavemin_clocktree::variation::VariationModel::default(),
        25,
        Picoseconds::new(100.0),
    )
    .run(&optimized, 5)
    .unwrap();
    assert!(stats.skew_yield > 0.8, "yield {}", stats.skew_yield);
    assert!(stats.peak.normalized() < 0.25);
}
