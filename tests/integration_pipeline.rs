//! Cross-crate consistency checks: the same physical quantities seen
//! through different layers (characterizer ↔ noise table ↔ evaluator ↔
//! power grid) must agree.

use wavemin::prelude::*;
use wavemin_cells::characterize::{ClockEdge, Rail};
use wavemin_cells::units::{MicroAmps, Microns, Picoseconds};
use wavemin_pgrid::{GridOptions, PowerGrid};

fn design() -> Design {
    Design::from_benchmark(&Benchmark::s15850(), 11)
}

#[test]
fn noise_table_matches_direct_characterization() {
    let d = design();
    let cfg = WaveMinConfig::default();
    let table = NoiseTable::build(&d, &cfg, 0).unwrap();
    let timing = d.timing(0).unwrap();
    for entry in &table.sinks {
        let node = d.tree.node(entry.node);
        assert_eq!(entry.input_arrival, timing.input_arrival[entry.node.0]);
        assert_eq!(entry.load, node.sink_cap);
        // The BUF_X8 option's delay must equal what timing analysis uses
        // for the current BUF_X8 leaf (same characterizer, same inputs).
        let opt = entry
            .options
            .iter()
            .find(|o| o.cell == "BUF_X8")
            .expect("initial cell is a candidate");
        let slew = timing.input_slew[entry.node.0].max(cfg.profiling_slew);
        let (t_d, _) = d.chr.timing(
            d.lib.get("BUF_X8").unwrap(),
            node.sink_cap,
            slew,
            wavemin_cells::units::Volts::new(1.1),
            entry.input_edge,
        );
        assert!((opt.delay - t_d).abs().value() < 1e-9);
    }
}

#[test]
fn evaluator_total_equals_sum_of_node_waveforms() {
    let d = design();
    let eval = NoiseEvaluator::new(&d);
    let (per_node, total) = eval.waveforms(0).unwrap();
    for (rail, event) in wavemin::noise_table::EventWaveforms::SLOTS {
        let t = total.get(rail, event).peak_time();
        let Some(t) = t else { continue };
        let manual: f64 = per_node
            .iter()
            .map(|w| w.get(rail, event).sample(t).value())
            .sum();
        let direct = total.get(rail, event).sample(t).value();
        assert!(
            (manual - direct).abs() < 1e-6,
            "{rail:?}/{event:?}: {manual} vs {direct}"
        );
    }
}

#[test]
fn grid_noise_scales_with_injected_current() {
    // Doubling every node's current must double the IR drop (linearity of
    // the resistive mesh as used by the evaluator).
    let d = design();
    let (per_node, total) = NoiseEvaluator::new(&d).waveforms(0).unwrap();
    let t_star = total.vdd_rise.peak_time().unwrap();
    let grid = PowerGrid::over_die(
        Microns::new(d.tree.iter().fold(50.0_f64, |m, (_, n)| {
            m.max(n.location.x.value()).max(n.location.y.value())
        })),
        GridOptions::default(),
    );
    let base: Vec<((f64, f64), MicroAmps)> = d
        .tree
        .iter()
        .map(|(id, n)| {
            (
                (n.location.x.value(), n.location.y.value()),
                per_node[id.0]
                    .get(Rail::Vdd, ClockEdge::Rise)
                    .sample(t_star),
            )
        })
        .collect();
    let doubled: Vec<((f64, f64), MicroAmps)> = base.iter().map(|&(p, i)| (p, i * 2.0)).collect();
    let v1 = grid.ir_drop(&base).value();
    let v2 = grid.ir_drop(&doubled).value();
    assert!((v2 - 2.0 * v1).abs() < 0.05 * v2.max(1e-9), "{v1} vs {v2}");
}

#[test]
fn charge_conservation_through_the_stack() {
    // Total charge of a leaf's table waveform equals the charge of a fresh
    // characterization with the same operating point.
    let d = design();
    let cfg = WaveMinConfig::default();
    let table = NoiseTable::build(&d, &cfg, 0).unwrap();
    let timing = d.timing(0).unwrap();
    let entry = &table.sinks[0];
    let slew = timing.input_slew[entry.node.0].max(cfg.profiling_slew);
    let profile = d.chr.characterize(
        d.lib.get("INV_X8").unwrap(),
        entry.load,
        slew,
        wavemin_cells::units::Volts::new(1.1),
    );
    let opt = entry.options.iter().find(|o| o.cell == "INV_X8").unwrap();
    // Shifting does not change charge.
    let direct = match entry.input_edge {
        ClockEdge::Rise => profile.idd_rise.charge_fc(),
        ClockEdge::Fall => profile.idd_fall.charge_fc(),
    };
    assert!((opt.waves.vdd_rise.charge_fc() - direct).abs() < 1e-9);
}

#[test]
fn mosp_solution_is_reproducible_from_pieces() {
    // Build a WaveMin-shaped MOSP graph by hand and check the solver picks
    // the same kind of min-max split the optimizer relies on.
    use wavemin_mosp::{solve, MospGraph};
    let mut g = MospGraph::new(4);
    let src = g.add_vertex();
    let a_buf = g.add_vertex();
    let a_inv = g.add_vertex();
    let b_buf = g.add_vertex();
    let b_inv = g.add_vertex();
    let dest = g.add_vertex();
    // slots: [vdd_rise, gnd_rise, vdd_fall, gnd_fall]
    let buf = vec![100.0, 10.0, 10.0, 90.0];
    let inv = vec![10.0, 90.0, 100.0, 10.0];
    g.add_arc(src, a_buf, buf.clone()).unwrap();
    g.add_arc(src, a_inv, inv.clone()).unwrap();
    for u in [a_buf, a_inv] {
        g.add_arc(u, b_buf, buf.clone()).unwrap();
        g.add_arc(u, b_inv, inv.clone()).unwrap();
    }
    for u in [b_buf, b_inv] {
        g.add_arc(u, dest, vec![0.0; 4]).unwrap();
    }
    let set = solve::warburton(&g, src, dest, 0.01).unwrap();
    let best = set.min_max().unwrap();
    // Min-max splits one buffer + one inverter: worst slot 110.
    assert!((best.max_component() - 110.0).abs() < 2.0);
    let used_buf = best.vertices.contains(&a_buf) || best.vertices.contains(&b_buf);
    let used_inv = best.vertices.contains(&a_inv) || best.vertices.contains(&b_inv);
    assert!(used_buf && used_inv);
}

#[test]
fn timing_is_stable_under_identity_adjust() {
    use wavemin_clocktree::timing::TimingAdjust;
    let d = design();
    let supply = d.power.supply_for(&d.tree, 0);
    let plain = Timing::analyze(&d.tree, &d.lib, &d.chr, d.wire, &supply, None).unwrap();
    let adjusted = Timing::analyze(
        &d.tree,
        &d.lib,
        &d.chr,
        d.wire,
        &supply,
        Some(&TimingAdjust::identity()),
    )
    .unwrap();
    assert_eq!(plain, adjusted);
    let _ = Picoseconds::ZERO;
}
