//! Offline stand-in for `rand_chacha` 0.3: a deterministic [`ChaCha8Rng`]
//! implementing the vendored [`rand`] traits.
//!
//! The generator is a faithful ChaCha (8 rounds) keystream, so its
//! statistical quality matches the real crate; the exact bit stream for a
//! given seed is **not** guaranteed to match upstream (no repo code relies
//! on that — seeds only need to be deterministic within this workspace).

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A deterministic, seedable ChaCha8-based RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "exhausted".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(input) {
            *s = s.wrapping_add(i);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
