//! Offline stand-in for `criterion`: the build environment has no
//! crates.io access, so the workspace vendors a minimal harness with the
//! same API surface the benches use (`Criterion`, benchmark groups,
//! `bench_with_input`, `BenchmarkId`, `black_box`, the `criterion_group!`
//! / `criterion_main!` macros). It reports a simple median ns/iter over a
//! handful of timed batches — good enough to eyeball regressions, with no
//! statistical machinery or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark is allowed to spend measuring.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Timed batches per benchmark (median is reported).
const BATCHES: usize = 5;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering `parameter` (matches the real crate's constructor).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        Self(format!("{}/{}", function.into(), parameter))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    name: String,
}

impl Bencher {
    /// Runs `f` repeatedly and prints a median ns/iter estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call (also sanity-checks the closure).
        black_box(f());
        let mut per_iter: Vec<f64> = Vec::with_capacity(BATCHES);
        let budget_per_batch = MEASURE_BUDGET / BATCHES as u32;
        for _ in 0..BATCHES {
            let start = Instant::now();
            let mut iters = 0u64;
            loop {
                black_box(f());
                iters += 1;
                if start.elapsed() >= budget_per_batch {
                    break;
                }
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        println!("bench: {:<50} {:>14.1} ns/iter", self.name, median);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            name: format!("{}/{}", self.name, id),
        };
        f(&mut b);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            name: format!("{}/{}", self.name, id),
        };
        f(&mut b, input);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            name: name.to_string(),
        };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Declares a group of benchmark functions, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
