//! Offline stand-in for `serde`: the build environment has no crates.io
//! access, so the workspace vendors a minimal serialization facility with
//! the same import surface (`use serde::{Serialize, Deserialize};` plus
//! `#[derive(Serialize, Deserialize)]` and the `#[serde(...)]` attributes
//! the repo uses).
//!
//! Design: instead of serde's visitor architecture, [`Serialize`] builds a
//! [`Value`] tree that `serde_json` renders. That keeps the derive macro
//! (hand-written, no `syn`/`quote`) and the JSON writer trivially simple
//! while producing the same JSON shape as real serde for the types in this
//! workspace. [`Deserialize`] is a marker trait only — nothing in the repo
//! parses JSON back in.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// A JSON-shaped value tree produced by [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number (non-finite values render as `null`).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

/// Types renderable to a JSON [`Value`]. Implemented by
/// `#[derive(Serialize)]` and for the std types the workspace serializes.
pub trait Serialize {
    /// Renders `self` as a JSON-shaped value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait paired with `#[derive(Deserialize)]`. The workspace never
/// deserializes, so no methods are required.
pub trait Deserialize {}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: ToString + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Map(
        entries
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect(),
    )
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut m = match map_to_value(self.iter()) {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        m.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(m)
    }
}
impl<K, V: Deserialize, S> Deserialize for HashMap<K, V, S> {}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // Matches real serde's {secs, nanos} encoding.
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
impl Deserialize for Duration {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impls_shape() {
        assert_eq!(1u32.to_value(), Value::UInt(1));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            (1u8, "x".to_string()).to_value(),
            Value::Seq(vec![Value::UInt(1), Value::Str("x".into())])
        );
    }
}
