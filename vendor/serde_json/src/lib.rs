//! Offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] tree produced by `#[derive(Serialize)]` as JSON text.
//! Only the writer half exists — the workspace never parses JSON back in.

use serde::{Serialize, Value};
use std::fmt;

/// Error type for JSON rendering. Rendering a value tree cannot actually
/// fail, so this exists purely for signature compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent, the same
/// layout as real `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from ints (serde_json
                // prints 1.0 as "1.0").
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Float(0.5), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[0.5,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"), "{pretty}");
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".to_string());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }
}
