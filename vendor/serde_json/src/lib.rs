//! Offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] tree produced by `#[derive(Serialize)]` as JSON text,
//! and parses JSON text back into a [`Value`] tree ([`from_str`]). There is
//! no typed deserialization — consumers that read JSON decode the `Value`
//! tree by hand.

use serde::{Serialize, Value};
use std::fmt;

/// Error type for JSON rendering. Rendering a value tree cannot actually
/// fail, so this exists purely for signature compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent, the same
/// layout as real `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] describing the first syntax problem (position and
/// what was expected).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected '{}' at byte {}",
            char::from(c),
            *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".to_string())),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(Error(format!("expected '{kw}' at byte {}", *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error(format!("bad \\u escape '{hex}'")))?;
                        // Surrogates are not paired up — the writer never
                        // emits them for this workspace's data.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive
                // already valid: the input is a &str).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| Error(format!("invalid UTF-8 in string at byte {start}")))?,
                );
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| Error(format!("invalid number at byte {start}")))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected a value at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number '{text}'")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error(format!("bad number '{text}'")))
    } else {
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| Error(format!("bad number '{text}'")))
    }
}

fn write_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from ints (serde_json
                // prints 1.0 as "1.0").
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Float(0.5), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[0.5,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"), "{pretty}");
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".to_string());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn parses_what_it_writes() {
        let v = Value::Map(vec![
            ("n".to_string(), Value::Null),
            ("t".to_string(), Value::Bool(true)),
            ("i".to_string(), Value::Int(-42)),
            ("u".to_string(), Value::UInt(7)),
            ("f".to_string(), Value::Float(2.5)),
            ("s".to_string(), Value::Str("a\"b\\c\nd µ".to_string())),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::UInt(1), Value::Seq(vec![])]),
            ),
            ("empty".to_string(), Value::Map(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("\"abc").is_err());
        assert!(from_str("-").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_floats() {
        assert_eq!(from_str(r#""A\t""#).unwrap(), Value::Str("A\t".to_string()));
        assert_eq!(from_str("1.5e3").unwrap(), Value::Float(1500.0));
        assert_eq!(from_str("-3").unwrap(), Value::Int(-3));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }
}
