//! Hand-written `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stand-in. No `syn`/`quote` — the item is parsed
//! directly from the raw token stream, which is sufficient for the
//! non-generic structs and enums this workspace derives on.
//!
//! Supported shapes: named structs, tuple structs, unit structs, and enums
//! with unit / tuple / struct variants. Supported attributes:
//! `#[serde(transparent)]` (container) and `#[serde(skip)]` (field).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: Option<String>,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    shape: Shape,
    transparent: bool,
}

/// Returns the contents of a `#[serde(...)]` attribute body ("skip",
/// "transparent", ...) or `None` for other attributes.
fn serde_attr_body(bracket: &TokenTree) -> Option<String> {
    let TokenTree::Group(g) = bracket else {
        return None;
    };
    let mut it = g.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    match it.next() {
        Some(TokenTree::Group(body)) => Some(body.stream().to_string()),
        _ => None,
    }
}

/// Consumes leading attributes at `*i`, returning (skip, transparent)
/// accumulated from any `#[serde(...)]` among them.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let mut skip = false;
    let mut transparent = false;
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        if let Some(body) = serde_attr_body(&tokens[*i + 1]) {
            if body.contains("skip") {
                skip = true;
            }
            if body.contains("transparent") {
                transparent = true;
            }
        }
        *i += 2;
    }
    (skip, transparent)
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn eat_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skips a type (or any expression) up to the next top-level comma,
/// tracking `<...>` nesting so commas inside generics don't split fields.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, _) = eat_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        eat_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field `{name}`, got {other:?}")),
        }
        skip_to_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
        fields.push(Field {
            name: Some(name),
            skip,
        });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, _) = eat_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        eat_vis(&tokens, &mut i);
        skip_to_comma(&tokens, &mut i);
        i += 1;
        fields.push(Field { name: None, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _ = eat_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(parse_tuple_fields(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant`, then the separating comma.
        skip_to_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let (_, transparent) = eat_attrs(&tokens, &mut i);
    eat_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    let shape = if keyword == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("expected struct body, got {other:?}")),
        }
    };
    Ok(Item {
        name,
        shape,
        transparent,
    })
}

fn named_map_expr(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from("::serde::Value::Map(<[_]>::into_vec(Box::new([");
    for f in fields.iter().filter(|f| !f.skip) {
        let name = f.name.as_deref().unwrap_or_default();
        out.push_str(&format!(
            "({name:?}.to_string(), ::serde::Serialize::to_value({})),",
            accessor(name)
        ));
    }
    out.push_str("])))");
    out
}

fn serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent && live.len() == 1 {
                format!(
                    "::serde::Serialize::to_value(&self.{})",
                    live[0].name.as_deref().unwrap_or_default()
                )
            } else {
                named_map_expr(fields, |f| format!("&self.{f}"))
            }
        }
        Shape::Tuple(fields) => {
            let live: Vec<usize> = fields
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.skip)
                .map(|(i, _)| i)
                .collect();
            if live.len() == 1 {
                // Newtype structs serialize as their inner value (real serde
                // behaviour; also covers #[serde(transparent)]).
                format!("::serde::Serialize::to_value(&self.{})", live[0])
            } else {
                let items: String = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Seq(<[_]>::into_vec(Box::new([{items}])))")
            }
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "Self::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let pat = binds.join(", ");
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!("::serde::Value::Seq(<[_]>::into_vec(Box::new([{items}])))")
                        };
                        arms.push_str(&format!(
                            "Self::{vn}({pat}) => ::serde::Value::Map(<[_]>::into_vec(Box::new([({vn:?}.to_string(), {inner})]))),"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let pat: String = fields
                            .iter()
                            .filter_map(|f| f.name.as_deref())
                            .map(|f| format!("{f},"))
                            .collect();
                        let inner = named_map_expr(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "Self::{vn} {{ {pat} }} => ::serde::Value::Map(<[_]>::into_vec(Box::new([({vn:?}.to_string(), {inner})]))),"
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .unwrap_or_default()
}

/// Derives the vendored `serde::Serialize` (JSON value-tree rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => match serialize_impl(&item).parse() {
            Ok(ts) => ts,
            Err(e) => compile_error(&format!("serde_derive emitted invalid code: {e}")),
        },
        Err(e) => compile_error(&e),
    }
}

/// Derives the vendored `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let name = &item.name;
            format!("#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{}}")
                .parse()
                .unwrap_or_default()
        }
        Err(e) => compile_error(&e),
    }
}
