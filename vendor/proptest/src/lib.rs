//! Offline stand-in for `proptest`: a miniature property-testing framework
//! with the same surface the workspace's tests use — the `proptest!` macro,
//! [`Strategy`] (ranges, tuples, `collection::vec`, `bool::ANY`,
//! `prop_map`, `prop_flat_map`), `prop_assert!`/`prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: cases are drawn from a deterministic
//! per-test ChaCha8 stream (seeded from the test name), and failing inputs
//! are reported but **not shrunk**.

use std::ops::{Range, RangeInclusive};

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The random source handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes this strategy (parity with the real crate's `.boxed()`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

trait StrategyObject {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Something usable as the size argument of [`vec`]: a fixed size or a
    /// range of sizes.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` for each configured case with a deterministic RNG; on
    /// panic, reports the case number and seed before propagating.
    pub fn run<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut case: F) {
        let base = fnv1a(name);
        for i in 0..config.cases {
            let seed = base.wrapping_add(u64::from(i));
            let mut rng = TestRng::seed_from_u64(seed);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng);
            }));
            if let Err(payload) = result {
                eprintln!("proptest: property `{name}` failed at case {i} (rng seed {seed:#x})");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The usual glob import for tests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy};
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two expressions are unequal for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_and_tuples((a, b) in (0.0..1.0f64, 1usize..5), flag in prop::bool::ANY) {
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((1..5).contains(&b));
            let _ = flag;
        }

        fn vec_lengths(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        fn flat_map_dependent(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0.0..1.0f64, n * 2))) {
            prop_assert_eq!(v.len() % 2, 0);
        }
    }
}
