//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset: [`RngCore`], [`Rng`]
//! (`gen_range`/`gen_bool`/`gen`), and [`SeedableRng`] with
//! `seed_from_u64`. Distribution quality matches what the callers need
//! (uniform floats/ints, Bernoulli); it does **not** reproduce the bit
//! streams of the real crate.

/// The core of a random number generator: a source of random `u32`/`u64`
/// words and raw bytes.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range requires start < end");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the (exclusive) end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range requires start <= end");
        lo + (hi - lo) * unit_f64(rng)
    }
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Rejection sampling to avoid modulo bias.
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range requires start <= end");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        unit_f64(self) < p
    }

    /// Returns a random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (stand-in for the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for all implementations here).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 the same
    /// way for every generator so seeds stay stable across RNG types.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sub-modules mirroring the real crate's layout for `use rand::rngs::...`
/// style imports.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let f = rng.gen_range(0.0..3.5);
            assert!((0.0..3.5).contains(&f));
            let u = rng.gen_range(2usize..9);
            assert!((2..9).contains(&u));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
