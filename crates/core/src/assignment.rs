//! The result of an optimization: the sink → cell mapping φ.

use crate::design::Design;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wavemin_cells::units::Picoseconds;
use wavemin_cells::{CellKind, Polarity};
use wavemin_clocktree::NodeId;

/// A mapping from sinks to library cells, plus per-mode delay codes for
/// adjustable cells (Problem 1's φ, extended for multiple power modes).
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Cell per reassigned sink (sinks absent keep their current cell).
    pub cells: BTreeMap<NodeId, String>,
    /// Per-mode adjustable-delay codes: `delay_codes[mode][node]`.
    pub delay_codes: Vec<BTreeMap<NodeId, Picoseconds>>,
}

impl Assignment {
    /// An empty assignment (changes nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sink's cell choice.
    pub fn set(&mut self, sink: NodeId, cell: impl Into<String>) {
        self.cells.insert(sink, cell.into());
    }

    /// Records an adjustable-delay code for `mode`.
    pub fn set_delay_code(&mut self, mode: usize, sink: NodeId, code: Picoseconds) {
        if self.delay_codes.len() <= mode {
            self.delay_codes.resize(mode + 1, BTreeMap::new());
        }
        self.delay_codes[mode].insert(sink, code);
    }

    /// Number of reassigned sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when nothing is reassigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Applies the assignment to a design: swaps leaf cells and installs
    /// the per-mode delay codes.
    ///
    /// # Panics
    ///
    /// Panics if a delay-code mode index exceeds the design's mode count.
    pub fn apply_to(&self, design: &mut Design) {
        for (&node, cell) in &self.cells {
            design.tree.set_cell(node, cell.clone());
        }
        for (mode, codes) in self.delay_codes.iter().enumerate() {
            assert!(
                mode < design.mode_adjust.len(),
                "delay codes reference mode {mode} beyond the design's modes"
            );
            for (&node, &code) in codes {
                design.mode_adjust[mode].set_extra_delay(node, code);
            }
        }
    }

    /// Counts `(positive, negative)` polarity sinks in the assignment,
    /// given the design's library.
    #[must_use]
    pub fn polarity_counts(&self, design: &Design) -> (usize, usize) {
        let mut pos = 0;
        let mut neg = 0;
        for cell in self.cells.values() {
            match design.lib.get(cell).map(|c| c.polarity()) {
                Some(Polarity::Positive) => pos += 1,
                Some(Polarity::Negative) => neg += 1,
                None => {}
            }
        }
        (pos, neg)
    }

    /// Counts sinks assigned to each cell kind.
    #[must_use]
    pub fn kind_counts(&self, design: &Design) -> BTreeMap<CellKind, usize> {
        let mut map = BTreeMap::new();
        for cell in self.cells.values() {
            if let Some(spec) = design.lib.get(cell) {
                *map.entry(spec.kind()).or_insert(0) += 1;
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavemin_clocktree::Benchmark;

    #[test]
    fn apply_swaps_cells() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaves = d.leaves();
        let mut a = Assignment::new();
        a.set(leaves[0], "INV_X8");
        a.set(leaves[1], "BUF_X16");
        a.apply_to(&mut d);
        assert_eq!(d.tree.node(leaves[0]).cell, "INV_X8");
        assert_eq!(d.tree.node(leaves[1]).cell, "BUF_X16");
        assert_eq!(d.tree.node(leaves[2]).cell, "BUF_X8", "untouched sink");
    }

    #[test]
    fn apply_installs_delay_codes() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaf = d.leaves()[0];
        let mut a = Assignment::new();
        a.set(leaf, "ADB_X8");
        a.set_delay_code(0, leaf, Picoseconds::new(7.5));
        a.apply_to(&mut d);
        assert_eq!(d.mode_adjust[0].extra_delay[leaf.0], Picoseconds::new(7.5));
    }

    #[test]
    fn polarity_and_kind_counts() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaves = d.leaves();
        let mut a = Assignment::new();
        a.set(leaves[0], "INV_X8");
        a.set(leaves[1], "INV_X16");
        a.set(leaves[2], "BUF_X8");
        let (pos, neg) = a.polarity_counts(&d);
        assert_eq!((pos, neg), (1, 2));
        let kinds = a.kind_counts(&d);
        assert_eq!(kinds[&CellKind::Inverter], 2);
        assert_eq!(kinds[&CellKind::Buffer], 1);
    }

    #[test]
    fn empty_assignment_is_identity() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let before = d.tree.clone();
        Assignment::new().apply_to(&mut d);
        assert_eq!(d.tree, before);
        assert!(Assignment::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond the design's modes")]
    fn out_of_range_mode_panics() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaf = d.leaves()[0];
        let mut a = Assignment::new();
        a.set_delay_code(3, leaf, Picoseconds::new(1.0));
        a.apply_to(&mut d);
    }
}
