//! Content-hashed zone-result journal for checkpoint/resume.
//!
//! `optimize --checkpoint PATH` appends each completed zone's solution to
//! a line-oriented journal as it lands; `--resume` replays the journal
//! and re-solves only the zones it cannot vouch for. The file is the
//! deliberate seed of the future serve-mode per-zone solution cache: keys
//! are *content* hashes, so a stale or foreign entry can never be
//! mistaken for a hit — it is simply never looked up.
//!
//! # Format
//!
//! ```text
//! wavemin-checkpoint v1 fingerprint=<hex16>
//! zone <key hex16> <cost-bits hex16> <n> <sink>:<code-bits hex16> ...
//! ```
//!
//! The header fingerprint hashes the characterized design and the solver
//! configuration; a mismatch invalidates every entry. Each entry's key is
//! drawn from a per-interval *hash chain* ([`ZoneKeyChain`]): the chain
//! starts from the fingerprint and the interval bounds and absorbs every
//! earlier zone's solution in solve order. Zones are solved against the
//! accumulated background noise of their predecessors, so a zone's key
//! changes whenever anything it depends on changes — hit means bit-for-bit
//! reusable. Costs and delay codes are stored as raw `f64` bit patterns,
//! so a resumed run reproduces the uninterrupted run exactly.
//!
//! Lines are flushed per zone; a killed process leaves at most one
//! truncated trailing line, which the loader ignores.

use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::Mutex;
use wavemin_cells::units::Picoseconds;

/// Journal format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: &str = "v1";

const HEADER_TAG: &str = "wavemin-checkpoint";

/// FNV-1a 64 over raw bytes — the journal's only hash primitive.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the characterized design + solver configuration. Any
/// change to either invalidates every checkpoint entry.
///
/// Run-plumbing fields that cannot change a zone's solution — the worker
/// count, observability switches, and the checkpoint/resume flags
/// themselves — are normalized out before hashing, so an interrupted run
/// and its `--resume` continuation (or a re-run with `--trace` added)
/// agree on the fingerprint. Everything semantic stays in, including the
/// fault plan (injection changes solve results) and the time budget.
///
/// # Errors
///
/// Returns [`WaveMinError::Checkpoint`] if serialization fails.
pub fn design_fingerprint(design: &Design, config: &WaveMinConfig) -> Result<u64, WaveMinError> {
    let d = serde_json::to_string(design)
        .map_err(|e| WaveMinError::Checkpoint(format!("design fingerprint: {e}")))?;
    let mut canon = config.clone();
    canon.threads = None;
    canon.collect_metrics = false;
    canon.trace_spans = false;
    canon.checkpoint_path = None;
    canon.resume = false;
    let c = serde_json::to_string(&canon)
        .map_err(|e| WaveMinError::Checkpoint(format!("config fingerprint: {e}")))?;
    let mut h = fnv1a(d.as_bytes());
    h ^= fnv1a(c.as_bytes()).rotate_left(29);
    Ok(h)
}

/// A journalled zone solution: the min–max cost and the per-sink delay
/// codes, both as exact `f64` bit patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedZone {
    /// `ZoneSolution::cost` bits.
    pub cost_bits: u64,
    /// `(sink index, delay-code bits)` per chosen option.
    pub choices: Vec<(usize, u64)>,
}

impl CachedZone {
    /// The cost as an `f64` (bit-exact round trip).
    #[must_use]
    pub fn cost(&self) -> f64 {
        f64::from_bits(self.cost_bits)
    }

    /// The choices as `(sink, Picoseconds)` pairs (bit-exact round trip).
    #[must_use]
    pub fn choices_ps(&self) -> Vec<(usize, Picoseconds)> {
        self.choices
            .iter()
            .map(|&(s, bits)| (s, Picoseconds::new(f64::from_bits(bits))))
            .collect()
    }
}

/// The per-interval key chain. Seeded from the design fingerprint and the
/// interval bounds; absorbs each solved zone in solve order so a zone's
/// key covers everything its accumulated-background input depends on.
#[derive(Debug, Clone)]
pub struct ZoneKeyChain {
    h: u64,
}

impl ZoneKeyChain {
    /// Starts a chain for one feasible interval.
    #[must_use]
    pub fn new(fingerprint: u64, t_lo: Picoseconds, t_hi: Picoseconds) -> Self {
        let mut h = fingerprint;
        h = step(h, t_lo.value().to_bits());
        h = step(h, t_hi.value().to_bits());
        Self { h }
    }

    /// The lookup/record key for `zone` at the chain's current state.
    #[must_use]
    pub fn key_for(&self, zone: usize) -> u64 {
        step(self.h, zone as u64 ^ 0x5a5a_5a5a_5a5a_5a5a)
    }

    /// Absorbs a completed zone's solution, advancing the chain for every
    /// zone solved after it.
    pub fn absorb(&mut self, zone: usize, cost_bits: u64, choices: &[(usize, Picoseconds)]) {
        self.h = step(self.h, zone as u64);
        self.h = step(self.h, cost_bits);
        for &(sink, code) in choices {
            self.h = step(self.h, sink as u64);
            self.h = step(self.h, code.value().to_bits());
        }
    }
}

/// One avalanche step of the chain (splitmix64 finalizer over `h ^ x`).
#[inline]
fn step(h: u64, x: u64) -> u64 {
    let mut z = (h ^ x).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Inner {
    writer: BufWriter<File>,
    cache: HashMap<u64, CachedZone>,
}

/// The append-only journal handle shared by zone workers.
pub struct CheckpointJournal {
    path: String,
    inner: Mutex<Inner>,
}

impl CheckpointJournal {
    /// Opens (or creates) the journal at `path` for `fingerprint`.
    ///
    /// With `resume` set, an existing journal whose header fingerprint
    /// matches is loaded into the hit cache and appended to; a missing
    /// file, mismatched fingerprint, or unreadable header starts fresh
    /// (every zone dirty). Without `resume`, the file is truncated.
    ///
    /// # Errors
    ///
    /// Returns [`WaveMinError::Checkpoint`] on I/O failure.
    pub fn open(path: &str, fingerprint: u64, resume: bool) -> Result<Self, WaveMinError> {
        let cache = if resume {
            load_entries(path, fingerprint)
        } else {
            None
        };
        match cache {
            Some(cache) => {
                let file = OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| WaveMinError::Checkpoint(format!("{path}: {e}")))?;
                Ok(Self {
                    path: path.to_string(),
                    inner: Mutex::new(Inner {
                        writer: BufWriter::new(file),
                        cache,
                    }),
                })
            }
            None => {
                let file = File::create(path)
                    .map_err(|e| WaveMinError::Checkpoint(format!("{path}: {e}")))?;
                let mut writer = BufWriter::new(file);
                writeln!(
                    writer,
                    "{HEADER_TAG} {FORMAT_VERSION} fingerprint={fingerprint:016x}"
                )
                .and_then(|()| writer.flush())
                .map_err(|e| WaveMinError::Checkpoint(format!("{path}: {e}")))?;
                Ok(Self {
                    path: path.to_string(),
                    inner: Mutex::new(Inner {
                        writer,
                        cache: HashMap::new(),
                    }),
                })
            }
        }
    }

    /// Number of reusable entries loaded at open.
    #[must_use]
    pub fn loaded(&self) -> usize {
        self.lock().cache.len()
    }

    /// Looks up a zone by its chain key.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<CachedZone> {
        self.lock().cache.get(&key).cloned()
    }

    /// Appends a completed zone and flushes, so a killed process loses at
    /// most the zone in flight.
    ///
    /// # Errors
    ///
    /// Returns [`WaveMinError::Checkpoint`] on I/O failure.
    pub fn record(
        &self,
        key: u64,
        cost_bits: u64,
        choices: &[(usize, Picoseconds)],
    ) -> Result<(), WaveMinError> {
        let mut line = format!("zone {key:016x} {cost_bits:016x} {}", choices.len());
        for &(sink, code) in choices {
            use std::fmt::Write as _;
            let _ = write!(line, " {sink}:{:016x}", code.value().to_bits());
        }
        let mut g = self.lock();
        writeln!(g.writer, "{line}")
            .and_then(|()| g.writer.flush())
            .map_err(|e| WaveMinError::Checkpoint(format!("{}: {e}", self.path)))?;
        g.cache.insert(
            key,
            CachedZone {
                cost_bits,
                choices: choices
                    .iter()
                    .map(|&(s, c)| (s, c.value().to_bits()))
                    .collect(),
            },
        );
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker that panicked mid-append can only have poisoned the
        // lock after its own writeln completed or failed atomically at
        // the line level; the cache and writer state remain coherent.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Parses an existing journal; `None` means "start fresh" (missing file,
/// wrong header, or fingerprint mismatch). Unparseable entry lines —
/// including a truncated trailing line from a killed process — are
/// skipped, not fatal.
fn load_entries(path: &str, fingerprint: u64) -> Option<HashMap<u64, CachedZone>> {
    let file = File::open(path).ok()?;
    let mut lines = BufReader::new(file).lines();
    let header = lines.next()?.ok()?;
    let expect = format!("{HEADER_TAG} {FORMAT_VERSION} fingerprint={fingerprint:016x}");
    if header != expect {
        return None;
    }
    let mut cache = HashMap::new();
    for line in lines {
        let Ok(line) = line else { break };
        if let Some((key, entry)) = parse_entry(&line) {
            cache.insert(key, entry);
        }
    }
    Some(cache)
}

fn parse_entry(line: &str) -> Option<(u64, CachedZone)> {
    let mut it = line.split_ascii_whitespace();
    if it.next()? != "zone" {
        return None;
    }
    let key = u64::from_str_radix(it.next()?, 16).ok()?;
    let cost_bits = u64::from_str_radix(it.next()?, 16).ok()?;
    let n: usize = it.next()?.parse().ok()?;
    let mut choices = Vec::with_capacity(n);
    for _ in 0..n {
        let (sink, bits) = it.next()?.split_once(':')?;
        choices.push((sink.parse().ok()?, u64::from_str_radix(bits, 16).ok()?));
    }
    if it.next().is_some() {
        return None;
    }
    Some((key, CachedZone { cost_bits, choices }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("wavemin-checkpoint-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    fn ps(v: f64) -> Picoseconds {
        Picoseconds::new(v)
    }

    #[test]
    fn round_trips_entries_bit_for_bit() {
        let path = tmp("roundtrip.ckpt");
        let j = CheckpointJournal::open(&path, 0xdead_beef, false).expect("create");
        let choices = vec![(0usize, ps(12.5)), (3, ps(-0.0)), (7, ps(0.1 + 0.2))];
        j.record(42, 1.75_f64.to_bits(), &choices).expect("record");
        j.record(43, f64::NAN.to_bits(), &[]).expect("record");
        drop(j);

        let j = CheckpointJournal::open(&path, 0xdead_beef, true).expect("resume");
        assert_eq!(j.loaded(), 2);
        let hit = j.lookup(42).expect("key 42");
        assert_eq!(hit.cost().to_bits(), 1.75_f64.to_bits());
        let back = hit.choices_ps();
        assert_eq!(back.len(), 3);
        for ((s0, c0), (s1, c1)) in choices.iter().zip(&back) {
            assert_eq!(s0, s1);
            assert_eq!(c0.value().to_bits(), c1.value().to_bits());
        }
        // NaN cost survives as exact bits too (costs are opaque payloads).
        let nan = j.lookup(43).expect("key 43");
        assert_eq!(nan.cost_bits, f64::NAN.to_bits());
        assert!(j.lookup(99).is_none());
    }

    #[test]
    fn fingerprint_mismatch_discards_everything() {
        let path = tmp("mismatch.ckpt");
        let j = CheckpointJournal::open(&path, 1, false).expect("create");
        j.record(7, 0, &[]).expect("record");
        drop(j);
        let j = CheckpointJournal::open(&path, 2, true).expect("resume other fp");
        assert_eq!(j.loaded(), 0, "foreign entries must not be trusted");
        // And the file was restarted under the new fingerprint.
        drop(j);
        let j = CheckpointJournal::open(&path, 2, true).expect("reopen");
        assert_eq!(j.loaded(), 0);
    }

    #[test]
    fn truncated_trailing_line_is_ignored() {
        let path = tmp("truncated.ckpt");
        let j = CheckpointJournal::open(&path, 5, false).expect("create");
        j.record(1, 10, &[(0, ps(1.0))]).expect("record");
        drop(j);
        // Simulate a kill mid-append: a dangling half line.
        let mut f = OpenOptions::new().append(true).open(&path).expect("append");
        write!(f, "zone 00000000000000ff 000000").expect("write partial");
        drop(f);
        let j = CheckpointJournal::open(&path, 5, true).expect("resume");
        assert_eq!(j.loaded(), 1, "only the complete entry survives");
        assert!(j.lookup(1).is_some());
        assert!(j.lookup(0xff).is_none());
    }

    #[test]
    fn key_chain_is_order_and_content_sensitive() {
        let a0 = ZoneKeyChain::new(9, ps(1.0), ps(2.0));
        let b0 = ZoneKeyChain::new(9, ps(1.0), ps(2.5));
        assert_ne!(a0.key_for(0), b0.key_for(0), "interval bounds feed the key");
        assert_ne!(a0.key_for(0), a0.key_for(1), "zones get distinct keys");

        let mut a = a0.clone();
        let mut b = a0.clone();
        a.absorb(0, 1.0_f64.to_bits(), &[(2, ps(3.0))]);
        b.absorb(0, 1.0_f64.to_bits(), &[(2, ps(4.0))]);
        assert_ne!(
            a.key_for(1),
            b.key_for(1),
            "a predecessor's choices change every later key"
        );
        let mut c = a0.clone();
        c.absorb(0, 1.0_f64.to_bits(), &[(2, ps(3.0))]);
        assert_eq!(
            a.key_for(1),
            c.key_for(1),
            "identical history, identical key"
        );
    }

    #[test]
    fn fingerprint_ignores_run_plumbing_but_not_semantics() {
        use crate::prelude::Benchmark;
        let d = Design::from_benchmark(&Benchmark::s15850(), 3);
        let base = WaveMinConfig::default().with_fault_plan(None);
        let fp = design_fingerprint(&d, &base).expect("fingerprint");

        // A resume run differs from its original only in plumbing; the
        // journal header must still match.
        let resumed = base
            .clone()
            .with_checkpoint("some/path.ckpt")
            .with_resume(true)
            .with_threads(4)
            .with_metrics(true);
        assert_eq!(
            design_fingerprint(&d, &resumed).expect("fingerprint"),
            fp,
            "plumbing flags must not invalidate the journal"
        );

        // Semantic knobs do invalidate: a fault plan changes solve results.
        let faulted = base
            .clone()
            .with_fault_plan(Some(crate::fault::FaultPlan { seed: 1, rate: 0.5 }));
        assert_ne!(
            design_fingerprint(&d, &faulted).expect("fingerprint"),
            fp,
            "a fault-injected run must not share cached zones with a clean one"
        );
        let coarser = base.clone().with_sample_count(8);
        assert_ne!(
            design_fingerprint(&d, &coarser).expect("fingerprint"),
            fp,
            "sampling resolution is semantic"
        );
    }
}
