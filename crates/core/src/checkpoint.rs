//! Content-hashed zone-result stores: the on-disk checkpoint journal and
//! the in-memory serve-mode zone cache.
//!
//! `optimize --checkpoint PATH` appends each completed zone's solution to
//! a line-oriented journal as it lands; `--resume` replays the journal
//! and re-solves only the zones it cannot vouch for. Serve mode promotes
//! the same keying scheme into [`ZoneCache`], an LRU-bounded in-memory
//! map shared by concurrent jobs, so a re-submitted design with local
//! edits splices cached results for clean zones and re-solves only dirty
//! ones. Keys are *content* hashes, so a stale or foreign entry can never
//! be mistaken for a hit — it is simply never looked up.
//!
//! # Format
//!
//! ```text
//! wavemin-checkpoint v2 fingerprint=<hex16>
//! zone <key hex16> <cost-bits hex16> <n> <sink>:<code-bits hex16> ...
//! ```
//!
//! The header fingerprint hashes the characterized design and the solver
//! configuration; a mismatch invalidates every entry. Each entry's key is
//! drawn from a per-interval *hash chain* ([`ZoneKeyChain`]): the chain
//! starts from a seed (the solver-config fingerprint) and the interval
//! bounds, and absorbs every earlier zone's *content hash* and solution
//! in solve order. Zones are solved against the accumulated background
//! noise of their predecessors, so a zone's key changes whenever anything
//! it depends on changes — hit means bit-for-bit reusable. Keying by zone
//! content rather than zone index is what lets an edited design reuse the
//! untouched prefix of a solve: the clean zones hash identically and walk
//! the same chain. Costs and delay codes are stored as raw `f64` bit
//! patterns, so a resumed run reproduces the uninterrupted run exactly.
//!
//! Lines are flushed per zone; a killed process leaves at most one
//! truncated trailing line, which the loader ignores. A malformed line
//! anywhere *else* in the file is corruption, not truncation, and
//! surfaces as [`WaveMinError::Checkpoint`] rather than silently
//! dropping vouched zones.

use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::{Condvar, Mutex};
use wavemin_cells::units::Picoseconds;

/// Journal format version; bumped on any incompatible layout change.
/// `v2`: chain keys absorb zone content hashes instead of zone indices.
pub const FORMAT_VERSION: &str = "v2";

const HEADER_TAG: &str = "wavemin-checkpoint";

/// FNV-1a 64 over raw bytes — the store's only byte-hash primitive.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the characterized design + solver configuration. Any
/// change to either invalidates every checkpoint entry.
///
/// Run-plumbing fields that cannot change a zone's solution — the worker
/// count, observability switches, and the checkpoint/resume flags
/// themselves — are normalized out before hashing, so an interrupted run
/// and its `--resume` continuation (or a re-run with `--trace` added)
/// agree on the fingerprint. Everything semantic stays in, including the
/// fault plan (injection changes solve results) and the time budget.
///
/// # Errors
///
/// Returns [`WaveMinError::Checkpoint`] if serialization fails.
pub fn design_fingerprint(design: &Design, config: &WaveMinConfig) -> Result<u64, WaveMinError> {
    let d = serde_json::to_string(design)
        .map_err(|e| WaveMinError::Checkpoint(format!("design fingerprint: {e}")))?;
    Ok(fnv1a(d.as_bytes()) ^ config_fingerprint(config)?.rotate_left(29))
}

/// Fingerprint of the solver configuration alone, with the same
/// run-plumbing normalization as [`design_fingerprint`]. This seeds the
/// per-interval [`ZoneKeyChain`]: the design itself enters the chain
/// through per-zone content hashes, so two sessions holding *different*
/// designs still share cache entries for zones whose characterized
/// content is identical — the incremental-re-solve path.
///
/// # Errors
///
/// Returns [`WaveMinError::Checkpoint`] if serialization fails.
pub fn config_fingerprint(config: &WaveMinConfig) -> Result<u64, WaveMinError> {
    let mut canon = config.clone();
    canon.threads = None;
    canon.collect_metrics = false;
    canon.trace_spans = false;
    canon.checkpoint_path = None;
    canon.resume = false;
    let c = serde_json::to_string(&canon)
        .map_err(|e| WaveMinError::Checkpoint(format!("config fingerprint: {e}")))?;
    Ok(fnv1a(c.as_bytes()))
}

/// A stored zone solution: the min–max cost and the per-sink delay
/// codes, both as exact `f64` bit patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedZone {
    /// `ZoneSolution::cost` bits.
    pub cost_bits: u64,
    /// `(sink index, delay-code bits)` per chosen option.
    pub choices: Vec<(usize, u64)>,
}

impl CachedZone {
    /// The cost as an `f64` (bit-exact round trip).
    #[must_use]
    pub fn cost(&self) -> f64 {
        f64::from_bits(self.cost_bits)
    }

    /// The choices as `(sink, Picoseconds)` pairs (bit-exact round trip).
    #[must_use]
    pub fn choices_ps(&self) -> Vec<(usize, Picoseconds)> {
        self.choices
            .iter()
            .map(|&(s, bits)| (s, Picoseconds::new(f64::from_bits(bits))))
            .collect()
    }

    /// Approximate heap footprint, used for the cache's byte budget.
    fn weight(&self) -> usize {
        std::mem::size_of::<Self>() + self.choices.len() * std::mem::size_of::<(usize, u64)>()
    }
}

/// The per-interval key chain. Seeded from the config fingerprint and the
/// interval bounds; absorbs each solved zone's content hash and solution
/// in solve order so a zone's key covers everything its
/// accumulated-background input depends on.
#[derive(Debug, Clone)]
pub struct ZoneKeyChain {
    h: u64,
}

impl ZoneKeyChain {
    /// Starts a chain for one feasible interval.
    #[must_use]
    pub fn new(seed: u64, t_lo: Picoseconds, t_hi: Picoseconds) -> Self {
        let mut h = seed;
        h = step(h, t_lo.value().to_bits());
        h = step(h, t_hi.value().to_bits());
        Self { h }
    }

    /// The lookup/record key for the zone whose characterized content
    /// hashes to `content` at the chain's current state.
    #[must_use]
    pub fn key_for(&self, content: u64) -> u64 {
        step(self.h, content ^ 0x5a5a_5a5a_5a5a_5a5a)
    }

    /// Absorbs a completed zone's content and solution, advancing the
    /// chain for every zone solved after it.
    pub fn absorb(&mut self, content: u64, cost_bits: u64, choices: &[(usize, Picoseconds)]) {
        self.h = step(self.h, content);
        self.h = step(self.h, cost_bits);
        for &(sink, code) in choices {
            self.h = step(self.h, sink as u64);
            self.h = step(self.h, code.value().to_bits());
        }
    }
}

/// One avalanche step of the chain (splitmix64 finalizer over `h ^ x`).
/// Shared with the zone content hash in `algo`.
#[inline]
pub(crate) fn step(h: u64, x: u64) -> u64 {
    let mut z = (h ^ x).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What [`ZoneStore::acquire`] hands back for a key.
pub enum StoreAcquire<'a> {
    /// The store vouches for this solution; splice it bit-for-bit.
    Hit(CachedZone),
    /// The caller must solve. When the store dedups concurrent work, the
    /// reservation marks the key in flight; dropping it without a
    /// [`ZoneStore::record`] releases waiting peers to solve themselves.
    Solve(Option<ZoneReservation<'a>>),
}

/// A shared zone-solution store: hit → splice, miss → solve and record.
///
/// Implemented by the on-disk [`CheckpointJournal`] (single run,
/// crash-recovery) and the in-memory [`ZoneCache`] (serve mode, shared
/// across concurrent jobs and sessions).
pub trait ZoneStore: Sync {
    /// Looks up `key`, possibly reserving it for the caller to solve.
    fn acquire(&self, key: u64) -> StoreAcquire<'_>;

    /// Publishes a solved zone under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveMinError::Checkpoint`] if the store's backing medium
    /// rejects the write (only the journal can fail).
    fn record(
        &self,
        key: u64,
        cost_bits: u64,
        choices: &[(usize, Picoseconds)],
    ) -> Result<(), WaveMinError>;
}

struct Inner {
    writer: BufWriter<File>,
    cache: HashMap<u64, CachedZone>,
}

/// The append-only journal handle shared by zone workers.
pub struct CheckpointJournal {
    path: String,
    inner: Mutex<Inner>,
}

impl CheckpointJournal {
    /// Opens (or creates) the journal at `path` for `fingerprint`.
    ///
    /// With `resume` set, an existing journal whose header fingerprint
    /// matches is loaded into the hit cache and appended to; a missing
    /// file, mismatched fingerprint, or unreadable header starts fresh
    /// (every zone dirty). Without `resume`, the file is truncated.
    ///
    /// # Errors
    ///
    /// Returns [`WaveMinError::Checkpoint`] on I/O failure, or when a
    /// resumed journal is corrupt anywhere but its final line.
    pub fn open(path: &str, fingerprint: u64, resume: bool) -> Result<Self, WaveMinError> {
        let cache = if resume {
            load_entries(path, fingerprint)?
        } else {
            None
        };
        match cache {
            Some(cache) => {
                let file = OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| WaveMinError::Checkpoint(format!("{path}: {e}")))?;
                Ok(Self {
                    path: path.to_string(),
                    inner: Mutex::new(Inner {
                        writer: BufWriter::new(file),
                        cache,
                    }),
                })
            }
            None => {
                let file = File::create(path)
                    .map_err(|e| WaveMinError::Checkpoint(format!("{path}: {e}")))?;
                let mut writer = BufWriter::new(file);
                writeln!(
                    writer,
                    "{HEADER_TAG} {FORMAT_VERSION} fingerprint={fingerprint:016x}"
                )
                .and_then(|()| writer.flush())
                .map_err(|e| WaveMinError::Checkpoint(format!("{path}: {e}")))?;
                Ok(Self {
                    path: path.to_string(),
                    inner: Mutex::new(Inner {
                        writer,
                        cache: HashMap::new(),
                    }),
                })
            }
        }
    }

    /// Number of reusable entries loaded at open.
    #[must_use]
    pub fn loaded(&self) -> usize {
        self.lock().cache.len()
    }

    /// Looks up a zone by its chain key.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<CachedZone> {
        self.lock().cache.get(&key).cloned()
    }

    /// Appends a completed zone and flushes, so a killed process loses at
    /// most the zone in flight.
    ///
    /// # Errors
    ///
    /// Returns [`WaveMinError::Checkpoint`] on I/O failure.
    pub fn record(
        &self,
        key: u64,
        cost_bits: u64,
        choices: &[(usize, Picoseconds)],
    ) -> Result<(), WaveMinError> {
        let mut line = format!("zone {key:016x} {cost_bits:016x} {}", choices.len());
        for &(sink, code) in choices {
            use std::fmt::Write as _;
            let _ = write!(line, " {sink}:{:016x}", code.value().to_bits());
        }
        let mut g = self.lock();
        writeln!(g.writer, "{line}")
            .and_then(|()| g.writer.flush())
            .map_err(|e| WaveMinError::Checkpoint(format!("{}: {e}", self.path)))?;
        g.cache.insert(
            key,
            CachedZone {
                cost_bits,
                choices: choices
                    .iter()
                    .map(|&(s, c)| (s, c.value().to_bits()))
                    .collect(),
            },
        );
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker that panicked mid-append can only have poisoned the
        // lock after its own writeln completed or failed atomically at
        // the line level; the cache and writer state remain coherent.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl ZoneStore for CheckpointJournal {
    fn acquire(&self, key: u64) -> StoreAcquire<'_> {
        // A single run never races two workers onto the same key (each
        // interval walks its own chain), so no in-flight reservation.
        match self.lookup(key) {
            Some(hit) => StoreAcquire::Hit(hit),
            None => StoreAcquire::Solve(None),
        }
    }

    fn record(
        &self,
        key: u64,
        cost_bits: u64,
        choices: &[(usize, Picoseconds)],
    ) -> Result<(), WaveMinError> {
        CheckpointJournal::record(self, key, cost_bits, choices)
    }
}

/// Parses an existing journal; `Ok(None)` means "start fresh" (missing
/// file, wrong header, or fingerprint mismatch). Only a truncated
/// *trailing* line — the signature of a process killed mid-append — is
/// skipped; a malformed line anywhere earlier is corruption and fails
/// the resume rather than silently dropping vouched zones.
fn load_entries(
    path: &str,
    fingerprint: u64,
) -> Result<Option<HashMap<u64, CachedZone>>, WaveMinError> {
    let Ok(file) = File::open(path) else {
        return Ok(None);
    };
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        Some(Ok(h)) => h,
        Some(Err(_)) | None => return Ok(None),
    };
    let expect = format!("{HEADER_TAG} {FORMAT_VERSION} fingerprint={fingerprint:016x}");
    if header != expect {
        return Ok(None);
    }
    let body: Vec<String> = lines
        .collect::<Result<_, _>>()
        .map_err(|e| WaveMinError::Checkpoint(format!("{path}: unreadable journal body: {e}")))?;
    let mut cache = HashMap::new();
    let last = body.len().saturating_sub(1);
    for (i, line) in body.iter().enumerate() {
        match parse_entry(line) {
            Some((key, entry)) => {
                cache.insert(key, entry);
            }
            None if i == last => {
                // A killed process leaves exactly one dangling half line,
                // and it can only be the final one.
            }
            None => {
                return Err(WaveMinError::Checkpoint(format!(
                    "{path}: corrupt journal entry at line {}: {line:?}",
                    i + 2
                )));
            }
        }
    }
    Ok(Some(cache))
}

fn parse_entry(line: &str) -> Option<(u64, CachedZone)> {
    let mut it = line.split_ascii_whitespace();
    if it.next()? != "zone" {
        return None;
    }
    let key = u64::from_str_radix(it.next()?, 16).ok()?;
    let cost_bits = u64::from_str_radix(it.next()?, 16).ok()?;
    let n: usize = it.next()?.parse().ok()?;
    let mut choices = Vec::with_capacity(n);
    for _ in 0..n {
        let (sink, bits) = it.next()?.split_once(':')?;
        choices.push((sink.parse().ok()?, u64::from_str_radix(bits, 16).ok()?));
    }
    if it.next().is_some() {
        return None;
    }
    Some((key, CachedZone { cost_bits, choices }))
}

/// Point-in-time counters for a [`ZoneCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Completed entries currently resident.
    pub entries: usize,
    /// Approximate bytes held by resident entries.
    pub bytes: usize,
    /// Lifetime lookup hits.
    pub hits: u64,
    /// Lifetime lookup misses (each miss reserves the key for a solve).
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
}

enum Slot {
    Done(CachedZone),
    /// A worker holds a [`ZoneReservation`] and is solving; peers that
    /// acquire the same key block until it publishes or abandons.
    InFlight,
}

struct CacheInner {
    map: HashMap<u64, (Slot, u64)>,
    bytes: usize,
    tick: u64,
    stats: CacheStats,
}

/// The serve-mode in-memory zone store: a content-keyed LRU map shared by
/// concurrent jobs. A miss reserves the key, so two jobs racing onto the
/// same zone never duplicate the solve — the loser blocks on the
/// reservation and splices the winner's result.
pub struct ZoneCache {
    max_bytes: usize,
    inner: Mutex<CacheInner>,
    ready: Condvar,
}

impl ZoneCache {
    /// Creates a cache bounded to roughly `max_bytes` of entry payload.
    /// A budget of zero disables retention (every lookup misses, every
    /// record is immediately evicted) but still dedups in-flight solves.
    #[must_use]
    pub fn new(max_bytes: usize) -> Self {
        Self {
            max_bytes,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                stats: CacheStats::default(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let g = self.lock();
        let mut s = g.stats;
        s.bytes = g.bytes;
        s.entries = g
            .map
            .values()
            .filter(|(slot, _)| matches!(slot, Slot::Done(_)))
            .count();
        s
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn publish(&self, key: u64, zone: CachedZone) {
        let weight = zone.weight();
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        if let Some((Slot::Done(old), _)) = g.map.insert(key, (Slot::Done(zone), tick)) {
            g.bytes -= old.weight();
        }
        g.bytes += weight;
        // Evict least-recently-used completed entries until under budget.
        // The entry just published is fair game too: with a zero budget
        // it leaves immediately, which still satisfies the contract
        // (record never fails, waiters were notified of completion).
        while g.bytes > self.max_bytes {
            let victim = g
                .map
                .iter()
                .filter(|(_, (slot, _))| matches!(slot, Slot::Done(_)))
                .min_by_key(|(_, (_, t))| *t)
                .map(|(&k, _)| k);
            let Some(k) = victim else { break };
            if let Some((Slot::Done(old), _)) = g.map.remove(&k) {
                g.bytes -= old.weight();
                g.stats.evictions += 1;
            }
        }
        drop(g);
        self.ready.notify_all();
    }

    fn abandon(&self, key: u64) {
        let mut g = self.lock();
        if matches!(g.map.get(&key), Some((Slot::InFlight, _))) {
            g.map.remove(&key);
        }
        drop(g);
        self.ready.notify_all();
    }
}

impl ZoneStore for ZoneCache {
    fn acquire(&self, key: u64) -> StoreAcquire<'_> {
        let mut g = self.lock();
        loop {
            match g.map.get(&key) {
                Some((Slot::Done(zone), _)) => {
                    let hit = zone.clone();
                    g.tick += 1;
                    let tick = g.tick;
                    if let Some((_, t)) = g.map.get_mut(&key) {
                        *t = tick;
                    }
                    g.stats.hits += 1;
                    return StoreAcquire::Hit(hit);
                }
                Some((Slot::InFlight, _)) => {
                    g = match self.ready.wait(g) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                None => {
                    g.tick += 1;
                    let tick = g.tick;
                    g.map.insert(key, (Slot::InFlight, tick));
                    g.stats.misses += 1;
                    return StoreAcquire::Solve(Some(ZoneReservation { cache: self, key }));
                }
            }
        }
    }

    fn record(
        &self,
        key: u64,
        cost_bits: u64,
        choices: &[(usize, Picoseconds)],
    ) -> Result<(), WaveMinError> {
        self.publish(
            key,
            CachedZone {
                cost_bits,
                choices: choices
                    .iter()
                    .map(|&(s, c)| (s, c.value().to_bits()))
                    .collect(),
            },
        );
        Ok(())
    }
}

/// Marks a key as being solved by the holder. Dropping it without a
/// matching [`ZoneStore::record`] (error or panic path) releases the
/// claim so blocked peers retry and solve for themselves.
pub struct ZoneReservation<'a> {
    cache: &'a ZoneCache,
    key: u64,
}

impl Drop for ZoneReservation<'_> {
    fn drop(&mut self) {
        self.cache.abandon(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("wavemin-checkpoint-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    fn ps(v: f64) -> Picoseconds {
        Picoseconds::new(v)
    }

    #[test]
    fn round_trips_entries_bit_for_bit() {
        let path = tmp("roundtrip.ckpt");
        let j = CheckpointJournal::open(&path, 0xdead_beef, false).expect("create");
        let choices = vec![(0usize, ps(12.5)), (3, ps(-0.0)), (7, ps(0.1 + 0.2))];
        j.record(42, 1.75_f64.to_bits(), &choices).expect("record");
        j.record(43, f64::NAN.to_bits(), &[]).expect("record");
        drop(j);

        let j = CheckpointJournal::open(&path, 0xdead_beef, true).expect("resume");
        assert_eq!(j.loaded(), 2);
        let hit = j.lookup(42).expect("key 42");
        assert_eq!(hit.cost().to_bits(), 1.75_f64.to_bits());
        let back = hit.choices_ps();
        assert_eq!(back.len(), 3);
        for ((s0, c0), (s1, c1)) in choices.iter().zip(&back) {
            assert_eq!(s0, s1);
            assert_eq!(c0.value().to_bits(), c1.value().to_bits());
        }
        // NaN cost survives as exact bits too (costs are opaque payloads).
        let nan = j.lookup(43).expect("key 43");
        assert_eq!(nan.cost_bits, f64::NAN.to_bits());
        assert!(j.lookup(99).is_none());
    }

    #[test]
    fn fingerprint_mismatch_discards_everything() {
        let path = tmp("mismatch.ckpt");
        let j = CheckpointJournal::open(&path, 1, false).expect("create");
        j.record(7, 0, &[]).expect("record");
        drop(j);
        let j = CheckpointJournal::open(&path, 2, true).expect("resume other fp");
        assert_eq!(j.loaded(), 0, "foreign entries must not be trusted");
        // And the file was restarted under the new fingerprint.
        drop(j);
        let j = CheckpointJournal::open(&path, 2, true).expect("reopen");
        assert_eq!(j.loaded(), 0);
    }

    #[test]
    fn truncated_trailing_line_is_ignored() {
        let path = tmp("truncated.ckpt");
        let j = CheckpointJournal::open(&path, 5, false).expect("create");
        j.record(1, 10, &[(0, ps(1.0))]).expect("record");
        drop(j);
        // Simulate a kill mid-append: a dangling half line.
        let mut f = OpenOptions::new().append(true).open(&path).expect("append");
        write!(f, "zone 00000000000000ff 000000").expect("write partial");
        drop(f);
        let j = CheckpointJournal::open(&path, 5, true).expect("resume");
        assert_eq!(j.loaded(), 1, "only the complete entry survives");
        assert!(j.lookup(1).is_some());
        assert!(j.lookup(0xff).is_none());
    }

    #[test]
    fn interior_corruption_is_a_typed_error_not_a_silent_skip() {
        let path = tmp("interior.ckpt");
        let j = CheckpointJournal::open(&path, 5, false).expect("create");
        j.record(1, 10, &[(0, ps(1.0))]).expect("record");
        drop(j);
        // Corrupt the middle of the file: a mangled line *followed by* a
        // valid complete entry cannot be mid-append truncation.
        let mut f = OpenOptions::new().append(true).open(&path).expect("append");
        writeln!(f, "zone 00000000000000ff 000000").expect("write corrupt");
        writeln!(f, "zone 0000000000000002 0000000000000014 0").expect("write valid");
        drop(f);
        match CheckpointJournal::open(&path, 5, true) {
            Err(WaveMinError::Checkpoint(msg)) => {
                assert!(msg.contains("corrupt"), "message names the cause: {msg}");
                assert!(msg.contains("line 3"), "message locates the line: {msg}");
            }
            Ok(_) => panic!("interior corruption must fail the resume"),
            Err(other) => panic!("wrong error type: {other:?}"),
        }
        // A fresh (non-resume) open of the same path still works: it
        // truncates rather than trusting the corrupt body.
        let j = CheckpointJournal::open(&path, 5, false).expect("fresh open truncates");
        assert_eq!(j.loaded(), 0);
    }

    #[test]
    fn key_chain_is_order_and_content_sensitive() {
        let a0 = ZoneKeyChain::new(9, ps(1.0), ps(2.0));
        let b0 = ZoneKeyChain::new(9, ps(1.0), ps(2.5));
        assert_ne!(a0.key_for(0), b0.key_for(0), "interval bounds feed the key");
        assert_ne!(
            a0.key_for(0),
            a0.key_for(1),
            "distinct content, distinct keys"
        );

        let mut a = a0.clone();
        let mut b = a0.clone();
        a.absorb(0, 1.0_f64.to_bits(), &[(2, ps(3.0))]);
        b.absorb(0, 1.0_f64.to_bits(), &[(2, ps(4.0))]);
        assert_ne!(
            a.key_for(1),
            b.key_for(1),
            "a predecessor's choices change every later key"
        );
        let mut c = a0.clone();
        c.absorb(0, 1.0_f64.to_bits(), &[(2, ps(3.0))]);
        assert_eq!(
            a.key_for(1),
            c.key_for(1),
            "identical history, identical key"
        );
    }

    #[test]
    fn fingerprint_ignores_run_plumbing_but_not_semantics() {
        use crate::prelude::Benchmark;
        let d = Design::from_benchmark(&Benchmark::s15850(), 3);
        let base = WaveMinConfig::default().with_fault_plan(None);
        let fp = design_fingerprint(&d, &base).expect("fingerprint");

        // A resume run differs from its original only in plumbing; the
        // journal header must still match.
        let resumed = base
            .clone()
            .with_checkpoint("some/path.ckpt")
            .with_resume(true)
            .with_threads(4)
            .with_metrics(true);
        assert_eq!(
            design_fingerprint(&d, &resumed).expect("fingerprint"),
            fp,
            "plumbing flags must not invalidate the journal"
        );

        // Semantic knobs do invalidate: a fault plan changes solve results.
        let faulted = base
            .clone()
            .with_fault_plan(Some(crate::fault::FaultPlan { seed: 1, rate: 0.5 }));
        assert_ne!(
            design_fingerprint(&d, &faulted).expect("fingerprint"),
            fp,
            "a fault-injected run must not share cached zones with a clean one"
        );
        let coarser = base.clone().with_sample_count(8);
        assert_ne!(
            design_fingerprint(&d, &coarser).expect("fingerprint"),
            fp,
            "sampling resolution is semantic"
        );

        // The config-only fingerprint follows the same normalization.
        let cfp = config_fingerprint(&base).expect("config fingerprint");
        assert_eq!(config_fingerprint(&resumed).expect("cfp"), cfp);
        assert_ne!(config_fingerprint(&coarser).expect("cfp"), cfp);
    }

    #[test]
    fn cache_hit_miss_and_reservation_lifecycle() {
        let cache = ZoneCache::new(1 << 20);
        // First acquire: miss with a reservation.
        let res = match cache.acquire(7) {
            StoreAcquire::Solve(Some(r)) => r,
            _ => panic!("cold key must miss with a reservation"),
        };
        cache
            .record(7, 2.5_f64.to_bits(), &[(1, ps(4.0))])
            .expect("record");
        drop(res);
        // Second acquire: hit, bit-identical payload.
        match cache.acquire(7) {
            StoreAcquire::Hit(z) => {
                assert_eq!(z.cost().to_bits(), 2.5_f64.to_bits());
                assert_eq!(z.choices_ps(), vec![(1usize, ps(4.0))]);
            }
            StoreAcquire::Solve(_) => panic!("recorded key must hit"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn abandoned_reservation_releases_waiters() {
        let cache = ZoneCache::new(1 << 20);
        let res = match cache.acquire(3) {
            StoreAcquire::Solve(Some(r)) => r,
            _ => panic!("cold key must miss"),
        };
        drop(res); // solve failed; key must be claimable again
        match cache.acquire(3) {
            StoreAcquire::Solve(Some(_)) => {}
            _ => panic!("abandoned key must be reserved anew, not hit or block"),
        };
    }

    #[test]
    fn concurrent_acquires_dedup_the_solve() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ZoneCache::new(1 << 20);
        let solves = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| match cache.acquire(11) {
                    StoreAcquire::Hit(z) => {
                        assert_eq!(z.cost_bits, 9.0_f64.to_bits());
                    }
                    StoreAcquire::Solve(reservation) => {
                        solves.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        cache.record(11, 9.0_f64.to_bits(), &[]).expect("record");
                        drop(reservation);
                    }
                });
            }
        });
        assert_eq!(
            solves.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "exactly one thread wins the reservation; the rest block and hit"
        );
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn lru_eviction_respects_byte_budget_and_recency() {
        let entry_weight = CachedZone {
            cost_bits: 0,
            choices: vec![],
        }
        .weight();
        // Room for exactly two empty-choice entries.
        let cache = ZoneCache::new(2 * entry_weight);
        cache.record(1, 0, &[]).expect("record");
        cache.record(2, 0, &[]).expect("record");
        // Touch key 1 so key 2 is the LRU victim.
        assert!(matches!(cache.acquire(1), StoreAcquire::Hit(_)));
        cache.record(3, 0, &[]).expect("record");
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert!(
            matches!(cache.acquire(1), StoreAcquire::Hit(_)),
            "recent key kept"
        );
        assert!(
            matches!(cache.acquire(2), StoreAcquire::Solve(_)),
            "LRU key evicted"
        );
        assert!(
            matches!(cache.acquire(3), StoreAcquire::Hit(_)),
            "new key kept"
        );
    }
}
