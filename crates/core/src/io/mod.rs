//! Real-design front-end: SDF import/export lowering into [`Design`].
//!
//! [`import_sdf`] recovers the clock-tree topology (driver → load edges
//! from `INTERCONNECT`) and every node's arrival time (accumulating
//! `IOPATH` + net delays from the root) from a signoff SDF file, then
//! lowers it into the workspace's native [`Design`]: zero-length wires, a
//! default sink load, and a per-node `delay_trim` that makes the analytic
//! timing model reproduce the SDF arrival at **every sink bit-for-bit**.
//! The trim solve uses [`exact_addend`]-style ulp nudging so the imported
//! design's `Timing::analyze` output equals the SDF-declared arrivals
//! exactly, not just to a tolerance — which is what makes the
//! export → import round-trip a usable oracle.
//!
//! [`export_sdf`] is the inverse: it renders a design's mode-0 timing as
//! the minimal SDF subset the importer reads, with `IOPATH`/`INTERCONNECT`
//! values chosen so the importer's delay chain reproduces the original
//! arrivals exactly.
//!
//! Known gaps (documented in DESIGN.md): wire parasitics are absorbed
//! into trims rather than reconstructed as RC segments, sink capacitances
//! default to 4 fF (SDF carries no loads), and placement is a synthetic
//! depth×index grid (SDF carries no geometry).

pub mod sdf;

use crate::design::Design;
use crate::error::WaveMinError;
use sdf::{SdfCell, SdfError, SdfFile, SdfInterconnect, SdfIoPath};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use wavemin_cells::characterize::ClockEdge;
use wavemin_cells::units::{Femtofarads, Microns, Picoseconds, Volts};
use wavemin_cells::{CellLibrary, CellSpec, Polarity};
use wavemin_clocktree::prelude::{ClockTree, NodeId, Point, PowerDesign};

/// A design lowered from an SDF file, with the import-side bookkeeping
/// the CLI and tests report.
#[derive(Debug, Clone)]
pub struct ImportedDesign {
    /// The validated design.
    pub design: Design,
    /// SDF instance name of each node, indexed by arena id.
    pub instances: Vec<String>,
    /// Per-sink `(instance, arrival)` recovered from the SDF delay chain,
    /// in arena order. The lowered design's own timing analysis
    /// reproduces these exactly.
    pub sink_arrivals: Vec<(String, Picoseconds)>,
    /// Max − min sink arrival: the skew the SDF describes. A useful
    /// sanity anchor for choosing `--kappa`.
    pub recovered_skew: Picoseconds,
}

/// The next representable f64 toward `+inf` (bit-level; total-order walk
/// over finite values).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// Finds `x` such that the rounded sum `base + x` equals `target`
/// **exactly** (bit-for-bit), when such an `x` exists near the naive
/// difference. Starts from `target - base` and walks outward one ulp at a
/// time (bounded), since the naive difference can be off by a few ulps
/// after rounding. Falls back to the naive difference if no exact addend
/// exists within the walk (possible when `|base| >> |target|`).
fn exact_addend(base: f64, target: f64) -> f64 {
    let start = target - base;
    if !start.is_finite() {
        return start;
    }
    if base + start == target {
        return start;
    }
    let mut up = start;
    let mut down = start;
    for _ in 0..64 {
        up = next_up(up);
        if base + up == target {
            return up;
        }
        down = next_down(down);
        if base + down == target {
            return down;
        }
    }
    start
}

/// Per-instance data recovered from the SDF `CELL` entries.
struct Inst {
    celltype: String,
    /// `IOPATH` delay when the output rises / falls.
    rise: f64,
    fall: f64,
}

fn flip(edge: ClockEdge) -> ClockEdge {
    match edge {
        ClockEdge::Rise => ClockEdge::Fall,
        ClockEdge::Fall => ClockEdge::Rise,
    }
}

/// Imports an SDF file, lowering it into a validated [`Design`].
///
/// Topology comes from `INTERCONNECT` edges (driver instance → load
/// instance, single driver per load, one undriven root); arrival times
/// accumulate the typ `IOPATH` + net delays down from the root, choosing
/// the rise or fall `IOPATH` slot according to the clock edge each
/// instance sees (negative-polarity cells flip the edge, as in
/// `Timing::analyze`). Every library cell named by a `CELLTYPE` must
/// exist in `lib`.
///
/// # Errors
///
/// [`WaveMinError::Sdf`] for syntax or topology problems,
/// [`WaveMinError::MissingCell`] for unknown `CELLTYPE`s, and any
/// [`Design::validate`] error for lowered designs that are structurally
/// valid SDF but unusable inputs.
pub fn import_sdf(text: &str, lib: CellLibrary) -> Result<ImportedDesign, WaveMinError> {
    let file = sdf::parse(text).map_err(WaveMinError::Sdf)?;

    // Instance table and the global interconnect list. Top-scope entries
    // (empty INSTANCE) contribute nets only.
    let mut insts: BTreeMap<String, Inst> = BTreeMap::new();
    let mut nets: Vec<SdfInterconnect> = Vec::new();
    for cell in &file.cells {
        nets.extend(cell.interconnects.iter().cloned());
        if cell.instance.is_empty() {
            continue;
        }
        if cell.celltype.is_empty() {
            return Err(WaveMinError::Sdf(SdfError::EmptyCellType(
                cell.instance.clone(),
            )));
        }
        if insts.contains_key(&cell.instance) {
            return Err(WaveMinError::Sdf(SdfError::DuplicateInstance(
                cell.instance.clone(),
            )));
        }
        let (rise, fall) = cell
            .iopaths
            .first()
            .map_or((0.0, 0.0), |io| (io.rise, io.fall));
        insts.insert(
            cell.instance.clone(),
            Inst {
                celltype: cell.celltype.clone(),
                rise,
                fall,
            },
        );
    }
    if insts.is_empty() {
        return Err(WaveMinError::Sdf(SdfError::NoCells));
    }

    // Tree edges: child → (parent, net delay). One driver per load.
    let mut driver: BTreeMap<String, (String, f64)> = BTreeMap::new();
    let mut fanout: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for net in &nets {
        let p = sdf::instance_of(&net.from).to_owned();
        let c = sdf::instance_of(&net.to).to_owned();
        if !insts.contains_key(&p) {
            return Err(WaveMinError::Sdf(SdfError::UnknownInstance(p)));
        }
        if !insts.contains_key(&c) {
            return Err(WaveMinError::Sdf(SdfError::UnknownInstance(c)));
        }
        if driver.contains_key(&c) {
            return Err(WaveMinError::Sdf(SdfError::MultipleDrivers(c)));
        }
        driver.insert(c.clone(), (p.clone(), net.delay));
        fanout.entry(p).or_default().push(c);
    }

    // Exactly one undriven instance: the clock root.
    let mut undriven = insts.keys().filter(|k| !driver.contains_key(*k));
    let root_name = undriven.next().ok_or(WaveMinError::Sdf(SdfError::NoRoot))?;
    if let Some(second) = undriven.next() {
        return Err(WaveMinError::Sdf(SdfError::MultipleRoots(
            root_name.clone(),
            second.clone(),
        )));
    }

    // BFS from the root, children sorted by instance name so arena order
    // (and therefore zones, sampling, goldens) is deterministic under
    // CELL-entry reordering. Placement is a synthetic depth × index grid:
    // unique coordinates per node (the duplicate-sink validation keys on
    // location bits), no geometric meaning.
    let cell_of = |name: &str| -> Result<&Inst, WaveMinError> {
        insts
            .get(name)
            .ok_or_else(|| WaveMinError::Sdf(SdfError::UnknownInstance(name.to_owned())))
    };
    let polarity_of = |celltype: &str| -> Result<Polarity, WaveMinError> {
        lib.get(celltype)
            .map(CellSpec::polarity)
            .ok_or_else(|| WaveMinError::MissingCell(celltype.to_owned()))
    };

    let root_inst = cell_of(root_name)?;
    let mut tree = ClockTree::new(Point::new(0.0, 0.0), root_inst.celltype.clone());
    let mut instances: Vec<String> = vec![root_name.clone()];
    // Per-arena-id arrival targets from the SDF delay chain.
    let mut target_in: Vec<f64> = vec![0.0];
    let mut target_out: Vec<f64> = vec![0.0];
    let mut edge_in: Vec<ClockEdge> = vec![ClockEdge::Rise];

    let mut queue: VecDeque<(String, NodeId, usize)> = VecDeque::new();
    queue.push_back((root_name.clone(), tree.root(), 0));
    while let Some((name, id, depth)) = queue.pop_front() {
        let inst = cell_of(&name)?;
        let out_edge = match polarity_of(&inst.celltype)? {
            Polarity::Positive => edge_in[id.0],
            Polarity::Negative => flip(edge_in[id.0]),
        };
        let iopath = match out_edge {
            ClockEdge::Rise => inst.rise,
            ClockEdge::Fall => inst.fall,
        };
        target_out[id.0] = target_in[id.0] + iopath;

        let mut child_names = fanout.get(&name).cloned().unwrap_or_default();
        child_names.sort();
        for child in child_names {
            let child_inst = cell_of(&child)?;
            let is_leaf = !fanout.contains_key(&child);
            let arena = tree.len();
            let location = Point::new((depth + 1) as f64 * 100.0, arena as f64 * 10.0);
            let child_id = if is_leaf {
                tree.add_leaf(
                    id,
                    location,
                    child_inst.celltype.clone(),
                    Microns::ZERO,
                    Femtofarads::new(4.0),
                )
            } else {
                tree.add_internal(id, location, child_inst.celltype.clone(), Microns::ZERO)
            };
            let net_delay = driver.get(&child).map_or(0.0, |(_, d)| *d);
            instances.push(child.clone());
            target_in.push(target_out[id.0] + net_delay);
            target_out.push(0.0);
            edge_in.push(out_edge);
            debug_assert_eq!(child_id.0, arena);
            queue.push_back((child, child_id, depth + 1));
        }
    }

    // Anything not reached from the root means the nets form a cycle or
    // a detached island — not a clock tree.
    if instances.len() != insts.len() {
        let reached: std::collections::BTreeSet<&str> =
            instances.iter().map(String::as_str).collect();
        if let Some(missing) = insts.keys().find(|k| !reached.contains(k.as_str())) {
            return Err(WaveMinError::Sdf(SdfError::NotATree(missing.clone())));
        }
    }

    let mut design = Design::new(tree, lib, PowerDesign::uniform(Volts::new(1.1)));

    // Trim solve: one zero-trim timing pass gives every node's load, slew
    // and edge (all trim-independent), hence its exact model delay t_d.
    // Each node's input is then pinned to the SDF chain with a delay_trim
    // chosen by ulp-nudging so floating-point addition lands exactly;
    // leaves pin their *output* (the sink arrival) with a two-level solve.
    let timing = design.timing(0)?;
    let supply = design.power.supply_for(&design.tree, 0);
    let n = design.tree.len();
    let mut out_actual = vec![0.0f64; n];
    let order = design.tree.topological_order();
    for id in order {
        let node = design.tree.node(id);
        let cell = design
            .lib
            .get(&node.cell)
            .ok_or_else(|| WaveMinError::MissingCell(node.cell.clone()))?;
        let (t_d, _) = design.chr.timing(
            cell,
            timing.load[id.0],
            timing.input_slew[id.0],
            supply.at(id),
            timing.input_edge[id.0],
        );
        let t_d = t_d.value();
        let Some(parent) = node.parent() else {
            out_actual[id.0] = 0.0 + t_d;
            continue;
        };
        let is_leaf = node.is_leaf();
        if is_leaf {
            // Pin the *output* (the sink arrival) with a two-level solve:
            // first an input that adds with t_d to the target, then a trim
            // that lands on that input. Some targets are unreachable for a
            // given t_d — when the exact sum `in + t_d` falls on a
            // round-to-nearest-even tie, only every other representable is
            // producible. The sink capacitance is this leaf's only load
            // (zero wire, no children), so nudging it by an ulp perturbs
            // t_d without disturbing the parent or any sibling; walk it
            // until the addition chain lands bit-for-bit.
            let target = target_out[id.0];
            let out_p = out_actual[parent.0];
            let slew = timing.input_slew[id.0];
            let vdd = supply.at(id);
            let edge = timing.input_edge[id.0];
            let mut cap = design.tree.node(id).sink_cap.value();
            let mut t_d = t_d;
            let mut in_desired = exact_addend(t_d, target);
            let mut trim = exact_addend(out_p, in_desired);
            for _ in 0..256 {
                if t_d + in_desired == target && out_p + trim == in_desired {
                    break;
                }
                cap = next_up(cap);
                let (nudged, _) = design
                    .chr
                    .timing(cell, Femtofarads::new(cap), slew, vdd, edge);
                t_d = nudged.value();
                in_desired = exact_addend(t_d, target);
                trim = exact_addend(out_p, in_desired);
            }
            let node = design.tree.node_mut(id);
            node.sink_cap = Femtofarads::new(cap);
            node.delay_trim = Picoseconds::new(trim);
            out_actual[id.0] = (out_p + trim) + t_d;
        } else {
            let trim = exact_addend(out_actual[parent.0], target_in[id.0]);
            design.tree.node_mut(id).delay_trim = Picoseconds::new(trim);
            let in_actual = out_actual[parent.0] + trim;
            out_actual[id.0] = in_actual + t_d;
        }
    }

    design.validate()?;

    let sink_arrivals: Vec<(String, Picoseconds)> = design
        .tree
        .leaves()
        .into_iter()
        .map(|id| (instances[id.0].clone(), Picoseconds::new(target_out[id.0])))
        .collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, a) in &sink_arrivals {
        lo = lo.min(a.value());
        hi = hi.max(a.value());
    }
    let recovered_skew = if sink_arrivals.is_empty() {
        Picoseconds::ZERO
    } else {
        Picoseconds::new(hi - lo)
    };

    Ok(ImportedDesign {
        design,
        instances,
        sink_arrivals,
        recovered_skew,
    })
}

/// Exports a design's mode-0 timing as the minimal SDF subset
/// [`import_sdf`] reads back.
///
/// Instances are named `n{arena_id}`. The `IOPATH` and `INTERCONNECT`
/// values are chosen with [`exact_addend`]-style nudging so the
/// importer's additive delay chain reproduces this design's arrival
/// times **bit-for-bit** — wire delays and trims are folded into the
/// emitted values rather than listed separately.
///
/// # Errors
///
/// Propagates timing-analysis failures.
pub fn export_sdf(design: &Design) -> Result<String, WaveMinError> {
    let timing = design.timing(0)?;
    let mut file = SdfFile {
        design: Some("wavemin".to_owned()),
        timescale: Some("1ps".to_owned()),
        cells: Vec::new(),
    };
    for (id, node) in design.tree.iter() {
        let v = exact_addend(
            timing.input_arrival[id.0].value(),
            timing.output_arrival[id.0].value(),
        );
        file.cells.push(SdfCell {
            celltype: node.cell.clone(),
            instance: format!("n{}", id.0),
            iopaths: vec![SdfIoPath {
                from: "A".to_owned(),
                to: "Z".to_owned(),
                rise: v,
                fall: v,
            }],
            interconnects: Vec::new(),
        });
    }
    let mut top = SdfCell {
        celltype: "wavemin_top".to_owned(),
        ..SdfCell::default()
    };
    for (id, node) in design.tree.iter() {
        if let Some(p) = node.parent() {
            let v = exact_addend(
                timing.output_arrival[p.0].value(),
                timing.input_arrival[id.0].value(),
            );
            top.interconnects.push(SdfInterconnect {
                from: format!("n{}/Z", p.0),
                to: format!("n{}/A", id.0),
                delay: v,
            });
        }
    }
    file.cells.push(top);
    Ok(file.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use wavemin_clocktree::prelude::Benchmark;

    #[test]
    fn exact_addend_hits_targets_bit_for_bit() {
        let cases = [
            (0.0, 123.456),
            (22.25, 47.375),
            (1e3, 1e3 + 1e-7),
            (17.3, 5.0), // negative addend
            (0.1, 0.3),  // classic rounding case
            (1e16, 1e16 + 2.0),
        ];
        for (base, target) in cases {
            let x = exact_addend(base, target);
            assert_eq!(base + x, target, "base={base} target={target}");
        }
    }

    fn tiny_sdf() -> String {
        r#"(DELAYFILE (SDFVERSION "3.0") (DESIGN "tiny") (TIMESCALE 1ps)
  (CELL (CELLTYPE "BUF_X16") (INSTANCE clk_root)
    (DELAY (ABSOLUTE (IOPATH A Z (20.0) (21.0)))))
  (CELL (CELLTYPE "BUF_X8") (INSTANCE u1)
    (DELAY (ABSOLUTE (IOPATH A Z (15.5) (16.0)))))
  (CELL (CELLTYPE "INV_X8") (INSTANCE u2)
    (DELAY (ABSOLUTE (IOPATH A Z (14.0) (13.25)))))
  (CELL (CELLTYPE "tiny") (INSTANCE)
    (DELAY (ABSOLUTE
      (INTERCONNECT clk_root/Z u1/A (5.0))
      (INTERCONNECT clk_root/Z u2/A (6.5))))))
"#
        .to_owned()
    }

    #[test]
    fn import_recovers_topology_and_arrivals() {
        let imp = import_sdf(&tiny_sdf(), CellLibrary::nangate45()).unwrap();
        assert_eq!(imp.instances, vec!["clk_root", "u1", "u2"]);
        assert_eq!(imp.design.tree.leaves().len(), 2);
        // Root rises: out 20. u1 (positive) sees rise: 20+5+15.5 = 40.5.
        // u2 is an inverter, output falls: fall slot 13.25 → 20+6.5+13.25.
        let arr: BTreeMap<&str, f64> = imp
            .sink_arrivals
            .iter()
            .map(|(n, a)| (n.as_str(), a.value()))
            .collect();
        assert_eq!(arr["u1"], 20.0 + 5.0 + 15.5);
        assert_eq!(arr["u2"], 20.0 + 6.5 + 13.25);
        // The lowered design's own timing reproduces these bit-for-bit.
        let timing = imp.design.timing(0).unwrap();
        for (id, node) in imp.design.tree.iter() {
            if node.is_leaf() {
                let want = arr[imp.instances[id.0].as_str()];
                assert_eq!(timing.output_arrival[id.0].value(), want);
            }
        }
        assert_eq!(
            imp.recovered_skew.value(),
            (20.0 + 5.0 + 15.5) - (20.0 + 6.5 + 13.25)
        );
    }

    #[test]
    fn import_rejects_broken_topologies() {
        let lib = || CellLibrary::nangate45;
        let _ = lib;
        let cycle = r#"(DELAYFILE
  (CELL (CELLTYPE "BUF_X8") (INSTANCE a) (DELAY (ABSOLUTE (IOPATH A Z (1.0)))))
  (CELL (CELLTYPE "BUF_X8") (INSTANCE b) (DELAY (ABSOLUTE (IOPATH A Z (1.0)))))
  (CELL (CELLTYPE "t") (INSTANCE) (DELAY (ABSOLUTE
    (INTERCONNECT a/Z b/A (1.0)) (INTERCONNECT b/Z a/A (1.0))))))"#;
        assert!(matches!(
            import_sdf(cycle, CellLibrary::nangate45()),
            Err(WaveMinError::Sdf(SdfError::NoRoot))
        ));
        let forest = r#"(DELAYFILE
  (CELL (CELLTYPE "BUF_X8") (INSTANCE a) (DELAY (ABSOLUTE (IOPATH A Z (1.0)))))
  (CELL (CELLTYPE "BUF_X8") (INSTANCE b) (DELAY (ABSOLUTE (IOPATH A Z (1.0))))))"#;
        assert!(matches!(
            import_sdf(forest, CellLibrary::nangate45()),
            Err(WaveMinError::Sdf(SdfError::MultipleRoots(_, _)))
        ));
        let unknown = r#"(DELAYFILE
  (CELL (CELLTYPE "BUF_X8") (INSTANCE a) (DELAY (ABSOLUTE (IOPATH A Z (1.0)))))
  (CELL (CELLTYPE "t") (INSTANCE) (DELAY (ABSOLUTE (INTERCONNECT a/Z ghost/A (1.0))))))"#;
        assert!(matches!(
            import_sdf(unknown, CellLibrary::nangate45()),
            Err(WaveMinError::Sdf(SdfError::UnknownInstance(_)))
        ));
        let missing_cell = r#"(DELAYFILE
  (CELL (CELLTYPE "NOT_A_CELL") (INSTANCE a) (DELAY (ABSOLUTE (IOPATH A Z (1.0))))))"#;
        assert!(matches!(
            import_sdf(missing_cell, CellLibrary::nangate45()),
            Err(WaveMinError::MissingCell(_))
        ));
    }

    #[test]
    fn export_import_round_trips_a_benchmark_bit_for_bit() {
        let design = Design::from_benchmark(&Benchmark::s15850(), 42);
        let before = design.timing(0).unwrap();
        let text = export_sdf(&design).unwrap();
        let imp = import_sdf(&text, CellLibrary::nangate45()).unwrap();
        assert_eq!(imp.design.tree.len(), design.tree.len());
        // Compare sink arrivals by instance name (arena order may differ
        // after the importer's name-sorted BFS).
        let got: BTreeMap<&str, f64> = imp
            .sink_arrivals
            .iter()
            .map(|(n, a)| (n.as_str(), a.value()))
            .collect();
        let re_timing = imp.design.timing(0).unwrap();
        let re_arr: BTreeMap<&str, f64> = imp
            .design
            .tree
            .iter()
            .filter(|(_, n)| n.is_leaf())
            .map(|(id, _)| {
                (
                    imp.instances[id.0].as_str(),
                    re_timing.output_arrival[id.0].value(),
                )
            })
            .collect();
        let mut checked = 0usize;
        for (id, node) in design.tree.iter() {
            if node.is_leaf() {
                let name = format!("n{}", id.0);
                let want = before.output_arrival[id.0].value();
                assert_eq!(got[name.as_str()], want, "sdf chain for {name}");
                assert_eq!(re_arr[name.as_str()], want, "re-analyzed timing for {name}");
                checked += 1;
            }
        }
        assert_eq!(checked, design.tree.leaves().len());
        assert!(checked >= 19, "s15850 has 19 sinks");
    }
}
