//! A Standard Delay Format (SDF) subset reader and writer.
//!
//! Real clock trees reach polarity-assignment flows as an SDF file
//! written by the signoff timer: per-cell `IOPATH` delays and per-net
//! `INTERCONNECT` delays, from which both the tree topology (driver →
//! load edges) and every sink's arrival time can be recovered. This
//! module parses the subset WaveMin needs and renders the minimal
//! equivalent writer used by the round-trip oracle and the fixture
//! generator.
//!
//! Supported constructs:
//!
//! * `(DELAYFILE …)` with `(SDFVERSION …)`, `(DESIGN "name")`,
//!   `(TIMESCALE …)` header entries; all delay values are taken to be
//!   picoseconds (`TIMESCALE 1ps`), matching the rest of the workspace.
//! * `(CELL (CELLTYPE "BUF_X8") (INSTANCE n3) (DELAY (ABSOLUTE …)))`
//!   declaring one placed cell instance.
//! * `(IOPATH A Z (r:r:r) (f:f:f))` — the instance's input→output delay;
//!   the first triple is the *rising-output* delay, the second (optional,
//!   defaults to the first) the falling-output delay. Port names may be
//!   wrapped in `(posedge A)` edge specifiers, which are unwrapped.
//! * `(INTERCONNECT drv/Z load/A (d:d:d))` — a net delay edge; the
//!   instance part of a port path is everything before the last `/`
//!   (or `.`) divider.
//! * Delay triples `(min:typ:max)` or a single `(typ)` value; the typical
//!   value is used.
//!
//! Unknown header sections, `(DELAY (INCREMENT …))` blocks, and
//! unrecognized entries inside `ABSOLUTE` are skipped with balanced
//! parentheses, so signoff extras (`PORT`, `TIMINGCHECK`, …) do not
//! break the import. Anything structurally malformed is a typed
//! [`SdfError`] — the parser never panics, and its memory use is bounded
//! by the input size.

use std::fmt;

/// Errors from SDF parsing and topology recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum SdfError {
    /// The tokenizer met a character outside the SDF subset.
    UnexpectedChar {
        /// 1-based line of the offending character.
        line: usize,
        /// The character.
        found: char,
    },
    /// The parser expected a different token.
    UnexpectedToken {
        /// 1-based line of the offending token.
        line: usize,
        /// What the parser needed.
        expected: &'static str,
        /// What it found.
        found: String,
    },
    /// The file ended inside an open `(` … `)` form — the trailing
    /// truncation signature. Unlike the checkpoint journal's trailing
    /// half-line (an expected kill-mid-append artifact that is ignored),
    /// a truncated SDF is an incomplete design and is always an error.
    UnexpectedEof,
    /// The top-level form is not `DELAYFILE`.
    NotADelayFile(String),
    /// A delay value did not parse as a finite number.
    BadNumber {
        /// 1-based line of the value.
        line: usize,
        /// The offending text.
        value: String,
    },
    /// Two `CELL` entries declare `IOPATH`s for the same instance.
    DuplicateInstance(String),
    /// An `INTERCONNECT` endpoint references an instance no `CELL`
    /// entry declares.
    UnknownInstance(String),
    /// A load instance has more than one `INTERCONNECT` driver, which
    /// cannot be a tree.
    MultipleDrivers(String),
    /// No instance is driver-only: the file has no clock root.
    NoRoot,
    /// Two instances have no driver; the delay network is a forest.
    MultipleRoots(String, String),
    /// An instance is unreachable from the root (a cycle or a detached
    /// island), so the delay network is not a tree.
    NotATree(String),
    /// A declared instance has an empty `CELLTYPE`.
    EmptyCellType(String),
    /// The file declares no cell instances at all.
    NoCells,
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::UnexpectedChar { line, found } => {
                write!(f, "line {line}: unexpected character '{found}'")
            }
            SdfError::UnexpectedToken {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected}, found '{found}'"),
            SdfError::UnexpectedEof => {
                write!(f, "unexpected end of file inside an open '(' form")
            }
            SdfError::NotADelayFile(kw) => {
                write!(f, "top-level form must be DELAYFILE, found '{kw}'")
            }
            SdfError::BadNumber { line, value } => {
                write!(f, "line {line}: '{value}' is not a finite delay value")
            }
            SdfError::DuplicateInstance(i) => {
                write!(f, "instance '{i}' is declared by more than one CELL entry")
            }
            SdfError::UnknownInstance(i) => {
                write!(f, "INTERCONNECT references undeclared instance '{i}'")
            }
            SdfError::MultipleDrivers(i) => {
                write!(f, "instance '{i}' has more than one INTERCONNECT driver")
            }
            SdfError::NoRoot => write!(f, "no instance is driver-only: the file has no clock root"),
            SdfError::MultipleRoots(a, b) => {
                write!(
                    f,
                    "both '{a}' and '{b}' are undriven: the file has no single root"
                )
            }
            SdfError::NotATree(i) => {
                write!(f, "instance '{i}' is not reachable from the root")
            }
            SdfError::EmptyCellType(i) => {
                write!(f, "instance '{i}' has an empty CELLTYPE")
            }
            SdfError::NoCells => write!(f, "the file declares no cell instances"),
        }
    }
}

impl std::error::Error for SdfError {}

/// One `(IOPATH …)` entry: the instance's input→output delay per output
/// edge, in picoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SdfIoPath {
    /// Input port name.
    pub from: String,
    /// Output port name.
    pub to: String,
    /// Delay when the output rises.
    pub rise: f64,
    /// Delay when the output falls.
    pub fall: f64,
}

/// One `(INTERCONNECT …)` entry: a net delay from a driver port to a
/// load port, in picoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SdfInterconnect {
    /// Driver port path (`instance/port`).
    pub from: String,
    /// Load port path (`instance/port`).
    pub to: String,
    /// Net delay.
    pub delay: f64,
}

/// One `(CELL …)` entry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SdfCell {
    /// `CELLTYPE` (library cell name); may be empty for the top scope.
    pub celltype: String,
    /// `INSTANCE` path; empty for the top scope.
    pub instance: String,
    /// `IOPATH` delays declared under this cell.
    pub iopaths: Vec<SdfIoPath>,
    /// `INTERCONNECT` delays declared under this cell.
    pub interconnects: Vec<SdfInterconnect>,
}

/// A parsed `(DELAYFILE …)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SdfFile {
    /// `(DESIGN "…")` header value, if present.
    pub design: Option<String>,
    /// `(TIMESCALE …)` header text, if present.
    pub timescale: Option<String>,
    /// Cell entries, in file order.
    pub cells: Vec<SdfCell>,
}

/// Splits a port path into its instance part: everything before the last
/// `/` (or, failing that, `.`) divider. A dividerless path is returned
/// whole — an instance referenced without a port.
#[must_use]
pub fn instance_of(port_path: &str) -> &str {
    port_path
        .rsplit_once('/')
        .or_else(|| port_path.rsplit_once('.'))
        .map_or(port_path, |(inst, _)| inst)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    LParen,
    RParen,
    Atom(String),
    Str(String),
}

fn atom_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || "_.$/\\:+-[]".contains(c)
}

fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, SdfError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                // Could be a comment (`//` at statement level) or the
                // start of an atom is impossible ('/' only occurs inside
                // port paths, never first) — treat `//` as a comment and
                // a lone '/' as a divider atom (DIVIDER statements).
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c2 in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    tokens.push((Token::Atom("/".to_owned()), line));
                }
            }
            '(' => {
                chars.next();
                tokens.push((Token::LParen, line));
            }
            ')' => {
                chars.next();
                tokens.push((Token::RParen, line));
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c2 in chars.by_ref() {
                    if c2 == '"' {
                        closed = true;
                        break;
                    }
                    if c2 == '\n' {
                        line += 1;
                    }
                    s.push(c2);
                }
                if !closed {
                    return Err(SdfError::UnexpectedEof);
                }
                tokens.push((Token::Str(s), line));
            }
            c if atom_char(c) => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if atom_char(c2) {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Atom(s), line));
            }
            other => return Err(SdfError::UnexpectedChar { line, found: other }),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_lparen(&mut self, what: &'static str) -> Result<(), SdfError> {
        let line = self.line();
        match self.next() {
            Some(Token::LParen) => Ok(()),
            Some(t) => Err(SdfError::UnexpectedToken {
                line,
                expected: what,
                found: format!("{t:?}"),
            }),
            None => Err(SdfError::UnexpectedEof),
        }
    }

    fn expect_rparen(&mut self, what: &'static str) -> Result<(), SdfError> {
        let line = self.line();
        match self.next() {
            Some(Token::RParen) => Ok(()),
            Some(t) => Err(SdfError::UnexpectedToken {
                line,
                expected: what,
                found: format!("{t:?}"),
            }),
            None => Err(SdfError::UnexpectedEof),
        }
    }

    /// An atom or quoted string.
    fn word(&mut self, what: &'static str) -> Result<String, SdfError> {
        let line = self.line();
        match self.next() {
            Some(Token::Atom(s)) | Some(Token::Str(s)) => Ok(s),
            Some(t) => Err(SdfError::UnexpectedToken {
                line,
                expected: what,
                found: format!("{t:?}"),
            }),
            None => Err(SdfError::UnexpectedEof),
        }
    }

    /// Skips to the `)` matching an already-consumed `(`.
    fn skip_balanced(&mut self) -> Result<(), SdfError> {
        let mut depth = 1usize;
        loop {
            match self.next() {
                Some(Token::LParen) => depth += 1,
                Some(Token::RParen) => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(SdfError::UnexpectedEof),
            }
        }
    }

    /// A port name: a bare atom, or an `(posedge X)`-style edge
    /// specifier whose last atom is the port.
    fn port(&mut self) -> Result<String, SdfError> {
        match self.peek() {
            Some(Token::LParen) => {
                self.next();
                let mut last = None;
                loop {
                    match self.next() {
                        Some(Token::Atom(s)) | Some(Token::Str(s)) => last = Some(s),
                        Some(Token::RParen) => break,
                        Some(t) => {
                            return Err(SdfError::UnexpectedToken {
                                line: self.line(),
                                expected: "port name or ')'",
                                found: format!("{t:?}"),
                            })
                        }
                        None => return Err(SdfError::UnexpectedEof),
                    }
                }
                last.ok_or(SdfError::UnexpectedToken {
                    line: self.line(),
                    expected: "port name inside edge specifier",
                    found: "()".to_owned(),
                })
            }
            _ => self.word("port name"),
        }
    }

    /// One `( value )` delay triple: `(typ)` or `(min:typ:max)`.
    fn triple(&mut self) -> Result<f64, SdfError> {
        self.expect_lparen("'(' opening a delay value")?;
        let line = self.line();
        let text = self.word("delay value")?;
        self.expect_rparen("')' closing a delay value")?;
        parse_triple(&text, line)
    }
}

fn parse_triple(text: &str, line: usize) -> Result<f64, SdfError> {
    let bad = || SdfError::BadNumber {
        line,
        value: text.to_owned(),
    };
    let parts: Vec<&str> = text.split(':').collect();
    let typ = match parts.as_slice() {
        [one] => one,
        [_, typ, _] => typ,
        _ => return Err(bad()),
    };
    let v: f64 = typ.trim().parse().map_err(|_| bad())?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(bad())
    }
}

fn parse_iopath(p: &mut Parser) -> Result<SdfIoPath, SdfError> {
    let from = p.port()?;
    let to = p.port()?;
    let rise = p.triple()?;
    let fall = if matches!(p.peek(), Some(Token::LParen)) {
        p.triple()?
    } else {
        rise
    };
    // Tolerate the SDF-spec form with up to twelve value triples.
    while matches!(p.peek(), Some(Token::LParen)) {
        p.triple()?;
    }
    p.expect_rparen("')' closing IOPATH")?;
    Ok(SdfIoPath {
        from,
        to,
        rise,
        fall,
    })
}

fn parse_interconnect(p: &mut Parser) -> Result<SdfInterconnect, SdfError> {
    let from = p.port()?;
    let to = p.port()?;
    let delay = p.triple()?;
    while matches!(p.peek(), Some(Token::LParen)) {
        p.triple()?;
    }
    p.expect_rparen("')' closing INTERCONNECT")?;
    Ok(SdfInterconnect { from, to, delay })
}

fn parse_absolute(p: &mut Parser, cell: &mut SdfCell) -> Result<(), SdfError> {
    loop {
        match p.peek() {
            Some(Token::RParen) => {
                p.next();
                return Ok(());
            }
            Some(Token::LParen) => {
                p.next();
                let kw = p.word("delay entry keyword")?;
                match kw.to_ascii_uppercase().as_str() {
                    "IOPATH" => cell.iopaths.push(parse_iopath(p)?),
                    "INTERCONNECT" => cell.interconnects.push(parse_interconnect(p)?),
                    _ => p.skip_balanced()?,
                }
            }
            Some(t) => {
                return Err(SdfError::UnexpectedToken {
                    line: p.line(),
                    expected: "'(' or ')' inside ABSOLUTE",
                    found: format!("{t:?}"),
                })
            }
            None => return Err(SdfError::UnexpectedEof),
        }
    }
}

fn parse_delay(p: &mut Parser, cell: &mut SdfCell) -> Result<(), SdfError> {
    loop {
        match p.peek() {
            Some(Token::RParen) => {
                p.next();
                return Ok(());
            }
            Some(Token::LParen) => {
                p.next();
                let kw = p.word("DELAY section keyword")?;
                if kw.eq_ignore_ascii_case("ABSOLUTE") {
                    parse_absolute(p, cell)?;
                } else {
                    p.skip_balanced()?;
                }
            }
            Some(t) => {
                return Err(SdfError::UnexpectedToken {
                    line: p.line(),
                    expected: "'(' or ')' inside DELAY",
                    found: format!("{t:?}"),
                })
            }
            None => return Err(SdfError::UnexpectedEof),
        }
    }
}

fn parse_cell(p: &mut Parser) -> Result<SdfCell, SdfError> {
    let mut cell = SdfCell::default();
    loop {
        match p.peek() {
            Some(Token::RParen) => {
                p.next();
                return Ok(cell);
            }
            Some(Token::LParen) => {
                p.next();
                let kw = p.word("CELL section keyword")?;
                match kw.to_ascii_uppercase().as_str() {
                    "CELLTYPE" => {
                        cell.celltype = p.word("cell type name")?;
                        p.expect_rparen("')' closing CELLTYPE")?;
                    }
                    "INSTANCE" => {
                        if matches!(p.peek(), Some(Token::RParen)) {
                            p.next(); // `(INSTANCE)` — the top scope.
                        } else {
                            cell.instance = p.word("instance path")?;
                            p.expect_rparen("')' closing INSTANCE")?;
                        }
                    }
                    "DELAY" => parse_delay(p, &mut cell)?,
                    _ => p.skip_balanced()?,
                }
            }
            Some(t) => {
                return Err(SdfError::UnexpectedToken {
                    line: p.line(),
                    expected: "'(' or ')' inside CELL",
                    found: format!("{t:?}"),
                })
            }
            None => return Err(SdfError::UnexpectedEof),
        }
    }
}

/// Parses an SDF document.
///
/// # Errors
///
/// A typed [`SdfError`] describing the first syntax problem; any
/// truncation of a valid file is an error, never a silently partial
/// parse.
pub fn parse(input: &str) -> Result<SdfFile, SdfError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.expect_lparen("'(' opening DELAYFILE")?;
    let kw = p.word("DELAYFILE keyword")?;
    if !kw.eq_ignore_ascii_case("DELAYFILE") {
        return Err(SdfError::NotADelayFile(kw));
    }
    let mut file = SdfFile::default();
    loop {
        match p.peek() {
            Some(Token::RParen) => {
                p.next();
                break;
            }
            Some(Token::LParen) => {
                p.next();
                let kw = p.word("header or CELL keyword")?;
                match kw.to_ascii_uppercase().as_str() {
                    "CELL" => file.cells.push(parse_cell(&mut p)?),
                    "DESIGN" => {
                        if !matches!(p.peek(), Some(Token::RParen)) {
                            file.design = Some(p.word("design name")?);
                        }
                        p.skip_balanced()?;
                    }
                    "TIMESCALE" => {
                        let mut scale = String::new();
                        while let Some(Token::Atom(s) | Token::Str(s)) = p.peek() {
                            if !scale.is_empty() {
                                scale.push(' ');
                            }
                            scale.push_str(s);
                            p.next();
                        }
                        file.timescale = Some(scale);
                        p.expect_rparen("')' closing TIMESCALE")?;
                    }
                    _ => p.skip_balanced()?,
                }
            }
            Some(t) => {
                return Err(SdfError::UnexpectedToken {
                    line: p.line(),
                    expected: "'(' or ')' inside DELAYFILE",
                    found: format!("{t:?}"),
                })
            }
            None => return Err(SdfError::UnexpectedEof),
        }
    }
    if let Some(t) = p.peek() {
        return Err(SdfError::UnexpectedToken {
            line: p.line(),
            expected: "end of file after DELAYFILE",
            found: format!("{t:?}"),
        });
    }
    Ok(file)
}

/// Renders an f64 delay as a `(v:v:v)` triple. Rust's shortest-round-trip
/// `Display` guarantees re-parsing reproduces the exact bits.
fn triple_text(v: f64) -> String {
    format!("({v}:{v}:{v})")
}

impl SdfFile {
    /// Renders the file in the subset [`parse`] reads back.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("(DELAYFILE\n");
        out.push_str("  (SDFVERSION \"3.0\")\n");
        if let Some(design) = &self.design {
            out.push_str(&format!("  (DESIGN \"{design}\")\n"));
        }
        out.push_str("  (DIVIDER /)\n");
        let scale = self.timescale.as_deref().unwrap_or("1ps");
        out.push_str(&format!("  (TIMESCALE {scale})\n"));
        for cell in &self.cells {
            out.push_str(&format!("  (CELL (CELLTYPE \"{}\")", cell.celltype));
            if cell.instance.is_empty() {
                out.push_str(" (INSTANCE)\n");
            } else {
                out.push_str(&format!(" (INSTANCE {})\n", cell.instance));
            }
            if !cell.iopaths.is_empty() || !cell.interconnects.is_empty() {
                out.push_str("    (DELAY (ABSOLUTE\n");
                for io in &cell.iopaths {
                    out.push_str(&format!(
                        "      (IOPATH {} {} {} {})\n",
                        io.from,
                        io.to,
                        triple_text(io.rise),
                        triple_text(io.fall)
                    ));
                }
                for net in &cell.interconnects {
                    out.push_str(&format!(
                        "      (INTERCONNECT {} {} {})\n",
                        net.from,
                        net.to,
                        triple_text(net.delay)
                    ));
                }
                out.push_str("    ))\n");
            }
            out.push_str("  )\n");
        }
        out.push_str(")\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
(DELAYFILE
  (SDFVERSION "3.0")
  (DESIGN "demo")
  (DATE "2011-06-05")
  (DIVIDER /)
  (TIMESCALE 1ps)
  (CELL (CELLTYPE "BUF_X16") (INSTANCE root)
    (DELAY (ABSOLUTE (IOPATH A Z (21.5:22.0:22.5) (23.0:23.5:24.0))))
  )
  (CELL (CELLTYPE "INV_X8") (INSTANCE u1)
    (DELAY (ABSOLUTE (IOPATH (posedge A) Z (11.0) (12.0))))
  )
  (CELL (CELLTYPE "demo") (INSTANCE)
    (DELAY (ABSOLUTE
      (INTERCONNECT root/Z u1/A (3.25:3.5:3.75))
    ))
  )
)
"#;

    #[test]
    fn parses_the_supported_subset() {
        let f = parse(SMALL).unwrap();
        assert_eq!(f.design.as_deref(), Some("demo"));
        assert_eq!(f.timescale.as_deref(), Some("1ps"));
        assert_eq!(f.cells.len(), 3);
        let root = &f.cells[0];
        assert_eq!(root.celltype, "BUF_X16");
        assert_eq!(root.instance, "root");
        assert_eq!(root.iopaths[0].rise, 22.0, "typ of min:typ:max");
        assert_eq!(root.iopaths[0].fall, 23.5);
        let u1 = &f.cells[1];
        assert_eq!(u1.iopaths[0].from, "A", "edge specifier unwrapped");
        assert_eq!(u1.iopaths[0].fall, 12.0);
        let top = &f.cells[2];
        assert_eq!(top.instance, "");
        assert_eq!(top.interconnects[0].from, "root/Z");
        assert_eq!(top.interconnects[0].delay, 3.5);
    }

    #[test]
    fn single_triple_fills_both_edges() {
        let f = parse(
            "(DELAYFILE (CELL (CELLTYPE \"BUF_X8\") (INSTANCE a)
              (DELAY (ABSOLUTE (IOPATH A Z (7.5))))))",
        )
        .unwrap();
        assert_eq!(f.cells[0].iopaths[0].rise, 7.5);
        assert_eq!(f.cells[0].iopaths[0].fall, 7.5);
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let f = parse(
            "(DELAYFILE (VOLTAGE 1.1:1.1:1.1) (PROCESS \"typ\")
              (CELL (CELLTYPE \"BUF_X8\") (INSTANCE a)
                (DELAY (INCREMENT (IOPATH A Z (1.0)))
                       (ABSOLUTE (PORT a/A (0.1)) (IOPATH A Z (2.0))))))",
        )
        .unwrap();
        assert_eq!(f.cells[0].iopaths.len(), 1, "INCREMENT and PORT skipped");
        assert_eq!(f.cells[0].iopaths[0].rise, 2.0);
    }

    #[test]
    fn truncation_is_a_typed_eof() {
        // Every proper prefix of the document (up to the final ')') is an
        // incomplete design and must be a typed error — never a silently
        // partial parse.
        let doc = SMALL.trim_end();
        for cut in 1..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let r = parse(&doc[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes parsed as Ok");
        }
        assert_eq!(parse("(DELAYFILE"), Err(SdfError::UnexpectedEof));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert!(matches!(parse(""), Err(SdfError::UnexpectedEof)));
        assert!(matches!(parse("(SPICE)"), Err(SdfError::NotADelayFile(_))));
        assert!(matches!(
            parse(
                "(DELAYFILE (CELL (CELLTYPE \"B\") (INSTANCE a)
                    (DELAY (ABSOLUTE (IOPATH A Z (nan))))))"
            ),
            Err(SdfError::BadNumber { .. })
        ));
        assert!(matches!(
            parse("(DELAYFILE) trailing"),
            Err(SdfError::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse("(DELAYFILE @)"),
            Err(SdfError::UnexpectedChar { .. })
        ));
    }

    #[test]
    fn instance_of_splits_on_the_last_divider() {
        assert_eq!(instance_of("top/u1/Z"), "top/u1");
        assert_eq!(instance_of("u1.A"), "u1");
        assert_eq!(instance_of("u1"), "u1");
    }

    #[test]
    fn render_round_trips_through_parse() {
        let f = parse(SMALL).unwrap();
        let again = parse(&f.render()).unwrap();
        assert_eq!(again.cells.len(), f.cells.len());
        assert_eq!(again.cells[0].iopaths, f.cells[0].iopaths);
        assert_eq!(again.cells[2].interconnects, f.cells[2].interconnects);
    }
}
