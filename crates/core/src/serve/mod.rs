//! Serve mode: a long-lived daemon that keeps characterized designs
//! resident and answers solve jobs over a unix socket.
//!
//! `wavemin serve --socket PATH` binds a [`std::os::unix::net::UnixListener`]
//! and speaks the line-delimited JSON protocol of [`protocol`]. Each
//! named session holds a [`CharacterizedDesign`] plus a [`ZoneCache`]
//! shared across that session's lifetime — *including across re-loads*,
//! so an ECO edit (`load` with the same session name and a few `edits`)
//! re-solves only the zones whose content actually changed and splices
//! the rest from cache (`zones_reused` in the solve response).
//!
//! Solve jobs run on a fixed worker pool behind a priority queue (higher
//! `priority` first, FIFO within a priority); connection handlers stay
//! cheap and block only on their own job's completion. Two concurrent
//! jobs on the same session dedup zone solves through the cache's
//! in-flight reservations rather than solving the same zone twice.
//!
//! A `solve` job sent with `"progress":true` streams `{"progress":{...}}`
//! lines on its connection while it runs (zones done/total, current
//! ladder rung, RSS) before the final response line. The daemon keeps a
//! [`MetricsRegistry`] of its own: every finished job's latency
//! histograms are absorbed into it, and the `metrics` command renders
//! the lot — job counters, queue depth, per-session cache stats, and
//! the histograms — as Prometheus text exposition. With
//! [`ServeOptions::log_json`] each job lifecycle event additionally
//! emits one structured JSON line on stderr.
//!
//! `SIGTERM`/`SIGINT` (or a `shutdown` command) stop the accept loop,
//! drain in-flight connections and queued jobs, unlink the socket, and
//! return cleanly.

pub mod protocol;

use std::collections::{BinaryHeap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use crate::checkpoint::ZoneCache;
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::observe::{
    bucket_upper_bound, MetricsRegistry, Progress, ProgressTracker, RunHistogram,
};
use crate::session::{CharacterizedDesign, SolveOptions};
use protocol::{err_response, ok_response, LoadRequest, Request, SolveRequest};
use serde::Value;
use wavemin_cells::Picoseconds;
use wavemin_clocktree::{Benchmark, NodeId};

/// How the daemon is launched.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to bind (unlinked on clean shutdown).
    pub socket_path: String,
    /// Worker threads executing solve jobs.
    pub workers: usize,
    /// Per-session zone-cache byte budget.
    pub cache_bytes: usize,
    /// Default per-session solver threads (`None` = auto).
    pub threads: Option<usize>,
    /// Emit one structured JSON line on stderr per job lifecycle event
    /// (`job_queued`, `job_start`, `job_done`, `daemon_start`,
    /// `daemon_stop`).
    pub log_json: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            socket_path: String::new(),
            workers: 2,
            cache_bytes: 256 << 20,
            threads: None,
            log_json: false,
        }
    }
}

/// Set by the signal handler; polled by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn request_shutdown(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn install_signal_handlers() {
    // SAFETY: `request_shutdown` only touches an atomic, which is
    // async-signal-safe; the previous handler is intentionally replaced.
    unsafe {
        signal(SIGINT, request_shutdown as *const () as usize);
        signal(SIGTERM, request_shutdown as *const () as usize);
    }
}

/// One named session: the resident characterized design (swapped on
/// re-load) and the zone cache that persists across re-loads.
struct SessionEntry {
    chr: RwLock<Arc<CharacterizedDesign>>,
    cache: Arc<ZoneCache>,
}

/// One message from a worker back to the job's connection handler:
/// zero or more progress lines, then exactly one final response.
enum JobMsg {
    /// A `{"progress":{...}}` line to stream before the final response.
    Progress(String),
    /// The final response line; the connection stops reading after it.
    Final(String),
}

/// A queued solve job. Ordered by priority (higher first), then
/// admission order (earlier first).
struct Job {
    priority: i64,
    seq: u64,
    request: SolveRequest,
    reply: mpsc::Sender<JobMsg>,
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Job {}
impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Job {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins, then lower seq.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct JobQueue {
    heap: BinaryHeap<Job>,
    closed: bool,
}

struct ServerState {
    opts: ServeOptions,
    sessions: Mutex<HashMap<String, Arc<SessionEntry>>>,
    queue: Mutex<JobQueue>,
    queue_ready: Condvar,
    next_seq: AtomicU64,
    connections: AtomicUsize,
    /// When the daemon started; uptime in `stats`/`metrics` replies.
    started: Instant,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    /// Daemon-lifetime registry: finished jobs' histograms are absorbed
    /// here, so the `metrics` verb sees latency across all jobs.
    metrics: MetricsRegistry,
}

impl ServerState {
    fn sessions(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<SessionEntry>>> {
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn enqueue(&self, job: Job) -> bool {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.closed {
            return false;
        }
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        log_json(
            self,
            "job_queued",
            &[
                ("session", Value::Str(job.request.session.clone())),
                ("seq", Value::UInt(job.seq)),
                ("priority", Value::Int(job.priority)),
            ],
        );
        q.heap.push(job);
        drop(q);
        self.queue_ready.notify_one();
        true
    }

    fn queue_depth(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .heap
            .len()
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained, which is the workers' exit signal.
    fn dequeue(&self) -> Option<Job> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = q.heap.pop() {
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self
                .queue_ready
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close_queue(&self) {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.closed = true;
        drop(q);
        self.queue_ready.notify_all();
    }
}

/// Runs the daemon until a shutdown signal or command, then drains and
/// unlinks the socket.
///
/// # Errors
///
/// Socket bind/configuration failures. Per-connection and per-job
/// failures are reported to the client, never escalated here.
pub fn run(opts: ServeOptions) -> Result<(), std::io::Error> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    let socket_path = opts.socket_path.clone();
    // A stale socket file from an unclean previous exit blocks bind.
    let _ = std::fs::remove_file(&socket_path);
    let listener = UnixListener::bind(&socket_path)?;
    listener.set_nonblocking(true)?;
    install_signal_handlers();

    let workers = opts.workers.max(1);
    let state = Arc::new(ServerState {
        opts,
        sessions: Mutex::new(HashMap::new()),
        queue: Mutex::new(JobQueue {
            heap: BinaryHeap::new(),
            closed: false,
        }),
        queue_ready: Condvar::new(),
        next_seq: AtomicU64::new(0),
        connections: AtomicUsize::new(0),
        started: Instant::now(),
        jobs_submitted: AtomicU64::new(0),
        jobs_completed: AtomicU64::new(0),
        jobs_failed: AtomicU64::new(0),
        metrics: MetricsRegistry::enabled(false),
    });
    log_json(
        &state,
        "daemon_start",
        &[
            ("socket", Value::Str(socket_path.clone())),
            ("workers", Value::UInt(workers as u64)),
        ],
    );

    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let st = Arc::clone(&state);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("wavemin-worker-{i}"))
                .spawn(move || worker_loop(&st))?,
        );
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let st = Arc::clone(&state);
                st.connections.fetch_add(1, Ordering::SeqCst);
                let spawned = std::thread::Builder::new()
                    .name("wavemin-conn".to_string())
                    .spawn(move || {
                        serve_connection(&st, stream);
                        st.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    state.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }

    // Drain: let in-flight connections finish their current exchange.
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    state.close_queue();
    for handle in worker_handles {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(&socket_path);
    log_json(&state, "daemon_stop", &[]);
    Ok(())
}

/// One structured JSON log line on stderr (no-op unless `--log-json`).
fn log_json(state: &ServerState, event: &str, fields: &[(&str, Value)]) {
    if !state.opts.log_json {
        return;
    }
    let mut map = vec![
        ("event".to_string(), Value::Str(event.to_string())),
        (
            "uptime_ms".to_string(),
            Value::UInt(state.started.elapsed().as_millis() as u64),
        ),
    ];
    map.extend(fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
    if let Ok(line) = serde_json::to_string(&Value::Map(map)) {
        eprintln!("{line}");
    }
}

fn worker_loop(state: &ServerState) {
    while let Some(job) = state.dequeue() {
        log_json(
            state,
            "job_start",
            &[
                ("session", Value::Str(job.request.session.clone())),
                ("seq", Value::UInt(job.seq)),
            ],
        );
        let started = Instant::now();
        let (response, ok) = execute_solve(state, &job.request, &job.reply);
        state
            .metrics
            .record_job_wall_ns(started.elapsed().as_nanos() as u64);
        if ok {
            state.jobs_completed.fetch_add(1, Ordering::Relaxed);
        } else {
            state.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        log_json(
            state,
            "job_done",
            &[
                ("session", Value::Str(job.request.session.clone())),
                ("seq", Value::UInt(job.seq)),
                ("ok", Value::Bool(ok)),
                (
                    "runtime_ms",
                    Value::UInt(started.elapsed().as_millis() as u64),
                ),
            ],
        );
        // A dropped receiver just means the client hung up.
        let _ = job.reply.send(JobMsg::Final(response));
    }
}

/// Serializes one progress tick as a `{"progress":{...}}` line.
fn progress_line(p: &Progress) -> String {
    serde_json::to_string(p)
        .map(|body| format!("{{\"progress\":{body}}}"))
        .unwrap_or_else(|_| "{\"progress\":{}}".to_string())
}

/// Runs one solve job; returns the final response line and whether the
/// solve succeeded. Progress ticks (when requested) stream through
/// `reply` while the job runs; the job's histograms land in the daemon
/// registry afterwards.
fn execute_solve(
    state: &ServerState,
    req: &SolveRequest,
    reply: &mpsc::Sender<JobMsg>,
) -> (String, bool) {
    let entry = match state.sessions().get(&req.session) {
        Some(e) => Arc::clone(e),
        None => {
            return (
                err_response(&format!("no session {:?}", req.session)),
                false,
            )
        }
    };
    let chr = {
        let g = entry.chr.read().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(&g)
    };
    let progress = if req.progress {
        // `mpsc::Sender` is `Send` but not `Sync`; the sink closure must
        // be `Sync`, so the clone rides behind a mutex.
        let tx = Mutex::new(reply.clone());
        ProgressTracker::enabled(Duration::from_millis(250), move |p: &Progress| {
            let guard = tx.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = guard.send(JobMsg::Progress(progress_line(p)));
        })
    } else {
        ProgressTracker::disabled()
    };
    let opts = SolveOptions {
        time_budget_ms: req.time_budget_ms,
        threads: None,
        collect_metrics: true,
        trace_spans: false,
        progress,
    };
    match chr.solve_cached(&entry.cache, &opts) {
        Ok(out) => {
            if let Some(report) = out.report.as_ref() {
                state.metrics.absorb_histograms(&report.histograms);
            }
            let (zones_reused, zone_solves, ladder_rung) =
                out.report.as_ref().map_or((0, 0, 0), |r| {
                    (
                        r.counters.zones_reused,
                        r.counters.zone_solves,
                        r.ladder_rung as u64,
                    )
                });
            let response = ok_response(vec![
                ("session".to_string(), Value::Str(req.session.clone())),
                (
                    "peak_before_ma".to_string(),
                    Value::Float(out.peak_before.value()),
                ),
                (
                    "peak_after_ma".to_string(),
                    Value::Float(out.peak_after.value()),
                ),
                (
                    "peak_after_bits".to_string(),
                    Value::Str(format!("{:016x}", out.peak_after.value().to_bits())),
                ),
                (
                    "skew_after_ps".to_string(),
                    Value::Float(out.skew_after.value()),
                ),
                ("zones_reused".to_string(), Value::UInt(zones_reused)),
                ("zone_solves".to_string(), Value::UInt(zone_solves)),
                ("ladder_rung".to_string(), Value::UInt(ladder_rung)),
                (
                    "degraded".to_string(),
                    Value::Bool(out.degradation.is_some()),
                ),
                (
                    "faulted_zones".to_string(),
                    Value::UInt(out.faulted_zones.len() as u64),
                ),
                (
                    "runtime_ms".to_string(),
                    Value::UInt(out.runtime.as_millis() as u64),
                ),
            ]);
            (response, true)
        }
        Err(e) => (err_response(&format!("solve failed: {e}")), false),
    }
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn prom_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Appends one histogram in Prometheus exposition format: cumulative
/// `_bucket{le=...}` lines over the sparse stored buckets, then `+Inf`,
/// `_sum`, and `_count`.
fn prom_histogram(out: &mut String, name: &str, h: &RunHistogram) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE wavemin_{name} histogram");
    let mut cumulative = 0u64;
    for b in &h.buckets {
        cumulative += b.count;
        let _ = writeln!(
            out,
            "wavemin_{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper_bound(b.index as usize)
        );
    }
    let _ = writeln!(out, "wavemin_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "wavemin_{name}_sum {}", h.sum);
    let _ = writeln!(out, "wavemin_{name}_count {}", h.count);
}

/// Renders the daemon's counters, gauges, per-session cache stats, and
/// absorbed job histograms as Prometheus text exposition.
fn render_prometheus(state: &ServerState) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# HELP wavemin_uptime_seconds Daemon uptime.");
    let _ = writeln!(out, "# TYPE wavemin_uptime_seconds gauge");
    let _ = writeln!(
        out,
        "wavemin_uptime_seconds {}",
        state.started.elapsed().as_secs_f64()
    );
    for (name, value) in [
        ("jobs_submitted", &state.jobs_submitted),
        ("jobs_completed", &state.jobs_completed),
        ("jobs_failed", &state.jobs_failed),
    ] {
        let _ = writeln!(out, "# TYPE wavemin_{name}_total counter");
        let _ = writeln!(
            out,
            "wavemin_{name}_total {}",
            value.load(Ordering::Relaxed)
        );
    }
    let _ = writeln!(out, "# TYPE wavemin_job_queue_depth gauge");
    let _ = writeln!(out, "wavemin_job_queue_depth {}", state.queue_depth());
    let _ = writeln!(out, "# TYPE wavemin_connections gauge");
    let _ = writeln!(
        out,
        "wavemin_connections {}",
        state.connections.load(Ordering::SeqCst)
    );
    let mut sessions: Vec<(String, crate::checkpoint::CacheStats)> = state
        .sessions()
        .iter()
        .map(|(name, entry)| (name.clone(), entry.cache.stats()))
        .collect();
    sessions.sort_by(|a, b| a.0.cmp(&b.0));
    let _ = writeln!(out, "# TYPE wavemin_sessions gauge");
    let _ = writeln!(out, "wavemin_sessions {}", sessions.len());
    for (metric, kind, pick) in [
        (
            "session_cache_entries",
            "gauge",
            (|s| s.entries as u64) as fn(&crate::checkpoint::CacheStats) -> u64,
        ),
        ("session_cache_bytes", "gauge", |s| s.bytes as u64),
        ("session_cache_hits_total", "counter", |s| s.hits),
        ("session_cache_misses_total", "counter", |s| s.misses),
        ("session_cache_evictions_total", "counter", |s| s.evictions),
    ] {
        let _ = writeln!(out, "# TYPE wavemin_{metric} {kind}");
        for (name, stats) in &sessions {
            let _ = writeln!(
                out,
                "wavemin_{metric}{{session=\"{}\"}} {}",
                prom_label(name),
                pick(stats)
            );
        }
    }
    if let Some(hists) = state.metrics.histograms() {
        for (name, hist) in hists.named() {
            prom_histogram(&mut out, name, hist);
        }
    }
    out
}

/// Builds the session design from the request's source: a synthesized
/// benchmark, or an imported SDF file (with an optional Liberty library).
/// The protocol parser guarantees exactly one source is present.
fn load_request_design(req: &LoadRequest) -> Result<Design, String> {
    if let Some(path) = &req.sdf {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let lib = match &req.lib {
            None => wavemin_cells::CellLibrary::nangate45(),
            Some(lib_path) => {
                let lib_text = std::fs::read_to_string(lib_path)
                    .map_err(|e| format!("cannot read {lib_path}: {e}"))?;
                wavemin_cells::liberty::parse_library(&lib_text)
                    .map_err(|e| format!("{lib_path}: {e}"))?
            }
        };
        let imported = crate::io::import_sdf(&text, lib).map_err(|e| format!("{path}: {e}"))?;
        return Ok(imported.design);
    }
    let name = req.benchmark.as_deref().unwrap_or_default();
    let Some(bench) = Benchmark::all().into_iter().find(|b| b.name == name) else {
        return Err(format!("unknown benchmark {name:?}"));
    };
    Ok(Design::from_benchmark(&bench, req.seed))
}

fn execute_load(state: &ServerState, req: &LoadRequest) -> String {
    let mut design = match load_request_design(req) {
        Ok(d) => d,
        Err(e) => return err_response(&e),
    };
    for edit in &req.edits {
        if edit.node >= design.tree.len() {
            return err_response(&format!(
                "edit node {} out of range (tree has {} nodes)",
                edit.node,
                design.tree.len()
            ));
        }
        design.tree.node_mut(NodeId(edit.node)).delay_trim += Picoseconds::new(edit.delay_trim_ps);
    }
    let mut config = WaveMinConfig::default();
    if let Some(kappa) = req.skew_bound_ps {
        config.skew_bound = Picoseconds::new(kappa);
    }
    if let Some(s) = req.sample_count {
        config.sample_count = s;
    }
    if req.max_intervals.is_some() {
        config.max_intervals = req.max_intervals;
    }
    config.threads = req.threads.or(state.opts.threads);
    let chr = match CharacterizedDesign::new(design, config) {
        Ok(c) => Arc::new(c),
        Err(e) => return err_response(&format!("characterization failed: {e}")),
    };
    let eco_hint = chr
        .eco_probe_sink()
        .map_or(Value::Null, |n| Value::UInt(n.0 as u64));
    let (zones, intervals, sinks) = (chr.zone_count(), chr.interval_count(), chr.sink_count());
    let mut sessions = state.sessions();
    let reloaded = if let Some(entry) = sessions.get(&req.session) {
        // Re-load keeps the zone cache: that is what makes the next
        // solve of an edited design incremental.
        let mut g = entry.chr.write().unwrap_or_else(PoisonError::into_inner);
        *g = chr;
        true
    } else {
        sessions.insert(
            req.session.clone(),
            Arc::new(SessionEntry {
                chr: RwLock::new(chr),
                cache: Arc::new(ZoneCache::new(state.opts.cache_bytes)),
            }),
        );
        false
    };
    drop(sessions);
    ok_response(vec![
        ("session".to_string(), Value::Str(req.session.clone())),
        ("reloaded".to_string(), Value::Bool(reloaded)),
        ("zones".to_string(), Value::UInt(zones as u64)),
        ("intervals".to_string(), Value::UInt(intervals as u64)),
        ("sinks".to_string(), Value::UInt(sinks as u64)),
        ("eco_hint".to_string(), eco_hint),
    ])
}

fn execute_stats(state: &ServerState, session: &str) -> String {
    let entry = match state.sessions().get(session) {
        Some(e) => Arc::clone(e),
        None => return err_response(&format!("no session {session:?}")),
    };
    let s = entry.cache.stats();
    ok_response(vec![
        ("session".to_string(), Value::Str(session.to_string())),
        ("entries".to_string(), Value::UInt(s.entries as u64)),
        ("bytes".to_string(), Value::UInt(s.bytes as u64)),
        ("hits".to_string(), Value::UInt(s.hits)),
        ("misses".to_string(), Value::UInt(s.misses)),
        ("evictions".to_string(), Value::UInt(s.evictions)),
        (
            "uptime_ms".to_string(),
            Value::UInt(state.started.elapsed().as_millis() as u64),
        ),
        (
            "queue_depth".to_string(),
            Value::UInt(state.queue_depth() as u64),
        ),
        (
            "jobs_submitted".to_string(),
            Value::UInt(state.jobs_submitted.load(Ordering::Relaxed)),
        ),
        (
            "jobs_completed".to_string(),
            Value::UInt(state.jobs_completed.load(Ordering::Relaxed)),
        ),
        (
            "jobs_failed".to_string(),
            Value::UInt(state.jobs_failed.load(Ordering::Relaxed)),
        ),
    ])
}

fn serve_connection(state: &ServerState, stream: UnixStream) {
    // The listener is nonblocking; accepted streams inherit that and
    // must be switched back for blocking line reads.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_request(&line) {
            Err(msg) => err_response(&msg),
            Ok(Request::Ping) => ok_response(vec![("pong".to_string(), Value::Bool(true))]),
            Ok(Request::Load(req)) => execute_load(state, &req),
            Ok(Request::Stats { session }) => execute_stats(state, &session),
            Ok(Request::Metrics) => ok_response(vec![
                ("format".to_string(), Value::Str("prometheus".to_string())),
                ("body".to_string(), Value::Str(render_prometheus(state))),
            ]),
            Ok(Request::Solve(req)) => {
                let (tx, rx) = mpsc::channel();
                let job = Job {
                    priority: req.priority,
                    seq: state.next_seq.fetch_add(1, Ordering::SeqCst),
                    request: req,
                    reply: tx,
                };
                if state.enqueue(job) {
                    loop {
                        match rx.recv() {
                            Ok(JobMsg::Progress(line)) => {
                                // A failed write means the client hung
                                // up; keep draining so the final send
                                // completes and the loop ends.
                                let _ = writeln!(writer, "{line}");
                                let _ = writer.flush();
                            }
                            Ok(JobMsg::Final(response)) => break response,
                            Err(_) => break err_response("server shutting down"),
                        }
                    }
                } else {
                    err_response("server shutting down")
                }
            }
            Ok(Request::Shutdown) => {
                SHUTDOWN.store(true, Ordering::SeqCst);
                let bye = ok_response(vec![("shutting_down".to_string(), Value::Bool(true))]);
                let _ = writeln!(writer, "{bye}");
                let _ = writer.flush();
                return;
            }
        };
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            break;
        }
    }
}

/// One-shot client: connect, send `line`, print the response line.
///
/// Returns the raw final response. Interleaved `{"progress":{...}}`
/// lines from a `"progress":true` solve are echoed to stderr as they
/// arrive rather than returned. Used by `wavemin client` so shell
/// scripts (and the CI smoke test) don't need a JSON-speaking socket
/// tool.
///
/// # Errors
///
/// Connection or I/O failures, or a missing response line.
pub fn client_request(socket_path: &str, line: &str) -> Result<String, std::io::Error> {
    let mut stream = UnixStream::connect(socket_path)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    writeln!(stream, "{line}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection without responding",
            ));
        }
        let trimmed = response.trim_end();
        if trimmed.starts_with("{\"progress\":") {
            eprintln!("{trimmed}");
            continue;
        }
        return Ok(trimmed.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_queue_orders_by_priority_then_fifo() {
        let (tx, _rx) = mpsc::channel::<JobMsg>();
        let mk = |priority, seq| Job {
            priority,
            seq,
            request: SolveRequest {
                session: "s".to_string(),
                priority,
                time_budget_ms: None,
                progress: false,
            },
            reply: tx.clone(),
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(0, 0));
        heap.push(mk(5, 1));
        heap.push(mk(5, 2));
        heap.push(mk(1, 3));
        let order: Vec<(i64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|j| (j.priority, j.seq))
            .collect();
        assert_eq!(order, vec![(5, 1), (5, 2), (1, 3), (0, 0)]);
    }

    #[test]
    fn load_from_sdf_over_a_socket() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let socket = dir.join(format!("wavemin-serve-sdf-test-{pid}.sock"));
        let socket_path = socket.to_string_lossy().to_string();
        let sdf = dir.join(format!("wavemin-serve-sdf-test-{pid}.sdf"));
        std::fs::write(
            &sdf,
            r#"(DELAYFILE (SDFVERSION "3.0") (DESIGN "tiny") (TIMESCALE 1ps)
  (CELL (CELLTYPE "BUF_X16") (INSTANCE clk_root)
    (DELAY (ABSOLUTE (IOPATH A Z (20.0) (21.0)))))
  (CELL (CELLTYPE "BUF_X8") (INSTANCE u1)
    (DELAY (ABSOLUTE (IOPATH A Z (15.5) (16.0)))))
  (CELL (CELLTYPE "INV_X8") (INSTANCE u2)
    (DELAY (ABSOLUTE (IOPATH A Z (14.0) (13.25)))))
  (CELL (CELLTYPE "tiny") (INSTANCE)
    (DELAY (ABSOLUTE
      (INTERCONNECT clk_root/Z u1/A (5.0))
      (INTERCONNECT clk_root/Z u2/A (6.5))))))
"#,
        )
        .expect("write sdf");
        SHUTDOWN.store(false, Ordering::SeqCst);
        let opts = ServeOptions {
            socket_path: socket_path.clone(),
            workers: 1,
            cache_bytes: 16 << 20,
            threads: Some(1),
            log_json: false,
        };
        let server = std::thread::spawn(move || run(opts));
        let deadline = Instant::now() + Duration::from_secs(10);
        while !socket.exists() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let ask = |line: &str| client_request(&socket_path, line).expect("request");

        let sdf_json = sdf.to_string_lossy().replace('\\', "\\\\");
        let loaded = ask(&format!(
            r#"{{"cmd":"load","session":"sdf","sdf":"{sdf_json}"}}"#
        ));
        assert!(loaded.contains("\"ok\":true"), "{loaded}");
        assert!(loaded.contains("\"sinks\":2"), "{loaded}");

        let solved = ask(r#"{"cmd":"solve","session":"sdf"}"#);
        assert!(solved.contains("\"ok\":true"), "{solved}");

        // A missing file must come back as a typed error, not a crash.
        let bad = ask(r#"{"cmd":"load","session":"bad","sdf":"/no/such/file.sdf"}"#);
        assert!(bad.contains("\"ok\":false"), "{bad}");
        // Exclusivity is enforced at the protocol layer.
        let both = ask(r#"{"cmd":"load","session":"x","benchmark":"s15850","sdf":"a.sdf"}"#);
        assert!(both.contains("mutually exclusive"), "{both}");

        let bye = ask(r#"{"cmd":"shutdown"}"#);
        assert!(bye.contains("\"shutting_down\":true"), "{bye}");
        server
            .join()
            .expect("server thread")
            .expect("clean shutdown");
        let _ = std::fs::remove_file(&sdf);
    }

    #[test]
    fn end_to_end_over_a_socket_with_eco_reload() {
        let dir = std::env::temp_dir();
        let socket = dir.join(format!("wavemin-serve-test-{}.sock", std::process::id()));
        let socket_path = socket.to_string_lossy().to_string();
        SHUTDOWN.store(false, Ordering::SeqCst);
        let opts = ServeOptions {
            socket_path: socket_path.clone(),
            workers: 2,
            cache_bytes: 64 << 20,
            threads: Some(1),
            log_json: true,
        };
        let server = std::thread::spawn(move || run(opts));

        // Wait for the socket to appear.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !socket.exists() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let ask = |line: &str| client_request(&socket_path, line).expect("request");

        let pong = ask(r#"{"cmd":"ping"}"#);
        assert!(pong.contains("\"ok\":true"), "{pong}");

        let loaded = ask(r#"{"cmd":"load","session":"eco","benchmark":"s15850","seed":11}"#);
        assert!(loaded.contains("\"ok\":true"), "{loaded}");
        assert!(loaded.contains("\"reloaded\":false"), "{loaded}");
        let hint = loaded
            .split("\"eco_hint\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .expect("eco_hint field")
            .trim()
            .to_string();
        assert_ne!(hint, "null", "benchmark must offer an ECO probe sink");

        let cold = ask(r#"{"cmd":"solve","session":"eco"}"#);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        assert!(cold.contains("\"zones_reused\":0"), "{cold}");

        // ECO re-load of the SAME session (cache kept), tiny trim on the
        // probe sink, then an incremental re-solve.
        let reload = ask(&format!(
            r#"{{"cmd":"load","session":"eco","benchmark":"s15850","seed":11,"edits":[{{"node":{hint},"delay_trim_ps":2.0}}]}}"#,
        ));
        assert!(reload.contains("\"reloaded\":true"), "{reload}");
        let eco = ask(r#"{"cmd":"solve","session":"eco"}"#);
        assert!(eco.contains("\"ok\":true"), "{eco}");
        let reused: u64 = eco
            .split("\"zones_reused\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("zones_reused field");
        assert!(reused > 0, "ECO re-solve must splice cached zones: {eco}");

        // A progress solve streams `{"progress":...}` lines before the
        // final response; the guard's final tick always arrives with
        // done:true even when the job finishes under one tick interval.
        let mut raw = UnixStream::connect(&socket_path).expect("connect");
        writeln!(raw, r#"{{"cmd":"solve","session":"eco","progress":true}}"#).expect("send");
        raw.flush().expect("flush");
        let mut raw_reader = BufReader::new(raw);
        let mut saw_done_tick = false;
        let streamed_final = loop {
            let mut l = String::new();
            assert!(
                raw_reader.read_line(&mut l).expect("read line") > 0,
                "connection closed before the final response"
            );
            let t = l.trim_end();
            if t.starts_with("{\"progress\":") {
                saw_done_tick |= t.contains("\"done\":true");
                continue;
            }
            break t.to_string();
        };
        assert!(streamed_final.contains("\"ok\":true"), "{streamed_final}");
        assert!(saw_done_tick, "the final progress tick must stream");

        let stats = ask(r#"{"cmd":"stats","session":"eco"}"#);
        assert!(stats.contains("\"hits\":"), "{stats}");
        assert!(stats.contains("\"uptime_ms\":"), "{stats}");
        assert!(stats.contains("\"queue_depth\":0"), "{stats}");
        assert!(stats.contains("\"jobs_submitted\":3"), "{stats}");
        assert!(stats.contains("\"jobs_completed\":3"), "{stats}");
        assert!(stats.contains("\"jobs_failed\":0"), "{stats}");

        // Prometheus exposition reflects the finished jobs and the
        // histograms absorbed from their reports.
        let metrics = ask(r#"{"cmd":"metrics"}"#);
        assert!(metrics.contains("\"format\":\"prometheus\""), "{metrics}");
        assert!(
            metrics.contains("wavemin_jobs_completed_total 3"),
            "{metrics}"
        );
        assert!(metrics.contains("wavemin_job_wall_ns_count 3"), "{metrics}");
        assert!(
            metrics.contains("wavemin_zone_solve_ns_bucket"),
            "{metrics}"
        );
        assert!(
            metrics.contains("session=\\\"eco\\\""),
            "per-session cache stats must be labelled: {metrics}"
        );

        let bye = ask(r#"{"cmd":"shutdown"}"#);
        assert!(bye.contains("\"shutting_down\":true"), "{bye}");
        server
            .join()
            .expect("server thread")
            .expect("clean shutdown");
        assert!(!socket.exists(), "socket must be unlinked on shutdown");
    }
}
