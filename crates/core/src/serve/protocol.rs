//! The serve-mode wire protocol: line-delimited JSON over a unix socket.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line with an `"ok"` boolean. Requests are decoded by
//! hand from [`serde::Value`] trees (the same pattern as
//! [`crate::observe::RunReport::from_json`]) with unknown fields
//! rejected, so protocol drift fails loudly instead of being silently
//! ignored.
//!
//! Commands:
//!
//! * `{"cmd":"ping"}` — liveness probe.
//! * `{"cmd":"load","session":S,"benchmark":B,"seed":N,...}` — create or
//!   replace session `S` with a characterized benchmark design. Instead
//!   of `benchmark`, `"sdf":PATH` (optionally with `"lib":PATH`) imports
//!   a signoff SDF file — exactly one of the two must be given. Optional
//!   `skew_bound_ps`, `sample_count`, `max_intervals`, `threads`, and
//!   `edits` (a list of `{"node":id,"delay_trim_ps":f}` ECO trims applied
//!   before characterization). Re-loading a session keeps its zone cache,
//!   which is what makes an ECO re-solve incremental.
//! * `{"cmd":"solve","session":S,...}` — enqueue a solve job. Optional
//!   `priority` (higher runs first), `time_budget_ms`, and `progress`
//!   (stream `{"progress":{...}}` lines on the job connection before
//!   the final response).
//! * `{"cmd":"stats","session":S}` — the session's zone-cache counters
//!   plus daemon-level queue depth, uptime, and job counters.
//! * `{"cmd":"metrics"}` — Prometheus text exposition of the daemon's
//!   counters, gauges, and latency histograms.
//! * `{"cmd":"shutdown"}` — stop accepting and drain.

use serde::Value;

/// An ECO edit: add `delay_trim_ps` to one node's delay trim.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoEdit {
    /// Tree node id.
    pub node: usize,
    /// Picoseconds added to the node's `delay_trim`.
    pub delay_trim_ps: f64,
}

/// The `load` command payload.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRequest {
    /// Session name (created or replaced).
    pub session: String,
    /// Benchmark name (see `wavemin bench` names). Exactly one of
    /// `benchmark` and `sdf` must be given.
    pub benchmark: Option<String>,
    /// Path to an SDF file to import instead of synthesizing a
    /// benchmark (see `wavemin import`).
    pub sdf: Option<String>,
    /// Liberty-subset library path used with `sdf` (default: the
    /// built-in nangate45 library).
    pub lib: Option<String>,
    /// Tree-synthesis seed.
    pub seed: u64,
    /// Skew bound override, picoseconds.
    pub skew_bound_ps: Option<f64>,
    /// Sample-count override.
    pub sample_count: Option<usize>,
    /// Feasible-interval cap override.
    pub max_intervals: Option<usize>,
    /// Per-session worker-thread override.
    pub threads: Option<usize>,
    /// ECO trims applied to the design before characterization.
    pub edits: Vec<EcoEdit>,
}

/// The `solve` command payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Session to solve.
    pub session: String,
    /// Queue priority; higher runs first (FIFO within a priority).
    pub priority: i64,
    /// Per-job wall-clock budget, milliseconds.
    pub time_budget_ms: Option<u64>,
    /// Stream progress lines on the job connection while the job runs.
    pub progress: bool,
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Create or replace a session.
    Load(LoadRequest),
    /// Enqueue a solve job.
    Solve(SolveRequest),
    /// Zone-cache counters of a session.
    Stats {
        /// Session to report on.
        session: String,
    },
    /// Prometheus text exposition of daemon counters and histograms.
    Metrics,
    /// Stop accepting connections and drain in-flight work.
    Shutdown,
}

/// Decodes one request line.
///
/// # Errors
///
/// A human-readable message naming the malformed or unknown part.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let Value::Map(entries) = &v else {
        return Err("request must be a JSON object".to_string());
    };
    let cmd = str_field(entries, "cmd")?;
    match cmd.as_str() {
        "ping" => {
            expect_fields(entries, &["cmd"])?;
            Ok(Request::Ping)
        }
        "shutdown" => {
            expect_fields(entries, &["cmd"])?;
            Ok(Request::Shutdown)
        }
        "metrics" => {
            expect_fields(entries, &["cmd"])?;
            Ok(Request::Metrics)
        }
        "stats" => {
            expect_fields(entries, &["cmd", "session"])?;
            Ok(Request::Stats {
                session: str_field(entries, "session")?,
            })
        }
        "load" => {
            expect_fields(
                entries,
                &[
                    "cmd",
                    "session",
                    "benchmark",
                    "sdf",
                    "lib",
                    "seed",
                    "skew_bound_ps",
                    "sample_count",
                    "max_intervals",
                    "threads",
                    "edits",
                ],
            )?;
            let edits = match get(entries, "edits") {
                None => Vec::new(),
                Some(Value::Seq(items)) => items
                    .iter()
                    .map(|item| {
                        let Value::Map(e) = item else {
                            return Err("each edit must be an object".to_string());
                        };
                        expect_fields(e, &["node", "delay_trim_ps"])?;
                        Ok(EcoEdit {
                            node: usize_field(e, "node")?,
                            delay_trim_ps: f64_field(e, "delay_trim_ps")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
                Some(_) => return Err("edits must be a list".to_string()),
            };
            let load = LoadRequest {
                session: str_field(entries, "session")?,
                benchmark: opt_str_field(entries, "benchmark")?,
                sdf: opt_str_field(entries, "sdf")?,
                lib: opt_str_field(entries, "lib")?,
                seed: opt_u64_field(entries, "seed")?.unwrap_or(1),
                skew_bound_ps: opt_f64_field(entries, "skew_bound_ps")?,
                sample_count: opt_usize_field(entries, "sample_count")?,
                max_intervals: opt_usize_field(entries, "max_intervals")?,
                threads: opt_usize_field(entries, "threads")?,
                edits,
            };
            match (&load.benchmark, &load.sdf) {
                (None, None) => return Err("load needs either benchmark or sdf".to_string()),
                (Some(_), Some(_)) => {
                    return Err("benchmark and sdf are mutually exclusive".to_string())
                }
                _ => {}
            }
            if load.lib.is_some() && load.sdf.is_none() {
                return Err("lib requires sdf".to_string());
            }
            Ok(Request::Load(load))
        }
        "solve" => {
            expect_fields(
                entries,
                &["cmd", "session", "priority", "time_budget_ms", "progress"],
            )?;
            Ok(Request::Solve(SolveRequest {
                session: str_field(entries, "session")?,
                priority: opt_i64_field(entries, "priority")?.unwrap_or(0),
                time_budget_ms: opt_u64_field(entries, "time_budget_ms")?,
                progress: opt_bool_field(entries, "progress")?.unwrap_or(false),
            }))
        }
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// Renders a success response with the given extra fields.
#[must_use]
pub fn ok_response(fields: Vec<(String, Value)>) -> String {
    let mut map = vec![("ok".to_string(), Value::Bool(true))];
    map.extend(fields);
    render(&Value::Map(map))
}

/// Renders a failure response carrying `error`.
#[must_use]
pub fn err_response(error: &str) -> String {
    render(&Value::Map(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(error.to_string())),
    ]))
}

fn render(v: &Value) -> String {
    // Value serialization cannot fail (no non-representable types).
    serde_json::to_string(v).unwrap_or_else(|_| "{\"ok\":false,\"error\":\"render\"}".to_string())
}

fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn expect_fields(entries: &[(String, Value)], allowed: &[&str]) -> Result<(), String> {
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown field {k:?}"));
        }
    }
    Ok(())
}

fn str_field(entries: &[(String, Value)], key: &str) -> Result<String, String> {
    match get(entries, key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("{key} must be a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn opt_str_field(entries: &[(String, Value)], key: &str) -> Result<Option<String>, String> {
    match get(entries, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("{key} must be a string")),
    }
}

fn opt_bool_field(entries: &[(String, Value)], key: &str) -> Result<Option<bool>, String> {
    match get(entries, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("{key} must be a boolean")),
    }
}

fn opt_u64_field(entries: &[(String, Value)], key: &str) -> Result<Option<u64>, String> {
    match get(entries, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::UInt(n)) => Ok(Some(*n)),
        Some(Value::Int(n)) if *n >= 0 => Ok(Some(*n as u64)),
        Some(_) => Err(format!("{key} must be a non-negative integer")),
    }
}

fn opt_i64_field(entries: &[(String, Value)], key: &str) -> Result<Option<i64>, String> {
    match get(entries, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(n)) => Ok(Some(*n)),
        Some(Value::UInt(n)) => i64::try_from(*n)
            .map(Some)
            .map_err(|_| format!("{key} out of range")),
        Some(_) => Err(format!("{key} must be an integer")),
    }
}

fn opt_usize_field(entries: &[(String, Value)], key: &str) -> Result<Option<usize>, String> {
    Ok(opt_u64_field(entries, key)?.map(|n| usize::try_from(n).unwrap_or(usize::MAX)))
}

fn usize_field(entries: &[(String, Value)], key: &str) -> Result<usize, String> {
    opt_usize_field(entries, key)?.ok_or_else(|| format!("missing field {key:?}"))
}

fn f64_field(entries: &[(String, Value)], key: &str) -> Result<f64, String> {
    opt_f64_field(entries, key)?.ok_or_else(|| format!("missing field {key:?}"))
}

fn opt_f64_field(entries: &[(String, Value)], key: &str) -> Result<Option<f64>, String> {
    match get(entries, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Float(f)) => Ok(Some(*f)),
        Some(Value::Int(n)) => Ok(Some(*n as f64)),
        Some(Value::UInt(n)) => Ok(Some(*n as f64)),
        Some(_) => Err(format!("{key} must be a number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_command_set() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#), Ok(Request::Ping));
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"stats","session":"a"}"#),
            Ok(Request::Stats {
                session: "a".to_string()
            })
        );
        let load = parse_request(
            r#"{"cmd":"load","session":"a","benchmark":"s15850","seed":7,
                "skew_bound_ps":25.5,"edits":[{"node":12,"delay_trim_ps":2.0}]}"#,
        )
        .expect("load");
        match load {
            Request::Load(l) => {
                assert_eq!(l.session, "a");
                assert_eq!(l.benchmark.as_deref(), Some("s15850"));
                assert_eq!(l.sdf, None);
                assert_eq!(l.seed, 7);
                assert_eq!(l.skew_bound_ps, Some(25.5));
                assert_eq!(
                    l.edits,
                    vec![EcoEdit {
                        node: 12,
                        delay_trim_ps: 2.0
                    }]
                );
                assert_eq!(l.sample_count, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let solve = parse_request(r#"{"cmd":"solve","session":"a","priority":3}"#).expect("solve");
        match solve {
            Request::Solve(s) => {
                assert_eq!(s.priority, 3);
                assert_eq!(s.time_budget_ms, None);
                assert!(!s.progress, "progress defaults off");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let solve = parse_request(r#"{"cmd":"solve","session":"a","progress":true}"#)
            .expect("solve with progress");
        match solve {
            Request::Solve(s) => assert!(s.progress),
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(parse_request(r#"{"cmd":"metrics"}"#), Ok(Request::Metrics));
    }

    #[test]
    fn load_accepts_sdf_and_enforces_exclusivity() {
        let load =
            parse_request(r#"{"cmd":"load","session":"a","sdf":"tree.sdf","lib":"cells.lib"}"#)
                .expect("sdf load");
        match load {
            Request::Load(l) => {
                assert_eq!(l.benchmark, None);
                assert_eq!(l.sdf.as_deref(), Some("tree.sdf"));
                assert_eq!(l.lib.as_deref(), Some("cells.lib"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let err = parse_request(r#"{"cmd":"load","session":"a"}"#).unwrap_err();
        assert!(err.contains("benchmark or sdf"), "{err}");
        let err =
            parse_request(r#"{"cmd":"load","session":"a","benchmark":"s15850","sdf":"x.sdf"}"#)
                .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_request(r#"{"cmd":"load","session":"a","benchmark":"s15850","lib":"x"}"#)
            .unwrap_err();
        assert!(err.contains("lib requires sdf"), "{err}");
    }

    #[test]
    fn rejects_unknown_fields_and_commands() {
        assert!(parse_request(r#"{"cmd":"ping","extra":1}"#).is_err());
        assert!(parse_request(r#"{"cmd":"metrics","extra":1}"#).is_err());
        assert!(
            parse_request(r#"{"cmd":"solve","session":"a","progress":1}"#).is_err(),
            "progress must be a boolean"
        );
        assert!(parse_request(r#"{"cmd":"fly"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(
            parse_request(r#"{"cmd":"solve"}"#).is_err(),
            "session required"
        );
    }

    #[test]
    fn responses_round_trip_through_the_parser_side() {
        let ok = ok_response(vec![("zones".to_string(), Value::UInt(4))]);
        assert!(ok.starts_with('{') && ok.contains("\"ok\":true") && ok.contains("\"zones\":4"));
        let err = err_response("nope");
        assert!(err.contains("\"ok\":false") && err.contains("nope"));
    }
}
