//! Sharded optimization: independent subtree solves merged at the root.
//!
//! [`optimize_sharded`] splits the clock tree into subtree shards of
//! bounded sink count ([`wavemin_clocktree::shard::shard_by_sinks`]),
//! runs the full ClkWaveMin flow on each shard *independently*, remaps
//! every shard's assignment back to the original node ids, and
//! validates the merged assignment with exact timing on the full tree.
//!
//! Each shard keeps the original trunk chain from the clock root down
//! to its subtree (siblings stubbed with their real cells and wire
//! loads), so arrivals inside a shard are bit-exact against the full
//! tree and every shard optimizes against *absolute* arrival windows.
//! What sharding gives up is the global interval coordination: each
//! shard picks its own feasible window, so the *cross-shard* skew is
//! only checked — not enforced — during the per-shard solves. The
//! merged assignment is re-validated against the exact global skew
//! bound; when it violates the bound the driver falls back to the
//! identity assignment, mirroring the interval framework's own
//! validation ladder. In practice equalized trees anchor every shard
//! on near-identical arrival sets and the merge passes.

use crate::algo::{count_kind, finish_outcome, ClkWaveMin, Outcome};
use crate::assignment::Assignment;
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use wavemin_cells::units::Picoseconds;
use wavemin_cells::CellKind;
use wavemin_clocktree::shard::{shard_by_sinks, SubtreeShard};
use wavemin_clocktree::timing::TimingAdjust;

/// The merged result of a sharded run, plus per-shard accounting.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// The merged, globally re-validated outcome.
    pub outcome: Outcome,
    /// Number of subtree shards solved.
    pub shard_count: usize,
    /// Sinks per shard, in shard order.
    pub shard_sinks: Vec<usize>,
    /// `true` when the merged assignment violated the exact global skew
    /// bound and the identity fallback was returned instead.
    pub merge_fallback: bool,
}

/// Optimizes a design shard-by-shard: at most `max_sinks_per_shard`
/// sinks are solved per ClkWaveMin invocation, so peak memory scales
/// with the shard size rather than the design size.
///
/// # Errors
///
/// Any error a plain [`ClkWaveMin::run`] can produce (the first failing
/// shard aborts the run), or [`WaveMinError::Timing`] from the final
/// exact validation.
pub fn optimize_sharded(
    design: &Design,
    config: &WaveMinConfig,
    max_sinks_per_shard: usize,
) -> Result<ShardedOutcome, WaveMinError> {
    config.validate()?;
    let shards = shard_by_sinks(&design.tree, max_sinks_per_shard);
    let shard_count = shards.len();
    let mut shard_sinks = Vec::with_capacity(shard_count);
    let mut merged = Assignment::new();
    let mut estimated_cost = 0.0_f64;
    let mut intervals_tried = 0;
    let mut runtime = std::time::Duration::ZERO;
    let mut degenerate_zones = 0;
    let solver = ClkWaveMin::new(config.clone());
    for shard in &shards {
        shard_sinks.push(shard.tree.leaves().len());
        let sub = shard_design(design, shard);
        let out = solver.run(&sub)?;
        intervals_tried += out.intervals_tried;
        runtime += out.runtime;
        degenerate_zones += out.degenerate_zones;
        // A shard that fell back to identity reports a NaN cost; the
        // merged cost only aggregates real zone objectives.
        if out.estimated_cost.is_finite() {
            estimated_cost = estimated_cost.max(out.estimated_cost);
        }
        for (&node, cell) in &out.assignment.cells {
            merged.set(shard.origin(node), cell.clone());
        }
        for (mode, codes) in out.assignment.delay_codes.iter().enumerate() {
            for (&node, &code) in codes {
                merged.set_delay_code(mode, shard.origin(node), code);
            }
        }
    }

    // Exact global validation on the full tree — the authoritative
    // cross-shard skew check.
    let mut candidate = design.clone();
    merged.apply_to(&mut candidate);
    let skew = candidate.max_skew()?;
    let merge_fallback = skew.value() > config.skew_bound.value() + 1e-9;
    let mut outcome = if merge_fallback {
        finish_outcome(
            design,
            design,
            Assignment::new(),
            f64::NAN,
            intervals_tried,
            runtime,
        )?
    } else {
        finish_outcome(
            design,
            &candidate,
            merged,
            estimated_cost,
            intervals_tried,
            runtime,
        )?
    };
    outcome.degenerate_zones = degenerate_zones;
    Ok(ShardedOutcome {
        outcome,
        shard_count,
        shard_sinks,
        merge_fallback,
    })
}

/// Wraps one shard's tree with the parent design's models. Per-mode
/// timing adjustments are remapped onto the shard's node ids so trunk
/// stubs carry any ADB codes already installed on the full design.
fn shard_design(design: &Design, shard: &SubtreeShard) -> Design {
    let mode_adjust = design
        .mode_adjust
        .iter()
        .map(|adj| remap_adjust(adj, &shard.node_map))
        .collect();
    Design {
        tree: shard.tree.clone(),
        lib: design.lib.clone(),
        chr: design.chr,
        wire: design.wire,
        power: design.power.clone(),
        mode_adjust,
    }
}

fn remap_adjust(adj: &TimingAdjust, node_map: &[wavemin_clocktree::NodeId]) -> TimingAdjust {
    let pick_mult = |v: &Vec<f64>| -> Vec<f64> {
        node_map
            .iter()
            .map(|o| v.get(o.0).copied().unwrap_or(1.0))
            .collect()
    };
    TimingAdjust {
        cell_delay_mult: pick_mult(&adj.cell_delay_mult),
        extra_delay: node_map
            .iter()
            .map(|o| {
                adj.extra_delay
                    .get(o.0)
                    .copied()
                    .unwrap_or(Picoseconds::ZERO)
            })
            .collect(),
        wire_r_mult: pick_mult(&adj.wire_r_mult),
        wire_c_mult: pick_mult(&adj.wire_c_mult),
    }
}

/// Shard-count accounting exposed for reports: ADB/ADI cells present
/// after applying `outcome` to `design`.
#[must_use]
pub fn merged_adb_adi(design: &Design, outcome: &Outcome) -> (usize, usize) {
    let mut after = design.clone();
    outcome.assignment.apply_to(&mut after);
    (
        count_kind(&after, CellKind::Adb),
        count_kind(&after, CellKind::Adi),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavemin_clocktree::Benchmark;

    fn scale_design() -> Design {
        Design::from_benchmark(&Benchmark::scale("shardrun_fixture", 220), 5)
    }

    #[test]
    fn one_big_shard_matches_plain_run_bit_for_bit() {
        let design = scale_design();
        let config = WaveMinConfig::default();
        let plain = ClkWaveMin::new(config.clone()).run(&design).expect("plain");
        let sharded = optimize_sharded(&design, &config, usize::MAX).expect("sharded");
        assert_eq!(sharded.shard_count, 1);
        assert!(!sharded.merge_fallback);
        assert_eq!(sharded.outcome.assignment, plain.assignment);
        assert_eq!(
            sharded.outcome.estimated_cost.to_bits(),
            plain.estimated_cost.to_bits()
        );
        assert_eq!(
            sharded.outcome.skew_after.value().to_bits(),
            plain.skew_after.value().to_bits()
        );
    }

    #[test]
    fn many_shards_cover_all_sinks_and_validate_globally() {
        let design = scale_design();
        let config = WaveMinConfig::default();
        let sharded = optimize_sharded(&design, &config, 48).expect("sharded");
        assert!(sharded.shard_count > 1, "expected a real split");
        assert_eq!(
            sharded.shard_sinks.iter().sum::<usize>(),
            design.leaves().len(),
            "shards must cover every sink exactly once"
        );
        if sharded.merge_fallback {
            assert!(sharded.outcome.assignment.is_empty());
        } else {
            // The merged assignment passed the exact global bound.
            assert!(
                sharded.outcome.skew_after.value() <= config.skew_bound.value() + 1e-9,
                "skew {} vs bound {}",
                sharded.outcome.skew_after,
                config.skew_bound
            );
            assert!(!sharded.outcome.assignment.is_empty());
        }
    }
}
