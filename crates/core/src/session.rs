//! The long-lived session API: characterize once, solve repeatedly.
//!
//! Every CLI invocation used to re-characterize the design, regenerate
//! the feasible intervals, and rebuild every zone problem just to run one
//! solve. A [`CharacterizedDesign`] holds all of that resident — the
//! `Design` → `CharacterizedDesign` → repeated [`CharacterizedDesign::solve`]
//! split that serve mode ([`crate::serve`]) builds its job queue on.
//!
//! Incremental re-solves come from [`ZoneCache`]: solves keyed through
//! the per-zone content-hash chain (see [`crate::checkpoint`]) publish
//! into the shared cache, and a later session over an edited design
//! re-solves only the zones whose content (or upstream history) actually
//! changed, splicing everything else bit-for-bit. The `zones_reused`
//! counter in the run report surfaces how much was spliced.

use crate::algo::clkwavemin::{worst_mode_attribution, MospZoneSolver};
use crate::algo::{characterize_design, solve_prepared, Outcome, PreparedRun};
use crate::checkpoint::{config_fingerprint, ZoneCache, ZoneStore};
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use crate::observe::{MetricsRegistry, ReportContext};
use crate::trace::TraceJournal;
use wavemin_clocktree::NodeId;

/// Per-job knobs a session solve may vary without re-characterizing.
///
/// Everything that shapes the characterized data (skew bound, sample
/// count, cell list, zone pitch...) is fixed at
/// [`CharacterizedDesign::new`]; a job may only adjust run plumbing and
/// the resource budget.
#[derive(Debug, Clone, Default)]
pub struct SolveOptions {
    /// Per-job wall-clock budget in milliseconds (`None` = the session
    /// config's budget). A budgeted job uses its own cache key space:
    /// the budget is semantic (it changes solve results through the
    /// degradation ladder), so differently-budgeted jobs never share
    /// cached zones.
    pub time_budget_ms: Option<u64>,
    /// Worker-thread override for this job (`None` = the session
    /// config's threads).
    pub threads: Option<usize>,
    /// Collect a [`crate::observe::RunReport`] for this job.
    pub collect_metrics: bool,
    /// Record event-journal spans for this job.
    pub trace_spans: bool,
    /// Progress channel for this job (disabled by default). Observation
    /// only — an enabled tracker never changes solve results.
    pub progress: crate::observe::ProgressTracker,
}

/// A design characterized once and held resident for repeated solves:
/// the noise table with every candidate's waveforms, the feasible
/// intervals, and the zone partition with per-zone content hashes.
pub struct CharacterizedDesign {
    design: Design,
    config: WaveMinConfig,
    prep: PreparedRun,
}

impl CharacterizedDesign {
    /// Validates and characterizes `design` under `config` (mode 0; the
    /// multi-mode flow manages its own per-mode characterization and is
    /// not session-cached).
    ///
    /// # Errors
    ///
    /// Validation errors, characterization failures, or
    /// [`WaveMinError::NoFeasibleInterval`] when no interval satisfies
    /// the skew bound — an infeasible design fails at session creation,
    /// not at the first job.
    pub fn new(design: Design, config: WaveMinConfig) -> Result<Self, WaveMinError> {
        config.validate()?;
        design.validate()?;
        let prep = characterize_design(
            &design,
            &config,
            &MetricsRegistry::disabled(),
            &TraceJournal::disabled(),
        )?;
        Ok(Self {
            design,
            config,
            prep,
        })
    }

    /// The characterized design.
    #[must_use]
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The session configuration.
    #[must_use]
    pub fn config(&self) -> &WaveMinConfig {
        &self.config
    }

    /// Number of zones in the partition.
    #[must_use]
    pub fn zone_count(&self) -> usize {
        self.prep.zones.len()
    }

    /// Number of feasible intervals held resident.
    #[must_use]
    pub fn interval_count(&self) -> usize {
        self.prep.intervals.len()
    }

    /// Number of characterized sinks.
    #[must_use]
    pub fn sink_count(&self) -> usize {
        self.prep.table.sinks.len()
    }

    /// A sink in the zone solved *last* (the smallest zone in the
    /// largest-first order) — the highest-reuse target for an ECO edit
    /// demo: trimming this sink leaves every earlier zone's content and
    /// chain history unchanged in intervals anchored on other sinks'
    /// arrivals, so a cached re-solve reuses them all.
    #[must_use]
    pub fn eco_probe_sink(&self) -> Option<NodeId> {
        self.prep
            .zone_order
            .iter()
            .rev()
            .find_map(|&z| self.prep.zones.spec(z).sinks.first())
            .map(|&si| self.prep.table.sinks[si].node)
    }

    /// Solves the session's resident problem with no shared cache.
    ///
    /// # Errors
    ///
    /// Same as [`crate::prelude::ClkWaveMin::run`].
    pub fn solve(&self, opts: &SolveOptions) -> Result<Outcome, WaveMinError> {
        self.solve_inner(None, opts, &TraceJournal::disabled())
    }

    /// Solves against a shared [`ZoneCache`]: zone solutions already
    /// published under matching content-hash chain keys are spliced
    /// bit-for-bit (`zones_reused` in the report counts them), fresh
    /// solves are published for later jobs, and concurrent jobs racing
    /// onto the same zone dedup through the cache's in-flight
    /// reservations.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_cached(
        &self,
        cache: &ZoneCache,
        opts: &SolveOptions,
    ) -> Result<Outcome, WaveMinError> {
        self.solve_inner(Some(cache), opts, &TraceJournal::disabled())
    }

    /// [`Self::solve_cached`] with an event journal attached.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_cached_traced(
        &self,
        cache: &ZoneCache,
        opts: &SolveOptions,
        journal: &TraceJournal,
    ) -> Result<Outcome, WaveMinError> {
        self.solve_inner(Some(cache), opts, journal)
    }

    /// The effective per-job config: the session config with the job's
    /// plumbing/budget overrides applied.
    fn job_config(&self, opts: &SolveOptions) -> WaveMinConfig {
        let mut cfg = self.config.clone();
        if opts.time_budget_ms.is_some() {
            cfg.time_budget_ms = opts.time_budget_ms;
        }
        if opts.threads.is_some() {
            cfg.threads = opts.threads;
        }
        cfg.collect_metrics = cfg.collect_metrics || opts.collect_metrics;
        cfg.trace_spans = cfg.trace_spans || opts.trace_spans;
        // The session never journals to disk; the cache is the store.
        cfg.checkpoint_path = None;
        cfg.resume = false;
        cfg
    }

    fn solve_inner(
        &self,
        cache: Option<&ZoneCache>,
        opts: &SolveOptions,
        journal: &TraceJournal,
    ) -> Result<Outcome, WaveMinError> {
        let config = self.job_config(opts);
        let registry = MetricsRegistry::from_config(&config);
        registry.ensure_zones(self.prep.zones.len());
        let budget = config.budget();
        let solver = MospZoneSolver::new(&config, budget.clone(), registry.clone())
            .with_journal(journal.clone())
            .with_progress(opts.progress.clone());
        let store = cache.map(|c| c as &dyn ZoneStore);
        // The chain seed hashes the job's semantic config (plumbing
        // normalized out), so jobs on different budgets or bounds key
        // into disjoint regions of the shared cache while identical jobs
        // share fully. Note the caveat this inherits from the checkpoint
        // scheme: the degradation ladder's rung at solve time is not a
        // key input, so a budgeted job that degraded mid-run publishes
        // rung-dependent results under its budget's keys.
        let seed = store
            .is_some()
            .then(|| config_fingerprint(&config))
            .transpose()?;
        let mut out = solve_prepared(
            &self.design,
            &config,
            &self.prep,
            &solver,
            &registry,
            journal,
            store,
            seed,
            &opts.progress,
        )?;
        out.degradation = solver.ladder.degradation();
        out.report = registry.report(&ReportContext {
            threads: config.effective_threads(),
            degenerate_zones: out.degenerate_zones,
            ladder_rung: solver.ladder.current_rung(),
            budget_units: budget.work_done(),
            kernel: wavemin_mosp::kernels::active().name(),
        });
        if out.report.is_some() {
            let attribution = worst_mode_attribution(&self.design, &out)?;
            if let Some(report) = out.report.as_mut() {
                report.attribution = attribution;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::Benchmark;

    fn small_design() -> Design {
        Design::from_benchmark(&Benchmark::s15850(), 11)
    }

    #[test]
    fn session_solve_matches_one_shot_run() {
        let design = small_design();
        let config = WaveMinConfig::default();
        let one_shot = crate::prelude::ClkWaveMin::new(config.clone())
            .run(&design)
            .expect("one-shot run");
        let session = CharacterizedDesign::new(design, config).expect("characterize");
        let out = session
            .solve(&SolveOptions::default())
            .expect("session solve");
        assert_eq!(
            out.peak_after.value().to_bits(),
            one_shot.peak_after.value().to_bits(),
            "session split must not change results"
        );
        assert_eq!(out.assignment, one_shot.assignment);
    }

    #[test]
    fn repeated_cached_solves_reuse_every_zone() {
        let design = small_design();
        let session =
            CharacterizedDesign::new(design, WaveMinConfig::default()).expect("characterize");
        let cache = ZoneCache::new(64 << 20);
        let opts = SolveOptions {
            collect_metrics: true,
            ..SolveOptions::default()
        };
        let warm = session.solve_cached(&cache, &opts).expect("warm solve");
        let warm_report = warm.report.as_ref().expect("report");
        assert!(warm_report.counters.zone_solves > 0);
        assert_eq!(warm_report.counters.zones_reused, 0);

        let hot = session.solve_cached(&cache, &opts).expect("hot solve");
        let hot_report = hot.report.as_ref().expect("report");
        assert_eq!(
            hot_report.counters.zone_solves, 0,
            "a repeat job must not re-solve anything"
        );
        assert_eq!(
            hot_report.counters.zones_reused, warm_report.counters.zone_solves,
            "every zone solve is served from the cache"
        );
        assert_eq!(
            hot.peak_after.value().to_bits(),
            warm.peak_after.value().to_bits()
        );
        assert_eq!(hot.assignment, warm.assignment);
    }

    #[test]
    fn eco_probe_sink_is_a_characterized_leaf() {
        let design = small_design();
        let leaves = design.leaves();
        let session =
            CharacterizedDesign::new(design, WaveMinConfig::default()).expect("characterize");
        let probe = session.eco_probe_sink().expect("probe sink");
        assert!(leaves.contains(&probe));
    }
}
