//! Time sampling point selection.
//!
//! The objective (1) is evaluated at a finite set `S` of sampling points:
//! pairs of (rail, source event, time). Times are spread over the *hot
//! window* — the union support of the candidate waveforms under
//! consideration — because outside it every current is zero (Fig. 7: only
//! the hot spots near the clock edges are sampled).

use crate::noise_table::{EventWaveforms, NoiseTable, SinkEntry};
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Picoseconds;

/// A concrete sampling plan: `k` shared times applied to each of the four
/// (rail, event) slots, giving `|S| = 4k` dimensions in canonical slot
/// order (VDD-rise, GND-rise, VDD-fall, GND-fall).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplePlan {
    times: Vec<Picoseconds>,
    /// `true` when the hot window was degenerate (empty or inverted) and
    /// the plan fell back to a single dummy time at t = 0. Every sampled
    /// objective is then identically zero — "optimal" for the wrong
    /// reason — so the pipeline surfaces this through
    /// [`crate::algo::Outcome::degenerate_zones`].
    degenerate: bool,
}

impl SamplePlan {
    /// Builds a plan with `k` uniform times over the hot window of the
    /// given sinks' candidate waveforms.
    ///
    /// Falls back to a single dummy time when the sinks have no support
    /// (all-zero waveforms).
    #[must_use]
    pub fn for_sinks(table: &NoiseTable, sink_indices: &[usize], k: usize) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &si in sink_indices {
            let entry: &SinkEntry = &table.sinks[si];
            for opt in &entry.options {
                if let Some((a, b)) = opt.waves.support() {
                    lo = lo.min(a.value());
                    hi = hi.max(b.value());
                }
            }
        }
        // Adjustable candidates can shift right by their full range.
        let slack: f64 = sink_indices
            .iter()
            .flat_map(|&si| table.sinks[si].options.iter())
            .map(|o| o.adjust_range.value())
            .fold(0.0, f64::max);
        Self::over_window(lo, hi + slack, k)
    }

    /// Builds a plan with `k` uniform times over an explicit window. A
    /// degenerate window (non-finite bounds or `hi <= lo`) falls back to a
    /// single dummy time and marks the plan [`Self::is_degenerate`].
    #[must_use]
    pub fn over_window(lo: f64, hi: f64, k: usize) -> Self {
        let k = k.max(1);
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Self {
                times: vec![Picoseconds::ZERO],
                degenerate: true,
            };
        }
        let times = (0..k)
            .map(|i| {
                // Midpoint sampling avoids the always-zero window edges.
                let frac = (i as f64 + 0.5) / k as f64;
                Picoseconds::new(lo + frac * (hi - lo))
            })
            .collect();
        Self {
            times,
            degenerate: false,
        }
    }

    /// The shared sample times.
    #[must_use]
    pub fn times(&self) -> &[Picoseconds] {
        &self.times
    }

    /// `true` when the plan is the single-dummy-time fallback for a
    /// degenerate hot window: its sampled objectives are all-zero and say
    /// nothing about the real noise.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// Total dimension `|S| = 4k`.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.times.len() * 4
    }

    /// Samples all four slots of `waves` into one `|S|`-vector (canonical
    /// slot order).
    #[must_use]
    pub fn vector_of(&self, waves: &EventWaveforms) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.dims());
        for (rail, event) in EventWaveforms::SLOTS {
            let w = waves.get(rail, event);
            for &t in &self.times {
                v.push(w.sample(t).value());
            }
        }
        v
    }

    /// Adds an interval's accumulated background (every resident merge
    /// level, smallest first) into an existing `|S|`-vector.
    ///
    /// # Panics
    ///
    /// Panics if `acc` length differs from [`Self::dims`].
    pub fn accumulate_background_into(
        &self,
        acc: &mut [f64],
        background: &crate::noise_table::BackgroundAccumulator,
    ) {
        for level in background.levels() {
            self.accumulate_into(acc, level);
        }
    }

    /// Adds `waves` (sampled) into an existing `|S|`-vector.
    ///
    /// # Panics
    ///
    /// Panics if `acc` length differs from [`Self::dims`].
    pub fn accumulate_into(&self, acc: &mut [f64], waves: &EventWaveforms) {
        assert_eq!(acc.len(), self.dims(), "accumulator dimension mismatch");
        // Sample each slot into a contiguous scratch row, then add it with
        // the vectorizable kernel — waveform interpolation is branchy and
        // defeats autovectorization, but the accumulate itself need not.
        let k = self.times.len();
        let mut row = vec![0.0; k];
        for (slot, (rail, event)) in EventWaveforms::SLOTS.iter().enumerate() {
            let w = waves.get(*rail, *event);
            for (r, &t) in row.iter_mut().zip(&self.times) {
                *r = w.sample(t).value();
            }
            wavemin_mosp::kernels::add_assign(&mut acc[slot * k..(slot + 1) * k], &row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaveMinConfig;
    use crate::design::Design;
    use wavemin_cells::units::MicroAmps;
    use wavemin_cells::Waveform;
    use wavemin_clocktree::Benchmark;

    #[test]
    fn uniform_times_cover_window() {
        let plan = SamplePlan::over_window(10.0, 50.0, 4);
        let t: Vec<f64> = plan.times().iter().map(|t| t.value()).collect();
        assert_eq!(t.len(), 4);
        assert!(t[0] > 10.0 && t[3] < 50.0);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(plan.dims(), 16);
    }

    #[test]
    fn degenerate_window_fallback() {
        let plan = SamplePlan::over_window(f64::INFINITY, f64::NEG_INFINITY, 8);
        assert_eq!(plan.times().len(), 1);
        assert!(plan.is_degenerate(), "fallback must be diagnosable");
        assert!(!SamplePlan::over_window(0.0, 10.0, 8).is_degenerate());
        assert!(SamplePlan::over_window(5.0, 5.0, 2).is_degenerate());
        assert!(SamplePlan::over_window(f64::NAN, 1.0, 2).is_degenerate());
    }

    #[test]
    fn vector_matches_manual_sampling() {
        let tri = Waveform::triangle(
            Picoseconds::new(0.0),
            Picoseconds::new(10.0),
            Picoseconds::new(20.0),
            MicroAmps::new(100.0),
        );
        let waves = EventWaveforms {
            vdd_rise: tri.clone(),
            ..EventWaveforms::zero()
        };
        let plan = SamplePlan::over_window(0.0, 20.0, 2);
        let v = plan.vector_of(&waves);
        assert_eq!(v.len(), 8);
        // First two entries are the VDD-rise samples; the rest are zero.
        assert!(v[0] > 0.0 && v[1] > 0.0);
        assert!(v[2..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn accumulate_matches_vector() {
        let tri = Waveform::triangle(
            Picoseconds::new(0.0),
            Picoseconds::new(5.0),
            Picoseconds::new(20.0),
            MicroAmps::new(50.0),
        );
        let waves = EventWaveforms {
            gnd_fall: tri,
            ..EventWaveforms::zero()
        };
        let plan = SamplePlan::over_window(0.0, 20.0, 3);
        let mut acc = vec![1.0; plan.dims()];
        plan.accumulate_into(&mut acc, &waves);
        let v = plan.vector_of(&waves);
        for i in 0..plan.dims() {
            assert!((acc[i] - (1.0 + v[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn plan_for_sinks_covers_candidate_pulses() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let table =
            crate::noise_table::NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap();
        let all: Vec<usize> = (0..table.sinks.len()).collect();
        let plan = SamplePlan::for_sinks(&table, &all, 10);
        // At least one candidate waveform must be nonzero at some sample.
        let any_nonzero = table.sinks.iter().any(|s| {
            s.options
                .iter()
                .any(|o| plan.vector_of(&o.waves).iter().any(|&x| x > 0.0))
        });
        assert!(any_nonzero);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn accumulate_rejects_wrong_length() {
        let plan = SamplePlan::over_window(0.0, 10.0, 2);
        let mut acc = vec![0.0; 3];
        plan.accumulate_into(&mut acc, &EventWaveforms::zero());
    }
}
