//! Deterministic fault injection for exercising the containment layer.
//!
//! A [`FaultPlan`] is a seeded, rate-controlled schedule of synthetic
//! faults — worker panics, forced budget exhaustion, NaN-poisoned cost
//! vectors — fired at fixed hook sites inside the zone solver. Whether a
//! given site fires is a *pure function* of `(seed, site)`: there is no
//! global counter and no RNG state, so the schedule is identical across
//! thread counts, solve orders, and reruns. That is the property the
//! chaos suite relies on: a seed that leaves the tier-1 suite green today
//! leaves it green forever.
//!
//! Plans come from the `WAVEMIN_FAULTS=seed:rate` environment variable
//! (read once, so a CI job can blanket an entire test run) or the CLI's
//! `--fault-plan seed:rate` flag. Production runs carry no plan and pay
//! only an `Option` check per zone.
//!
//! Salvage retries — the recovery path a fired fault triggers — run
//! injection-free by construction: the fault layer tests recovery, it
//! does not chase it.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use wavemin_mosp::{Budget, Exhaustion, SolveObserver};

/// Environment variable consulted (once) for a process-wide fault plan;
/// grammar `seed:rate` (e.g. `42:0.001`).
pub const FAULT_ENV: &str = "WAVEMIN_FAULTS";

/// Marker prefix carried by every injected panic payload, so containment
/// and logs can tell synthetic faults from real ones.
pub const INJECTED_MARKER: &str = "injected fault";

/// A seeded, rate-controlled schedule of synthetic faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into every site hash.
    pub seed: u64,
    /// Per-site firing probability in `(0, 1]`.
    pub rate: f64,
}

/// A hook site where a plan may fire. Each variant hashes differently,
/// so the same zone can draw different outcomes at different sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Cost-vector ingest for one zone (fires a NaN poison).
    ZoneIngest {
        /// The zone whose vectors are poisoned.
        zone: usize,
    },
    /// A zone worker's solve entry (fires a panic).
    ZoneSolve {
        /// The zone whose worker panics.
        zone: usize,
    },
    /// One vertex expansion inside the MOSP dynamic program (fires a
    /// panic or a forced budget exhaustion, chosen by the site hash).
    Layer {
        /// The zone being solved.
        zone: usize,
        /// The expanded vertex.
        vertex: usize,
    },
}

/// What an armed site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an [`INJECTED_MARKER`] payload.
    Panic,
    /// Arm the shared budget's one-shot exhaustion latch.
    ExhaustBudget,
    /// Overwrite one cost component with NaN (caught by the kernels'
    /// ingest guard, never silently propagated).
    PoisonNan,
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Parses the `seed:rate` grammar.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending part when the string is not
    /// `<u64>:<f64 in (0, 1]>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (seed_s, rate_s) = s
            .split_once(':')
            .ok_or_else(|| format!("fault plan '{s}' is not 'seed:rate'"))?;
        let seed: u64 = seed_s
            .trim()
            .parse()
            .map_err(|_| format!("fault plan seed '{seed_s}' is not a u64"))?;
        let rate: f64 = rate_s
            .trim()
            .parse()
            .map_err(|_| format!("fault plan rate '{rate_s}' is not a number"))?;
        if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
            return Err(format!("fault plan rate {rate} must be in (0, 1]"));
        }
        Ok(Self { seed, rate })
    }

    /// The process-wide plan from [`FAULT_ENV`], read once. An unset
    /// variable yields `None`; a malformed one is reported to stderr once
    /// and ignored (chaos tooling should fail loud, not corrupt runs).
    pub fn from_env() -> Option<Self> {
        static FROM_ENV: OnceLock<Option<FaultPlan>> = OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var(FAULT_ENV) {
            Err(_) => None,
            Ok(v) => match Self::parse(&v) {
                Ok(p) => Some(p),
                Err(why) => {
                    eprintln!("warning: ignoring {FAULT_ENV}: {why}");
                    None
                }
            },
        })
    }

    /// The plan's uniform hash for `site` — pure in `(seed, site)`.
    #[must_use]
    fn site_hash(&self, site: FaultSite) -> u64 {
        let (disc, a, b) = match site {
            FaultSite::ZoneIngest { zone } => (0x01, zone as u64, 0),
            FaultSite::ZoneSolve { zone } => (0x02, zone as u64, 0),
            FaultSite::Layer { zone, vertex } => (0x03, zone as u64, vertex as u64),
        };
        mix(mix(mix(self.seed ^ disc) ^ a) ^ b)
    }

    /// Whether `site` fires under this plan, and with what effect.
    /// Deterministic: the same `(seed, site)` always answers the same.
    #[must_use]
    pub fn decide(&self, site: FaultSite) -> Option<FaultKind> {
        let h = self.site_hash(site);
        // Map the hash onto [0, 1) and compare against the rate; the
        // division is exact enough that the decision is stable across
        // platforms (both operands are well inside f64 range).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        Some(match site {
            FaultSite::ZoneIngest { .. } => FaultKind::PoisonNan,
            FaultSite::ZoneSolve { .. } => FaultKind::Panic,
            // Split the layer sites between the two dynamic faults on an
            // independent hash bit.
            FaultSite::Layer { .. } => {
                if mix(h) & 1 == 0 {
                    FaultKind::Panic
                } else {
                    FaultKind::ExhaustBudget
                }
            }
        })
    }

    /// Panics with an [`INJECTED_MARKER`] payload describing `site`.
    /// Factored so every injected panic is grep-ably uniform.
    pub fn fire_panic(&self, site: FaultSite) -> ! {
        panic!(
            "{INJECTED_MARKER}: {site:?} (seed {seed}, rate {rate})",
            seed = self.seed,
            rate = self.rate
        )
    }
}

/// A [`SolveObserver`] that fires [`FaultSite::Layer`] faults at every
/// vertex expansion, then forwards the event to an optional inner
/// observer (the trace journal). Constructed by the zone solver whenever
/// a plan is active — even when tracing is off, so chaos runs exercise
/// the untraced path too.
pub struct FaultObserver<'a> {
    plan: FaultPlan,
    zone: usize,
    budget: &'a Budget,
    inner: Option<&'a mut dyn SolveObserver>,
}

impl<'a> FaultObserver<'a> {
    /// Wraps `inner` (may be `None`) with layer-site injection for `zone`.
    pub fn new(
        plan: FaultPlan,
        zone: usize,
        budget: &'a Budget,
        inner: Option<&'a mut dyn SolveObserver>,
    ) -> Self {
        Self {
            plan,
            zone,
            budget,
            inner,
        }
    }
}

impl SolveObserver for FaultObserver<'_> {
    fn now_ns(&mut self) -> u64 {
        self.inner.as_mut().map_or(0, |o| o.now_ns())
    }

    fn layer_span(&mut self, start_ns: u64, vertex: usize, labels: usize) {
        let site = FaultSite::Layer {
            zone: self.zone,
            vertex,
        };
        match self.plan.decide(site) {
            Some(FaultKind::Panic) => self.plan.fire_panic(site),
            Some(FaultKind::ExhaustBudget) => self.budget.inject_exhaustion(),
            Some(FaultKind::PoisonNan) | None => {}
        }
        if let Some(o) = self.inner.as_mut() {
            o.layer_span(start_ns, vertex, labels);
        }
    }

    fn batch_span(
        &mut self,
        start_ns: u64,
        vertex: usize,
        target: usize,
        attempts: u64,
        pruned: u64,
    ) {
        if let Some(o) = self.inner.as_mut() {
            o.batch_span(start_ns, vertex, target, attempts, pruned);
        }
    }

    fn cap_evictions(&mut self, vertex: usize, count: u64) {
        if let Some(o) = self.inner.as_mut() {
            o.cap_evictions(vertex, count);
        }
    }

    fn budget_exhausted(&mut self, reason: Exhaustion) {
        if let Some(o) = self.inner.as_mut() {
            o.budget_exhausted(reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_grammar_and_rejects_garbage() {
        let p = FaultPlan::parse("42:0.25").expect("valid plan");
        assert_eq!(p.seed, 42);
        assert!((p.rate - 0.25).abs() < 1e-12);
        assert!(
            FaultPlan::parse(" 7 : 1.0 ").is_ok(),
            "whitespace tolerated"
        );
        for bad in [
            "", "42", "x:0.5", "42:abs", "42:0", "42:-0.1", "42:1.5", "42:nan",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_site_sensitive() {
        let p = FaultPlan { seed: 1, rate: 0.5 };
        for zone in 0..64 {
            let site = FaultSite::ZoneSolve { zone };
            assert_eq!(p.decide(site), p.decide(site), "zone {zone} must be stable");
        }
        // With rate 1 every site fires, with the kind fixed by the site.
        let all = FaultPlan { seed: 9, rate: 1.0 };
        assert_eq!(
            all.decide(FaultSite::ZoneIngest { zone: 3 }),
            Some(FaultKind::PoisonNan)
        );
        assert_eq!(
            all.decide(FaultSite::ZoneSolve { zone: 3 }),
            Some(FaultKind::Panic)
        );
        assert!(matches!(
            all.decide(FaultSite::Layer { zone: 3, vertex: 8 }),
            Some(FaultKind::Panic | FaultKind::ExhaustBudget)
        ));
    }

    #[test]
    fn rate_controls_fire_frequency() {
        let p = FaultPlan {
            seed: 1234,
            rate: 0.1,
        };
        let fired = (0..10_000)
            .filter(|&z| p.decide(FaultSite::ZoneSolve { zone: z }).is_some())
            .count();
        // 10% ± generous slack for a deterministic hash sequence.
        assert!((500..2_000).contains(&fired), "fired {fired} of 10000");
        // Different seeds reshuffle which sites fire.
        let q = FaultPlan {
            seed: 4321,
            rate: 0.1,
        };
        let overlap = (0..10_000)
            .filter(|&z| {
                p.decide(FaultSite::ZoneSolve { zone: z }).is_some()
                    && q.decide(FaultSite::ZoneSolve { zone: z }).is_some()
            })
            .count();
        assert!(
            overlap < fired,
            "seeds must not reproduce the same schedule"
        );
    }

    #[test]
    fn layer_observer_arms_the_budget_latch() {
        // rate 1.0: every layer site fires; sweep vertices until one
        // draws ExhaustBudget and check the latch armed.
        let plan = FaultPlan { seed: 2, rate: 1.0 };
        let budget = Budget::unlimited().and_work_cap(1 << 30);
        let mut obs = FaultObserver::new(plan, 0, &budget, None);
        let vertex = (0..64)
            .find(|&v| {
                matches!(
                    plan.decide(FaultSite::Layer { zone: 0, vertex: v }),
                    Some(FaultKind::ExhaustBudget)
                )
            })
            .expect("some vertex draws ExhaustBudget at rate 1");
        obs.layer_span(0, vertex, 1);
        assert_eq!(
            budget.exhausted(),
            Some(Exhaustion::WorkCapReached),
            "latch must be armed"
        );
        assert_eq!(budget.exhausted(), None, "and one-shot");
    }

    #[test]
    fn injected_panics_carry_the_marker() {
        let plan = FaultPlan { seed: 3, rate: 1.0 };
        let site = FaultSite::ZoneSolve { zone: 5 };
        let err =
            std::panic::catch_unwind(|| plan.fire_panic(site)).expect_err("fire_panic must panic");
        let payload = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(payload.contains(INJECTED_MARKER), "payload: {payload}");
        assert!(payload.contains("zone: 5"), "payload: {payload}");
    }
}
