//! The event journal: lock-free per-worker trace buffers with
//! Chrome-trace/Perfetto export.
//!
//! Where [`crate::observe::MetricsRegistry`] aggregates *counters*, the
//! [`TraceJournal`] keeps *events*: spans at zone / graph-layer /
//! label-batch granularity and instants for ladder rung changes, budget
//! exhaustion and dominance-front evictions. The design goals mirror the
//! registry's:
//!
//! * **disabled path is one branch** — a disabled journal is an
//!   `Option::None`; every recording call short-circuits immediately;
//! * **recording never blocks the solver** — each worker records into a
//!   [`TraceHandle`] it exclusively owns (a plain bounded `Vec` plus a
//!   local drop counter), so the hot path takes no lock and touches no
//!   shared cache line. The journal's mutex is only taken when a handle is
//!   created (to map the thread to a track) and once when it flushes on
//!   drop;
//! * **bounded memory** — each worker track has a fixed event capacity;
//!   once a handle's track budget is full, new events are *dropped and
//!   counted* (keep-oldest overflow policy), never reallocated past the
//!   cap and never blocking;
//! * **monotonic timestamps** — all events are stamped from one shared
//!   [`Instant`] epoch, so the merged journal sorts into a single
//!   consistent timeline.
//!
//! [`TraceJournal::chrome_trace`] exports the merged journal as Chrome
//! trace-event JSON (the `{"traceEvents": [...]}` object format), viewable
//! in `chrome://tracing` and <https://ui.perfetto.dev>: one track (`tid`)
//! per worker thread, `"X"` complete spans with microsecond `ts`/`dur`,
//! `"i"` instants, and [`SolveStats`] counters attached as span args.

use serde::Value;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;
use wavemin_mosp::{Exhaustion, SolveObserver, SolveStats};

/// Default per-track event capacity (events per worker thread).
pub const DEFAULT_TRACK_CAPACITY: usize = 1 << 16;

/// One recorded event: a span (`dur_ns > 0` or a span-kind) or an instant,
/// stamped in nanoseconds since the journal's epoch.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Start time, nanoseconds since the journal epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event payload variants the journal records.
#[derive(Debug, Clone, Copy)]
pub enum TraceEventKind {
    /// Span: one complete zone × interval MOSP solve, with the solver's
    /// counters attached.
    ZoneSolve {
        /// Zone id in the run's partition.
        zone: usize,
        /// The solve's label/work counters.
        stats: SolveStats,
        /// Whether the solve exhausted its resource budget.
        exhausted: bool,
    },
    /// Span: one graph-layer expansion (all out-arcs of one vertex).
    Layer {
        /// The expanded vertex.
        vertex: usize,
        /// Source labels propagated.
        labels: usize,
    },
    /// Span: one (vertex, arc) label batch.
    LabelBatch {
        /// The expanding vertex.
        vertex: usize,
        /// The arc's target vertex.
        target: usize,
        /// Label-insertion attempts in the batch.
        attempts: u64,
        /// Incumbent labels the batch evicted by dominance.
        pruned: u64,
    },
    /// Span: one pipeline stage on the driving thread.
    Stage {
        /// Stage name ([`crate::observe::Stage::name`]-style).
        name: &'static str,
    },
    /// Instant: the degradation ladder moved to `rung`.
    RungTransition {
        /// The rung descended to (0 = full fidelity).
        rung: usize,
    },
    /// Instant: the shared solve budget ran out.
    BudgetExhausted {
        /// Which resource ran out.
        reason: &'static str,
    },
    /// Instant: the per-vertex label cap evicted labels from a
    /// dominance front.
    CapEvictions {
        /// The capped vertex.
        vertex: usize,
        /// Labels evicted.
        count: u64,
    },
    /// Instant: a zone worker faulted (panic or poisoned input) and the
    /// containment layer caught it.
    ZoneFault {
        /// The faulted zone.
        zone: usize,
    },
    /// Instant: a faulted zone's salvage retry on the greedy rung
    /// succeeded.
    ZoneSalvaged {
        /// The salvaged zone.
        zone: usize,
    },
    /// Instant: the ladder's state mutex was found poisoned and the rung
    /// was restored from the last-known-good shadow.
    LadderRestored {
        /// The restored rung.
        rung: usize,
    },
}

impl TraceEventKind {
    /// The Chrome-trace event name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::ZoneSolve { .. } => "zone_solve",
            Self::Layer { .. } => "layer",
            Self::LabelBatch { .. } => "label_batch",
            Self::Stage { name } => name,
            Self::RungTransition { .. } => "rung_transition",
            Self::BudgetExhausted { .. } => "budget_exhausted",
            Self::CapEvictions { .. } => "cap_evictions",
            Self::ZoneFault { .. } => "zone_fault",
            Self::ZoneSalvaged { .. } => "zone_salvaged",
            Self::LadderRestored { .. } => "ladder_restored",
        }
    }

    /// Whether the event renders as a Chrome-trace complete span (`"X"`)
    /// rather than an instant (`"i"`).
    #[must_use]
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            Self::ZoneSolve { .. }
                | Self::Layer { .. }
                | Self::LabelBatch { .. }
                | Self::Stage { .. }
        )
    }
}

/// One worker track's flushed log.
#[derive(Debug, Default)]
struct TrackLog {
    events: Vec<TraceEvent>,
    dropped: u64,
}

#[derive(Debug, Default)]
struct JournalState {
    /// Thread → track index, in registration order. Tracks are never
    /// removed, so an index stays valid for the journal's lifetime.
    threads: Vec<(ThreadId, usize)>,
    tracks: Vec<TrackLog>,
}

#[derive(Debug)]
struct JournalInner {
    epoch: Instant,
    capacity: usize,
    state: Mutex<JournalState>,
}

/// The run-wide event journal. Cheap to clone (`Option<Arc<_>>`); a
/// disabled journal is a `None` and every method short-circuits on the
/// first branch, exactly like [`crate::observe::MetricsRegistry`].
#[derive(Clone, Default)]
pub struct TraceJournal {
    inner: Option<Arc<JournalInner>>,
}

impl std::fmt::Debug for TraceJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceJournal")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceJournal {
    /// A journal that records nothing (also the `Default`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A collecting journal with the default per-track capacity.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_TRACK_CAPACITY)
    }

    /// A collecting journal holding at most `capacity` events per worker
    /// track (at least 1); overflowing events are dropped and counted.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(JournalInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                state: Mutex::new(JournalState::default()),
            })),
        }
    }

    /// `true` when this journal records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a recording handle for the calling thread. The handle owns
    /// its buffer outright — recording through it never locks — and
    /// flushes into the journal when dropped. Handles on the same thread
    /// share one track (and its capacity); handles on distinct threads get
    /// distinct tracks. Disabled journals hand out no-op handles.
    #[must_use]
    pub fn handle(&self) -> TraceHandle {
        let Some(inner) = self.inner.as_ref() else {
            return TraceHandle { inner: None };
        };
        let me = std::thread::current().id();
        let (track, used) = {
            let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            let track = match st.threads.iter().find(|(id, _)| *id == me) {
                Some(&(_, idx)) => idx,
                None => {
                    let idx = st.tracks.len();
                    st.threads.push((me, idx));
                    st.tracks.push(TrackLog::default());
                    idx
                }
            };
            (track, st.tracks[track].events.len())
        };
        TraceHandle {
            inner: Some(HandleInner {
                journal: Arc::clone(inner),
                track,
                room: inner.capacity.saturating_sub(used),
                events: Vec::new(),
                dropped: 0,
            }),
        }
    }

    /// Total events dropped to overflow across all flushed tracks.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        let Some(inner) = self.inner.as_ref() else {
            return 0;
        };
        let st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.tracks.iter().map(|t| t.dropped).sum()
    }

    /// The merged journal: all flushed events across all tracks, sorted by
    /// timestamp (stable, so per-track recording order breaks ties).
    /// `None` when the journal is disabled.
    #[must_use]
    pub fn merged(&self) -> Option<MergedTrace> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut events: Vec<(usize, TraceEvent)> = Vec::new();
        let mut tracks = Vec::with_capacity(st.tracks.len());
        for (idx, t) in st.tracks.iter().enumerate() {
            events.extend(t.events.iter().map(|&e| (idx, e)));
            tracks.push(TrackSummary {
                name: format!("worker-{idx}"),
                recorded: t.events.len(),
                dropped: t.dropped,
            });
        }
        events.sort_by_key(|(_, e)| e.ts_ns);
        Some(MergedTrace { events, tracks })
    }

    /// Exports the merged journal as Chrome trace-event JSON (the object
    /// format: `{"traceEvents": [...], ...}`), or `None` when disabled.
    ///
    /// Tracks map to `tid`s under one `pid`, each named by a `"M"`
    /// metadata event; spans are `"X"` complete events with microsecond
    /// `ts`/`dur` and their payload (including [`SolveStats`] for zone
    /// solves) under `args`; instants are `"i"` with thread scope. Events
    /// are emitted in merged timestamp order, so `ts` is monotonic within
    /// every track.
    #[must_use]
    pub fn chrome_trace(&self) -> Option<String> {
        let merged = self.merged()?;
        let mut events: Vec<Value> = Vec::with_capacity(merged.events.len() + merged.tracks.len());
        for (idx, t) in merged.tracks.iter().enumerate() {
            events.push(map(vec![
                ("name", str_value("thread_name")),
                ("ph", str_value("M")),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(idx as u64)),
                ("args", map(vec![("name", Value::Str(t.name.clone()))])),
            ]));
        }
        for &(track, ev) in &merged.events {
            events.push(event_value(track, &ev));
        }
        let dropped = merged.tracks.iter().map(|t| t.dropped).sum::<u64>();
        let root = map(vec![
            ("traceEvents", Value::Seq(events)),
            ("displayTimeUnit", str_value("ms")),
            (
                "otherData",
                map(vec![("dropped_events", Value::UInt(dropped))]),
            ),
        ]);
        serde_json::to_string(&root).ok()
    }
}

/// One track's summary in a [`MergedTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackSummary {
    /// Track display name (`worker-<index>` in registration order).
    pub name: String,
    /// Events the track retained.
    pub recorded: usize,
    /// Events the track dropped to overflow.
    pub dropped: u64,
}

/// The journal's merged, timestamp-sorted view.
#[derive(Debug, Clone)]
pub struct MergedTrace {
    /// `(track index, event)` pairs in ascending `ts_ns` order.
    pub events: Vec<(usize, TraceEvent)>,
    /// Per-track summaries, indexed by track.
    pub tracks: Vec<TrackSummary>,
}

#[derive(Debug)]
struct HandleInner {
    journal: Arc<JournalInner>,
    track: usize,
    /// Events this handle may still retain before its track is full.
    room: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl HandleInner {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.room {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// A per-worker recording handle (see [`TraceJournal::handle`]). The
/// recording methods write into thread-local storage the handle owns —
/// no locks, no shared atomics — and the buffered events flush into the
/// journal exactly once, when the handle drops (or [`TraceHandle::flush`]
/// is called). Implements [`SolveObserver`] so it can plug straight into
/// the MOSP solver's hook sites.
#[derive(Debug)]
pub struct TraceHandle {
    inner: Option<HandleInner>,
}

impl TraceHandle {
    /// A handle that records nothing (what disabled journals hand out).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// `true` when this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the journal epoch (0 when disabled). Sample this
    /// before a region of interest and pass it to [`TraceHandle::span`].
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(h) => elapsed_ns(h.journal.epoch),
            None => 0,
        }
    }

    /// Records a span from `start_ns` (a prior [`TraceHandle::now_ns`])
    /// to now.
    pub fn span(&mut self, start_ns: u64, kind: TraceEventKind) {
        let Some(h) = &mut self.inner else {
            return;
        };
        let dur_ns = elapsed_ns(h.journal.epoch).saturating_sub(start_ns);
        h.push(TraceEvent {
            ts_ns: start_ns,
            dur_ns,
            kind,
        });
    }

    /// Records an instant event stamped now.
    pub fn instant(&mut self, kind: TraceEventKind) {
        let Some(h) = &mut self.inner else {
            return;
        };
        let ts_ns = elapsed_ns(h.journal.epoch);
        h.push(TraceEvent {
            ts_ns,
            dur_ns: 0,
            kind,
        });
    }

    /// Records one finished zone solve span with its counters.
    pub fn zone_span(&mut self, start_ns: u64, zone: usize, stats: &SolveStats, exhausted: bool) {
        self.span(
            start_ns,
            TraceEventKind::ZoneSolve {
                zone,
                stats: *stats,
                exhausted,
            },
        );
    }

    /// Records one finished pipeline stage span.
    pub fn stage_span(&mut self, start_ns: u64, name: &'static str) {
        self.span(start_ns, TraceEventKind::Stage { name });
    }

    /// Records a degradation-ladder rung-transition instant.
    pub fn rung_transition(&mut self, rung: usize) {
        self.instant(TraceEventKind::RungTransition { rung });
    }

    /// Records a contained zone-fault instant.
    pub fn zone_fault(&mut self, zone: usize) {
        self.instant(TraceEventKind::ZoneFault { zone });
    }

    /// Records a successful zone-salvage instant.
    pub fn zone_salvaged(&mut self, zone: usize) {
        self.instant(TraceEventKind::ZoneSalvaged { zone });
    }

    /// Records a ladder poison-recovery instant.
    pub fn ladder_restored(&mut self, rung: usize) {
        self.instant(TraceEventKind::LadderRestored { rung });
    }

    /// Flushes the buffered events into the journal. Idempotent; also runs
    /// on drop. After a flush the handle is disabled.
    pub fn flush(&mut self) {
        let Some(h) = self.inner.take() else {
            return;
        };
        let mut events = h.events;
        let mut st = h
            .journal
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(track) = st.tracks.get_mut(h.track) {
            track.events.append(&mut events);
            track.dropped += h.dropped;
        }
    }
}

impl Drop for TraceHandle {
    fn drop(&mut self) {
        self.flush();
    }
}

impl SolveObserver for TraceHandle {
    fn now_ns(&mut self) -> u64 {
        TraceHandle::now_ns(self)
    }

    fn layer_span(&mut self, start_ns: u64, vertex: usize, labels: usize) {
        self.span(start_ns, TraceEventKind::Layer { vertex, labels });
    }

    fn batch_span(
        &mut self,
        start_ns: u64,
        vertex: usize,
        target: usize,
        attempts: u64,
        pruned: u64,
    ) {
        self.span(
            start_ns,
            TraceEventKind::LabelBatch {
                vertex,
                target,
                attempts,
                pruned,
            },
        );
    }

    fn cap_evictions(&mut self, vertex: usize, count: u64) {
        self.instant(TraceEventKind::CapEvictions { vertex, count });
    }

    fn budget_exhausted(&mut self, reason: Exhaustion) {
        self.instant(TraceEventKind::BudgetExhausted {
            reason: exhaustion_name(reason),
        });
    }
}

fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn exhaustion_name(reason: Exhaustion) -> &'static str {
    match reason {
        Exhaustion::DeadlineExpired => "deadline_expired",
        Exhaustion::WorkCapReached => "work_cap_reached",
    }
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn str_value(s: &str) -> Value {
    Value::Str(s.to_owned())
}

/// Microseconds (Chrome-trace's unit) from nanoseconds, order-preserving.
fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

fn event_value(track: usize, ev: &TraceEvent) -> Value {
    let args = match ev.kind {
        TraceEventKind::ZoneSolve {
            zone,
            stats,
            exhausted,
        } => map(vec![
            ("zone", Value::UInt(zone as u64)),
            ("labels_created", Value::UInt(stats.labels_created)),
            ("labels_pruned", Value::UInt(stats.labels_pruned)),
            ("solver_work", Value::UInt(stats.work)),
            ("front_size", Value::UInt(stats.front_size)),
            ("dominance_checks", Value::UInt(stats.dominance_checks)),
            ("dominance_skipped", Value::UInt(stats.dominance_skipped)),
            ("exhausted", Value::Bool(exhausted)),
        ]),
        TraceEventKind::Layer { vertex, labels } => map(vec![
            ("vertex", Value::UInt(vertex as u64)),
            ("labels", Value::UInt(labels as u64)),
        ]),
        TraceEventKind::LabelBatch {
            vertex,
            target,
            attempts,
            pruned,
        } => map(vec![
            ("vertex", Value::UInt(vertex as u64)),
            ("target", Value::UInt(target as u64)),
            ("attempts", Value::UInt(attempts)),
            ("pruned", Value::UInt(pruned)),
        ]),
        TraceEventKind::Stage { .. } => map(Vec::new()),
        TraceEventKind::RungTransition { rung } => map(vec![("rung", Value::UInt(rung as u64))]),
        TraceEventKind::BudgetExhausted { reason } => map(vec![("reason", str_value(reason))]),
        TraceEventKind::CapEvictions { vertex, count } => map(vec![
            ("vertex", Value::UInt(vertex as u64)),
            ("count", Value::UInt(count)),
        ]),
        TraceEventKind::ZoneFault { zone } | TraceEventKind::ZoneSalvaged { zone } => {
            map(vec![("zone", Value::UInt(zone as u64))])
        }
        TraceEventKind::LadderRestored { rung } => map(vec![("rung", Value::UInt(rung as u64))]),
    };
    let mut entries = vec![
        ("name", str_value(ev.kind.name())),
        ("cat", str_value("wavemin")),
        ("pid", Value::UInt(1)),
        ("tid", Value::UInt(track as u64)),
        ("ts", us(ev.ts_ns)),
    ];
    if ev.kind.is_span() {
        entries.push(("ph", str_value("X")));
        entries.push(("dur", us(ev.dur_ns)));
    } else {
        entries.push(("ph", str_value("i")));
        entries.push(("s", str_value("t")));
    }
    entries.push(("args", args));
    map(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_is_a_noop() {
        let j = TraceJournal::disabled();
        assert!(!j.is_enabled());
        let mut h = j.handle();
        assert!(!h.is_enabled());
        assert_eq!(h.now_ns(), 0);
        h.instant(TraceEventKind::RungTransition { rung: 1 });
        h.zone_span(0, 0, &SolveStats::default(), false);
        drop(h);
        assert!(j.merged().is_none());
        assert!(j.chrome_trace().is_none());
        assert_eq!(j.dropped_events(), 0);
    }

    #[test]
    fn events_merge_in_timestamp_order_across_threads() {
        let j = TraceJournal::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let j = j.clone();
                scope.spawn(move || {
                    let mut h = j.handle();
                    for i in 0..32 {
                        h.instant(TraceEventKind::RungTransition { rung: i });
                    }
                });
            }
        });
        let merged = j.merged().expect("enabled");
        assert_eq!(merged.events.len(), 128);
        assert_eq!(merged.tracks.len(), 4);
        let ts: Vec<u64> = merged.events.iter().map(|(_, e)| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "merged order");
        assert_eq!(j.dropped_events(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts_exactly() {
        let j = TraceJournal::with_capacity(10);
        let mut h = j.handle();
        for i in 0..25 {
            h.instant(TraceEventKind::RungTransition { rung: i });
        }
        drop(h);
        assert_eq!(j.dropped_events(), 15);
        let merged = j.merged().expect("enabled");
        assert_eq!(merged.events.len(), 10);
        // Keep-oldest policy: the retained events are the first ten.
        for (i, (_, e)) in merged.events.iter().enumerate() {
            match e.kind {
                TraceEventKind::RungTransition { rung } => assert_eq!(rung, i),
                _ => panic!("unexpected kind"),
            }
        }
    }

    #[test]
    fn sequential_handles_share_one_track_budget() {
        let j = TraceJournal::with_capacity(10);
        for _ in 0..3 {
            let mut h = j.handle();
            for i in 0..6 {
                h.instant(TraceEventKind::RungTransition { rung: i });
            }
        }
        // 18 pushed, 10 retained (track capacity), 8 dropped.
        let merged = j.merged().expect("enabled");
        assert_eq!(merged.tracks.len(), 1, "same thread, one track");
        assert_eq!(merged.events.len(), 10);
        assert_eq!(j.dropped_events(), 8);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_required_keys() {
        let j = TraceJournal::enabled();
        {
            let mut h = j.handle();
            let t0 = h.now_ns();
            h.zone_span(
                t0,
                3,
                &SolveStats {
                    labels_created: 7,
                    ..SolveStats::default()
                },
                true,
            );
            h.rung_transition(2);
        }
        let json = j.chrome_trace().expect("enabled");
        let v = serde_json::from_str(&json).expect("valid JSON");
        let Value::Map(entries) = &v else {
            panic!("object root");
        };
        let trace_events = entries
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents");
        let Value::Seq(events) = trace_events else {
            panic!("traceEvents array");
        };
        // 1 metadata + 2 recorded events.
        assert_eq!(events.len(), 3);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"zone_solve\""));
        assert!(json.contains("\"labels_created\""));
        assert!(json.contains("\"rung_transition\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn spans_measure_elapsed_time() {
        let j = TraceJournal::enabled();
        let mut h = j.handle();
        let t0 = h.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        h.stage_span(t0, "characterization");
        drop(h);
        let merged = j.merged().expect("enabled");
        assert_eq!(merged.events.len(), 1);
        let (_, ev) = merged.events[0];
        assert!(ev.dur_ns >= 2_000_000, "slept 2 ms, got {} ns", ev.dur_ns);
        assert_eq!(ev.ts_ns, t0);
    }
}
