//! Optimization configuration.

use crate::error::WaveMinError;
use crate::fault::FaultPlan;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use wavemin_cells::units::{Microns, Picoseconds};
use wavemin_mosp::Budget;

/// How the fixed non-leaf buffers' noise enters each zone's objective
/// (Observation 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackgroundMode {
    /// Non-leaf elements placed in or near the zone (noise is local).
    LocalZone,
    /// The whole tree's non-leaf background in every zone.
    Global,
    /// Ignore non-leaf noise (the prior-work behaviour WaveMin fixes).
    None,
}

/// Which solver runs inside each zone × interval subproblem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Warburton's ε-approximate MOSP solve (the paper's ClkWaveMin).
    Warburton {
        /// Approximation parameter (the paper uses 0.01).
        epsilon: f64,
    },
    /// Exact Pareto enumeration with an optional per-vertex label cap.
    Exact {
        /// Per-vertex frontier cap (`None` = unbounded).
        max_labels: Option<usize>,
    },
}

impl Default for SolverKind {
    fn default() -> Self {
        SolverKind::Warburton { epsilon: 0.01 }
    }
}

/// Configuration of a WaveMin run (Problem 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveMinConfig {
    /// Clock skew bound κ.
    pub skew_bound: Picoseconds,
    /// Total number of time sampling points |S| (split over 2 rails × 2
    /// clock-edge events; values below 4 are rounded up to 4).
    pub sample_count: usize,
    /// Candidate cells `B ∪ I` every sink may be assigned to.
    pub assignment_cells: Vec<String>,
    /// Zone pitch for the local-noise partition.
    pub zone_pitch: Microns,
    /// Input slew used during profiling (Section IV-B: slightly sharper
    /// than the observed average for an upper bound).
    pub profiling_slew: Picoseconds,
    /// The per-subproblem solver.
    pub solver: SolverKind,
    /// Safety cap on Pareto labels per vertex inside the Warburton solve
    /// (the scaled grid usually collapses labels long before this).
    pub label_cap: usize,
    /// Keep at most this many feasible intervals (best degree-of-freedom
    /// first); `None` = all.
    pub max_intervals: Option<usize>,
    /// Non-leaf background treatment (Observation 1).
    pub background: BackgroundMode,
    /// Fraction of κ used as the optimization window; the remainder is
    /// headroom for the sibling-load feedback Observation 4 ignores.
    pub window_margin: f64,
    /// Characterize sink candidates through per-cell lookup tables with
    /// linear interpolation (the paper's Section IV-B scheme) instead of
    /// calling the analytic model per (sink, cell) pair. Faster for large
    /// designs, at a small interpolation error.
    pub lut_characterization: bool,
    /// Wall-clock budget for one optimization run in milliseconds
    /// (`None` = unbounded). When the budget runs out mid-solve the zone
    /// solvers descend the degradation ladder (exact → ε-approximate →
    /// capped → greedy) instead of running unbounded; the relaxations are
    /// reported in [`crate::algo::Outcome::degradation`].
    pub time_budget_ms: Option<u64>,
    /// Worker threads for the independent solve units (feasible intervals,
    /// interval intersections, power modes). `None` = one per available
    /// core. Results are collected in input order, so the outcome is
    /// independent of this setting (budgeted runs excepted: a shared work
    /// cap is drained in whatever order the workers charge it).
    pub threads: Option<usize>,
    /// Collect solver metrics into a [`crate::observe::RunReport`] attached
    /// to the outcome. Off by default: when disabled the instrumented call
    /// sites reduce to a branch on a `None` registry.
    #[serde(default)]
    pub collect_metrics: bool,
    /// Print pipeline-stage spans to stderr as they close. Implies metric
    /// collection for the run.
    #[serde(default)]
    pub trace_spans: bool,
    /// Deterministic fault-injection plan for chaos testing: seeded panics,
    /// forced budget exhaustion, and NaN-poisoned cost vectors fired at
    /// solver hook sites. `None` (the production setting) injects nothing.
    /// Defaults from the `WAVEMIN_FAULTS=seed:rate` environment variable.
    #[serde(default)]
    pub fault_plan: Option<FaultPlan>,
    /// Path of the zone-result checkpoint journal. When set, every solved
    /// zone's result is appended (and flushed) as it completes, keyed by a
    /// content hash covering the design, config, interval, and predecessor
    /// solutions.
    #[serde(default)]
    pub checkpoint_path: Option<String>,
    /// Resume from an existing checkpoint journal at
    /// [`Self::checkpoint_path`]: zones whose keys match are reused
    /// bit-for-bit, only missing or dirty zones are re-solved. Ignored
    /// without a checkpoint path.
    #[serde(default)]
    pub resume: bool,
    /// Stream zone problems instead of materializing every zone's
    /// sampled vectors up front: each zone is characterized when an
    /// interval first needs it, archived compactly (see
    /// [`wavemin_mosp::CompactCosts`]), and re-widened — or recomputed
    /// after eviction — on later use. At the default f64 storage
    /// precision a streaming run is bit-identical to a materialized one.
    /// Implied by [`Self::memory_budget_mb`].
    #[serde(default)]
    pub streaming: bool,
    /// Total process memory budget in MB for a streaming run. The zone
    /// archive is sized to what remains after the measured baseline
    /// (noise table, intervals) and one hot zone; archived zones are
    /// evicted LRU (`zones_spilled`) and recomputed on next use
    /// (`zone_recomputes`). A budget the minimal working set cannot fit
    /// fails with [`WaveMinError::MemoryBudget`] before any zone is
    /// solved. `None` = unbounded.
    #[serde(default)]
    pub memory_budget_mb: Option<usize>,
}

impl Default for WaveMinConfig {
    /// The paper's experimental setup: κ = 20 ps, |S| = 158, ε = 0.01,
    /// 50 µm zones, candidates {BUF_X8, BUF_X16, INV_X8, INV_X16}.
    fn default() -> Self {
        Self {
            skew_bound: Picoseconds::new(20.0),
            sample_count: 158,
            assignment_cells: vec![
                "BUF_X8".to_owned(),
                "BUF_X16".to_owned(),
                "INV_X8".to_owned(),
                "INV_X16".to_owned(),
            ],
            zone_pitch: Microns::new(50.0),
            profiling_slew: Picoseconds::new(20.0),
            solver: SolverKind::default(),
            label_cap: 64,
            max_intervals: Some(48),
            background: BackgroundMode::Global,
            window_margin: 0.8,
            lut_characterization: false,
            time_budget_ms: None,
            threads: None,
            collect_metrics: false,
            trace_spans: false,
            fault_plan: FaultPlan::from_env(),
            checkpoint_path: None,
            resume: false,
            streaming: false,
            memory_budget_mb: None,
        }
    }
}

impl WaveMinConfig {
    /// Number of sample times per (rail, event) pair: `max(1, |S|/4)`.
    #[must_use]
    pub fn samples_per_slot(&self) -> usize {
        (self.sample_count / 4).max(1)
    }

    /// The effective |S| after rounding (always a multiple of 4).
    #[must_use]
    pub fn effective_sample_count(&self) -> usize {
        self.samples_per_slot() * 4
    }

    /// Returns the config with a different skew bound.
    #[must_use]
    pub fn with_skew_bound(mut self, kappa: Picoseconds) -> Self {
        self.skew_bound = kappa;
        self
    }

    /// Returns the config with a different sample count.
    #[must_use]
    pub fn with_sample_count(mut self, s: usize) -> Self {
        self.sample_count = s;
        self
    }

    /// Returns the config with a different zone solver.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Returns the config with a wall-clock budget (milliseconds).
    #[must_use]
    pub fn with_time_budget_ms(mut self, ms: u64) -> Self {
        self.time_budget_ms = Some(ms);
        self
    }

    /// Returns the config with an explicit worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Returns the config with metric collection switched on or off.
    #[must_use]
    pub fn with_metrics(mut self, collect: bool) -> Self {
        self.collect_metrics = collect;
        self
    }

    /// Returns the config with span tracing switched on or off.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace_spans = trace;
        self
    }

    /// Returns the config with an explicit fault-injection plan (`None`
    /// disables injection even when `WAVEMIN_FAULTS` is set).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Returns the config with a checkpoint journal path.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<String>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Returns the config with resume-from-checkpoint switched on or off.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Returns the config with streaming zone solves switched on or off.
    #[must_use]
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Returns the config with a total-process memory budget in MB
    /// (implies streaming).
    #[must_use]
    pub fn with_memory_budget_mb(mut self, mb: usize) -> Self {
        self.memory_budget_mb = Some(mb);
        self
    }

    /// `true` when zones should be streamed rather than materialized:
    /// either requested directly or implied by a memory budget.
    #[must_use]
    pub fn streaming_enabled(&self) -> bool {
        self.streaming || self.memory_budget_mb.is_some()
    }

    /// The worker count the solve pipeline will actually use: the
    /// configured [`Self::threads`], or one per available core. The core
    /// count is resolved once per process and then pinned, so a daemon
    /// whose cgroup limits change between jobs keeps a stable worker
    /// count (and therefore stable `map_ordered` batching) for every job
    /// of a session.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(crate::parallel::available_threads)
    }

    /// A fresh [`Budget`] for one run: the deadline starts counting now.
    #[must_use]
    pub fn budget(&self) -> Budget {
        match self.time_budget_ms {
            Some(ms) => Budget::with_time_limit(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        }
    }

    /// Rejects configurations no optimization can meaningfully run with.
    ///
    /// # Errors
    ///
    /// [`WaveMinError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), WaveMinError> {
        if !self.skew_bound.value().is_finite() || self.skew_bound.value() <= 0.0 {
            return Err(WaveMinError::InvalidConfig(
                "skew_bound must be positive and finite",
            ));
        }
        if self.sample_count == 0 {
            return Err(WaveMinError::InvalidConfig(
                "sample_count must be nonzero (the noise objective needs samples)",
            ));
        }
        if self.assignment_cells.is_empty() {
            return Err(WaveMinError::InvalidConfig(
                "assignment_cells must name at least one candidate cell",
            ));
        }
        if !self.zone_pitch.value().is_finite() || self.zone_pitch.value() <= 0.0 {
            return Err(WaveMinError::InvalidConfig(
                "zone_pitch must be positive and finite",
            ));
        }
        if !self.profiling_slew.value().is_finite() || self.profiling_slew.value() <= 0.0 {
            return Err(WaveMinError::InvalidConfig(
                "profiling_slew must be positive and finite",
            ));
        }
        if let SolverKind::Warburton { epsilon } = self.solver {
            if !epsilon.is_finite() || epsilon <= 0.0 {
                return Err(WaveMinError::InvalidConfig(
                    "Warburton epsilon must be positive and finite",
                ));
            }
        }
        if self.label_cap == 0 {
            return Err(WaveMinError::InvalidConfig("label_cap must be at least 1"));
        }
        if self.max_intervals == Some(0) {
            return Err(WaveMinError::InvalidConfig(
                "max_intervals of 0 keeps no interval; use None for unbounded",
            ));
        }
        if !self.window_margin.is_finite() || self.window_margin <= 0.0 || self.window_margin > 1.0
        {
            return Err(WaveMinError::InvalidConfig(
                "window_margin must lie in (0, 1]",
            ));
        }
        if self.threads == Some(0) {
            return Err(WaveMinError::InvalidConfig(
                "threads must be at least 1 (use None for one per core)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = WaveMinConfig::default();
        assert_eq!(c.skew_bound, Picoseconds::new(20.0));
        assert_eq!(c.sample_count, 158);
        assert_eq!(c.assignment_cells.len(), 4);
        assert_eq!(c.zone_pitch, Microns::new(50.0));
        assert!(matches!(c.solver, SolverKind::Warburton { epsilon } if epsilon == 0.01));
    }

    #[test]
    fn sample_slot_arithmetic() {
        let c = WaveMinConfig::default().with_sample_count(158);
        assert_eq!(c.samples_per_slot(), 39);
        assert_eq!(c.effective_sample_count(), 156);
        let tiny = WaveMinConfig::default().with_sample_count(4);
        assert_eq!(tiny.samples_per_slot(), 1);
        assert_eq!(tiny.effective_sample_count(), 4);
        let sub = WaveMinConfig::default().with_sample_count(1);
        assert_eq!(
            sub.effective_sample_count(),
            4,
            "rounded up to one per slot"
        );
    }

    #[test]
    fn builder_methods() {
        let c = WaveMinConfig::default()
            .with_skew_bound(Picoseconds::new(90.0))
            .with_sample_count(8);
        assert_eq!(c.skew_bound, Picoseconds::new(90.0));
        assert_eq!(c.sample_count, 8);
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(
            WaveMinConfig::default().with_threads(3).effective_threads(),
            3
        );
        assert!(WaveMinConfig::default().effective_threads() >= 1);
        assert_eq!(WaveMinConfig::default().with_threads(1).validate(), Ok(()));
    }

    #[test]
    fn default_config_validates_and_is_unbudgeted() {
        let c = WaveMinConfig::default();
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.budget(), Budget::unlimited());
        let b = c.with_time_budget_ms(50).budget();
        assert!(b.remaining().expect("deadline set") <= Duration::from_millis(50));
    }

    #[test]
    fn memory_budget_implies_streaming() {
        let c = WaveMinConfig::default();
        assert!(!c.streaming_enabled());
        assert!(c.clone().with_streaming(true).streaming_enabled());
        let budgeted = c.with_memory_budget_mb(256);
        assert!(budgeted.streaming_enabled());
        assert_eq!(budgeted.memory_budget_mb, Some(256));
        assert_eq!(budgeted.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let cases: Vec<(WaveMinConfig, &str)> = vec![
            (
                WaveMinConfig::default().with_skew_bound(Picoseconds::new(-1.0)),
                "skew_bound",
            ),
            (
                WaveMinConfig::default().with_skew_bound(Picoseconds::new(f64::NAN)),
                "skew_bound",
            ),
            (
                WaveMinConfig::default().with_sample_count(0),
                "sample_count",
            ),
            (
                WaveMinConfig {
                    assignment_cells: vec![],
                    ..WaveMinConfig::default()
                },
                "assignment_cells",
            ),
            (
                WaveMinConfig {
                    zone_pitch: Microns::new(0.0),
                    ..WaveMinConfig::default()
                },
                "zone_pitch",
            ),
            (
                WaveMinConfig {
                    profiling_slew: Picoseconds::new(f64::INFINITY),
                    ..WaveMinConfig::default()
                },
                "profiling_slew",
            ),
            (
                WaveMinConfig {
                    solver: SolverKind::Warburton { epsilon: 0.0 },
                    ..WaveMinConfig::default()
                },
                "epsilon",
            ),
            (
                WaveMinConfig {
                    label_cap: 0,
                    ..WaveMinConfig::default()
                },
                "label_cap",
            ),
            (
                WaveMinConfig {
                    max_intervals: Some(0),
                    ..WaveMinConfig::default()
                },
                "max_intervals",
            ),
            (
                WaveMinConfig {
                    window_margin: 1.5,
                    ..WaveMinConfig::default()
                },
                "window_margin",
            ),
            (WaveMinConfig::default().with_threads(0), "threads"),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().expect_err(needle);
            assert!(
                err.to_string().contains(needle),
                "error '{err}' should mention {needle}"
            );
        }
    }
}
