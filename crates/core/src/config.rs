//! Optimization configuration.

use serde::{Deserialize, Serialize};
use wavemin_cells::units::{Microns, Picoseconds};

/// How the fixed non-leaf buffers' noise enters each zone's objective
/// (Observation 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackgroundMode {
    /// Non-leaf elements placed in or near the zone (noise is local).
    LocalZone,
    /// The whole tree's non-leaf background in every zone.
    Global,
    /// Ignore non-leaf noise (the prior-work behaviour WaveMin fixes).
    None,
}

/// Which solver runs inside each zone × interval subproblem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Warburton's ε-approximate MOSP solve (the paper's ClkWaveMin).
    Warburton {
        /// Approximation parameter (the paper uses 0.01).
        epsilon: f64,
    },
    /// Exact Pareto enumeration with an optional per-vertex label cap.
    Exact {
        /// Per-vertex frontier cap (`None` = unbounded).
        max_labels: Option<usize>,
    },
}

impl Default for SolverKind {
    fn default() -> Self {
        SolverKind::Warburton { epsilon: 0.01 }
    }
}

/// Configuration of a WaveMin run (Problem 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveMinConfig {
    /// Clock skew bound κ.
    pub skew_bound: Picoseconds,
    /// Total number of time sampling points |S| (split over 2 rails × 2
    /// clock-edge events; values below 4 are rounded up to 4).
    pub sample_count: usize,
    /// Candidate cells `B ∪ I` every sink may be assigned to.
    pub assignment_cells: Vec<String>,
    /// Zone pitch for the local-noise partition.
    pub zone_pitch: Microns,
    /// Input slew used during profiling (Section IV-B: slightly sharper
    /// than the observed average for an upper bound).
    pub profiling_slew: Picoseconds,
    /// The per-subproblem solver.
    pub solver: SolverKind,
    /// Safety cap on Pareto labels per vertex inside the Warburton solve
    /// (the scaled grid usually collapses labels long before this).
    pub label_cap: usize,
    /// Keep at most this many feasible intervals (best degree-of-freedom
    /// first); `None` = all.
    pub max_intervals: Option<usize>,
    /// Non-leaf background treatment (Observation 1).
    pub background: BackgroundMode,
    /// Fraction of κ used as the optimization window; the remainder is
    /// headroom for the sibling-load feedback Observation 4 ignores.
    pub window_margin: f64,
    /// Characterize sink candidates through per-cell lookup tables with
    /// linear interpolation (the paper's Section IV-B scheme) instead of
    /// calling the analytic model per (sink, cell) pair. Faster for large
    /// designs, at a small interpolation error.
    pub lut_characterization: bool,
}

impl Default for WaveMinConfig {
    /// The paper's experimental setup: κ = 20 ps, |S| = 158, ε = 0.01,
    /// 50 µm zones, candidates {BUF_X8, BUF_X16, INV_X8, INV_X16}.
    fn default() -> Self {
        Self {
            skew_bound: Picoseconds::new(20.0),
            sample_count: 158,
            assignment_cells: vec![
                "BUF_X8".to_owned(),
                "BUF_X16".to_owned(),
                "INV_X8".to_owned(),
                "INV_X16".to_owned(),
            ],
            zone_pitch: Microns::new(50.0),
            profiling_slew: Picoseconds::new(20.0),
            solver: SolverKind::default(),
            label_cap: 64,
            max_intervals: Some(48),
            background: BackgroundMode::Global,
            window_margin: 0.8,
            lut_characterization: false,
        }
    }
}

impl WaveMinConfig {
    /// Number of sample times per (rail, event) pair: `max(1, |S|/4)`.
    #[must_use]
    pub fn samples_per_slot(&self) -> usize {
        (self.sample_count / 4).max(1)
    }

    /// The effective |S| after rounding (always a multiple of 4).
    #[must_use]
    pub fn effective_sample_count(&self) -> usize {
        self.samples_per_slot() * 4
    }

    /// Returns the config with a different skew bound.
    #[must_use]
    pub fn with_skew_bound(mut self, kappa: Picoseconds) -> Self {
        self.skew_bound = kappa;
        self
    }

    /// Returns the config with a different sample count.
    #[must_use]
    pub fn with_sample_count(mut self, s: usize) -> Self {
        self.sample_count = s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = WaveMinConfig::default();
        assert_eq!(c.skew_bound, Picoseconds::new(20.0));
        assert_eq!(c.sample_count, 158);
        assert_eq!(c.assignment_cells.len(), 4);
        assert_eq!(c.zone_pitch, Microns::new(50.0));
        assert!(matches!(c.solver, SolverKind::Warburton { epsilon } if epsilon == 0.01));
    }

    #[test]
    fn sample_slot_arithmetic() {
        let c = WaveMinConfig::default().with_sample_count(158);
        assert_eq!(c.samples_per_slot(), 39);
        assert_eq!(c.effective_sample_count(), 156);
        let tiny = WaveMinConfig::default().with_sample_count(4);
        assert_eq!(tiny.samples_per_slot(), 1);
        assert_eq!(tiny.effective_sample_count(), 4);
        let sub = WaveMinConfig::default().with_sample_count(1);
        assert_eq!(sub.effective_sample_count(), 4, "rounded up to one per slot");
    }

    #[test]
    fn builder_methods() {
        let c = WaveMinConfig::default()
            .with_skew_bound(Picoseconds::new(90.0))
            .with_sample_count(8);
        assert_eq!(c.skew_bound, Picoseconds::new(90.0));
        assert_eq!(c.sample_count, 8);
    }
}
