//! The optimization algorithms: ClkWaveMin, ClkWaveMin-f and the
//! comparison baselines.
//!
//! All interval-based algorithms share one skeleton (Fig. 8):
//!
//! 1. preprocess the design into a [`NoiseTable`];
//! 2. generate the feasible time intervals (global, so the skew bound
//!    holds across the whole sink set);
//! 3. partition the sinks into zones;
//! 4. for every interval, solve each zone's subproblem with the
//!    algorithm-specific inner solver; the interval's cost is the worst
//!    zone cost;
//! 5. keep the best interval's assignment, validate the exact skew and
//!    report before/after noise.

pub(crate) mod clkwavemin;
mod dynamic;
mod exhaustive;
mod fast;
mod nieh;
mod nonleaf;
mod peakmin;
mod samanta;
pub(crate) mod streaming;
mod yield_aware;

pub use clkwavemin::ClkWaveMin;
pub use dynamic::{DynamicOutcome, DynamicPolarity};
pub use exhaustive::ExhaustiveSearch;
pub use fast::ClkWaveMinFast;
pub use nieh::NiehOppositePhase;
pub use nonleaf::NonLeafPolarity;
pub use peakmin::ClkPeakMin;
pub use samanta::SamantaBalanced;
pub use yield_aware::{normal_quantile, YieldAwareWaveMin, YieldOutcome};

use crate::assignment::Assignment;
use crate::config::{BackgroundMode, WaveMinConfig};
use crate::design::Design;
use crate::error::WaveMinError;
use crate::eval::NoiseEvaluator;
use crate::intervals::{FeasibleInterval, IntervalSet};
use crate::noise_table::NoiseTable;
use crate::observe::{MetricsRegistry, RunReport, Stage};
use crate::sampling::SamplePlan;
use crate::trace::TraceJournal;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use wavemin_cells::characterize::ClockEdge;
use wavemin_cells::units::{MilliAmps, Millivolts, Picoseconds};
use wavemin_cells::CellKind;
use wavemin_clocktree::ZoneGrid;
use wavemin_mosp::Exhaustion;

/// One relaxation the optimizer applied while descending the degradation
/// ladder (exact → ε-approximate → tightly capped → greedy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DegradationStep {
    /// Exact Pareto enumeration was abandoned for Warburton's
    /// ε-approximation.
    ExactToApproximate {
        /// The ε the approximation continued with.
        epsilon: f64,
        /// Which resource ran out.
        reason: Exhaustion,
    },
    /// The Warburton approximation parameter was escalated.
    EpsilonRaised {
        /// ε before the escalation.
        from: f64,
        /// ε after the escalation.
        to: f64,
        /// Which resource ran out.
        reason: Exhaustion,
    },
    /// The per-vertex Pareto label cap was tightened.
    LabelCapTightened {
        /// Cap before tightening.
        from: usize,
        /// Cap after tightening.
        to: usize,
        /// Which resource ran out.
        reason: Exhaustion,
    },
    /// Remaining zone solves fell back to the greedy single-label
    /// completion (still a valid assignment, no optimality claim).
    GreedyFallback {
        /// Which resource ran out.
        reason: Exhaustion,
    },
    /// A zone worker faulted (panic or injected fault) and its result was
    /// salvaged by a greedy retry — the assignment is valid but carries
    /// no optimality claim for that zone.
    ZoneFaultContained {
        /// The zone whose solve faulted.
        zone: usize,
    },
}

impl std::fmt::Display for DegradationStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ExactToApproximate { epsilon, reason } => {
                write!(f, "exact -> eps-approximate (eps = {epsilon}): {reason}")
            }
            Self::EpsilonRaised { from, to, reason } => {
                write!(f, "eps raised {from} -> {to}: {reason}")
            }
            Self::LabelCapTightened { from, to, reason } => {
                write!(f, "label cap tightened {from} -> {to}: {reason}")
            }
            Self::GreedyFallback { reason } => {
                write!(f, "greedy fallback: {reason}")
            }
            Self::ZoneFaultContained { zone } => {
                write!(f, "zone {zone} fault contained (salvaged on greedy rung)")
            }
        }
    }
}

/// A machine-readable account of everything the optimizer relaxed to fit
/// its resource budget. Absent from an [`Outcome`] when the run completed
/// at full fidelity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// The relaxations, in the order they were applied.
    pub steps: Vec<DegradationStep>,
    /// Zone solves whose Pareto frontier was truncated mid-solve.
    pub exhausted_solves: usize,
    /// Total zone solves attempted during the run.
    pub total_solves: usize,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degraded ({}/{} zone solves exhausted)",
            self.exhausted_solves, self.total_solves
        )?;
        for step in &self.steps {
            write!(f, "; {step}")?;
        }
        Ok(())
    }
}

/// The result of running an optimization algorithm on a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// The chosen sink → cell mapping (plus delay codes).
    pub assignment: Assignment,
    /// Worst-mode peak current before optimization.
    pub peak_before: MilliAmps,
    /// Worst-mode peak current after optimization.
    pub peak_after: MilliAmps,
    /// Worst-mode VDD noise before optimization.
    pub vdd_noise_before: Millivolts,
    /// Worst-mode VDD noise after optimization.
    pub vdd_noise_after: Millivolts,
    /// Worst-mode ground noise before optimization.
    pub gnd_noise_before: Millivolts,
    /// Worst-mode ground noise after optimization.
    pub gnd_noise_after: Millivolts,
    /// Worst-mode clock skew before optimization.
    pub skew_before: Picoseconds,
    /// Worst-mode clock skew after optimization (exact re-analysis).
    pub skew_after: Picoseconds,
    /// The solver's internal min–max objective value for the chosen
    /// interval (sampled µA, not directly comparable across |S|).
    pub estimated_cost: f64,
    /// Number of feasible intervals examined.
    pub intervals_tried: usize,
    /// ADBs present in the optimized design (multi-mode flows).
    pub adb_count: usize,
    /// ADIs present in the optimized design (multi-mode flows).
    pub adi_count: usize,
    /// Wall-clock optimization time (excludes evaluation).
    pub runtime: Duration,
    /// What was relaxed to fit the resource budget (`None` = the run
    /// completed at full fidelity).
    pub degradation: Option<Degradation>,
    /// Zones whose sampling plan fell back to a single dummy time because
    /// the hot window was degenerate (see
    /// [`crate::sampling::SamplePlan::is_degenerate`]). Their sampled
    /// objectives are identically zero, so a nonzero count means parts of
    /// the reported `estimated_cost` are vacuous rather than optimal.
    pub degenerate_zones: usize,
    /// The run's structured metrics report (`None` unless the config set
    /// [`crate::config::WaveMinConfig::collect_metrics`] or
    /// [`crate::config::WaveMinConfig::trace_spans`]).
    #[serde(default)]
    pub report: Option<RunReport>,
    /// Zones whose solve faulted (panicked or hit an injected fault) and
    /// were salvaged by a greedy retry, sorted ascending. Empty for a
    /// clean run; non-empty means the assignment is valid but those zones
    /// carry no optimality claim.
    #[serde(default)]
    pub faulted_zones: Vec<usize>,
}

impl Outcome {
    /// Relative peak-current improvement in percent (positive = better).
    #[must_use]
    pub fn peak_improvement_pct(&self) -> f64 {
        improvement_pct(self.peak_before.value(), self.peak_after.value())
    }

    /// Relative VDD-noise improvement in percent.
    #[must_use]
    pub fn vdd_improvement_pct(&self) -> f64 {
        improvement_pct(self.vdd_noise_before.value(), self.vdd_noise_after.value())
    }

    /// Relative ground-noise improvement in percent.
    #[must_use]
    pub fn gnd_improvement_pct(&self) -> f64 {
        improvement_pct(self.gnd_noise_before.value(), self.gnd_noise_after.value())
    }
}

pub(crate) fn improvement_pct(before: f64, after: f64) -> f64 {
    if before.abs() < 1e-12 {
        0.0
    } else {
        (before - after) / before * 100.0
    }
}

/// A zone's lightweight description: everything the partition derives
/// for one zone *except* the sampled option vectors. Specs stay resident
/// for the whole run (a few hundred bytes each) while the heavy vectors
/// live behind [`streaming::ZoneStorage`]'s residency policy.
#[derive(Debug)]
pub(crate) struct ZoneSpec {
    /// The zone's id in the run's partition (the metrics registry keys its
    /// per-zone rows by this).
    pub id: usize,
    /// Indices into `table.sinks` for this zone's sinks.
    pub sinks: Vec<usize>,
    /// The zone's sampling plan.
    pub plan: SamplePlan,
    /// Non-leaf background sampled on the plan.
    pub background: Vec<f64>,
}

impl ZoneSpec {
    /// Partitions a design into zone specs (no vectors sampled yet).
    pub(crate) fn build_specs(
        design: &Design,
        config: &WaveMinConfig,
        table: &NoiseTable,
    ) -> Vec<ZoneSpec> {
        let grid = ZoneGrid::partition(&design.tree, config.zone_pitch);
        let k = config.samples_per_slot();
        // O(1) node -> sink lookup; the linear `sink_index` scan per zone
        // sink made zoning quadratic past ~100k sinks.
        let sink_of: std::collections::HashMap<wavemin_clocktree::NodeId, usize> = table
            .sinks
            .iter()
            .enumerate()
            .map(|(i, s)| (s.node, i))
            .collect();
        // Spatial buckets of non-leaf nodes at the zone pitch: a zone's
        // local-background query (its rect plus a half-pitch margin) only
        // touches the neighboring buckets instead of every non-leaf node.
        let pitch = grid.pitch().value();
        let mut nonleaf_buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
            std::collections::HashMap::new();
        if matches!(config.background, BackgroundMode::LocalZone) {
            for (i, (nid, _)) in table.nonleaf_nodes.iter().enumerate() {
                let loc = design.tree.node(*nid).location;
                let key = (
                    (loc.x.value() / pitch).floor() as i64,
                    (loc.y.value() / pitch).floor() as i64,
                );
                nonleaf_buckets.entry(key).or_default().push(i);
            }
        }
        grid.zones()
            .iter()
            .enumerate()
            .map(|(id, zone)| {
                let sinks: Vec<usize> = zone
                    .sinks
                    .iter()
                    .filter_map(|&n| sink_of.get(&n).copied())
                    .collect();
                let plan = SamplePlan::for_sinks(table, &sinks, k);
                let background = match config.background {
                    BackgroundMode::LocalZone => {
                        // Noise is local: only non-leaf elements near the
                        // zone (one half-pitch margin) compete with its
                        // leaves.
                        let margin = config.zone_pitch.value() * 0.5;
                        let rect = zone.rect(grid.pitch());
                        let rect = wavemin_clocktree::geom::Rect::new(
                            wavemin_clocktree::Point::new(
                                rect.min.x.value() - margin,
                                rect.min.y.value() - margin,
                            ),
                            wavemin_clocktree::Point::new(
                                rect.max.x.value() + margin,
                                rect.max.y.value() + margin,
                            ),
                        );
                        let bx0 = (rect.min.x.value() / pitch).floor() as i64;
                        let bx1 = (rect.max.x.value() / pitch).floor() as i64;
                        let by0 = (rect.min.y.value() / pitch).floor() as i64;
                        let by1 = (rect.max.y.value() / pitch).floor() as i64;
                        let mut local: Vec<usize> = Vec::new();
                        for bx in bx0..=bx1 {
                            for by in by0..=by1 {
                                if let Some(ids) = nonleaf_buckets.get(&(bx, by)) {
                                    local.extend(ids.iter().copied().filter(|&i| {
                                        let nid = table.nonleaf_nodes[i].0;
                                        rect.contains(design.tree.node(nid).location)
                                    }));
                                }
                            }
                        }
                        // Summing in node order keeps the result
                        // bit-identical to the full `nonleaf_within` scan.
                        local.sort_unstable();
                        plan.vector_of(&crate::noise_table::EventWaveforms::sum(
                            local.iter().map(|&i| &table.nonleaf_nodes[i].1),
                        ))
                    }
                    BackgroundMode::Global => plan.vector_of(&table.nonleaf),
                    BackgroundMode::None => vec![0.0; plan.dims()],
                };
                ZoneSpec {
                    id,
                    sinks,
                    plan,
                    background,
                }
            })
            .collect()
    }

    /// Samples this zone's option vectors into a full [`ZoneProblem`].
    /// Deterministic: materializing the same spec twice produces
    /// bit-identical vectors, which is what lets the streaming archive
    /// recompute evicted zones without changing results.
    pub(crate) fn materialize(&self, table: &NoiseTable) -> ZoneProblem {
        let vectors = self
            .sinks
            .iter()
            .map(|&si| {
                table.sinks[si]
                    .options
                    .iter()
                    .map(|o| self.plan.vector_of(&o.waves))
                    .collect()
            })
            .collect();
        ZoneProblem {
            id: self.id,
            sinks: self.sinks.clone(),
            plan: self.plan.clone(),
            background: self.background.clone(),
            vectors,
        }
    }

    /// Bytes this zone's materialized `vectors` occupy while hot
    /// (`Σ options × plan dims × 8`); the streaming feasibility check
    /// sizes the minimal working set from the largest zone's figure.
    pub(crate) fn hot_bytes(&self, table: &NoiseTable) -> usize {
        let options: usize = self
            .sinks
            .iter()
            .map(|&si| table.sinks[si].options.len())
            .sum();
        options * self.plan.dims() * std::mem::size_of::<f64>()
    }

    /// A content hash of everything this zone's solve can depend on
    /// *except* its predecessors' solutions (those enter through the
    /// [`crate::checkpoint::ZoneKeyChain`]): the characterized sink
    /// entries with all candidate waveforms, the sampling plan, and the
    /// sampled background. Node identities are deliberately excluded —
    /// choices are (option index, code) pairs, so two designs whose
    /// characterized zones match bit-for-bit can splice each other's
    /// solutions even if their node numbering differs. This is what makes
    /// an ECO re-solve incremental: untouched zones hash identically and
    /// hit the shared cache.
    pub(crate) fn content_hash(&self, table: &NoiseTable) -> u64 {
        use crate::checkpoint::{fnv1a, step};
        let mut h = fnv1a(b"wavemin-zone-content-v1");
        h = step(h, self.sinks.len() as u64);
        for &si in &self.sinks {
            let e = &table.sinks[si];
            h = step(h, e.input_arrival.value().to_bits());
            h = step(h, matches!(e.input_edge, ClockEdge::Fall) as u64);
            h = step(h, e.load.value().to_bits());
            h = step(h, e.options.len() as u64);
            for o in &e.options {
                h = step(h, fnv1a(o.cell.as_bytes()));
                h = step(h, o.kind as u64);
                h = step(h, o.delay.value().to_bits());
                h = step(h, o.arrival.value().to_bits());
                h = step(h, o.adjust_range.value().to_bits());
                h = step(h, u64::from(o.adjust_steps));
                for (rail, event) in crate::noise_table::EventWaveforms::SLOTS {
                    for (t, i) in o.waves.get(rail, event).breakpoints() {
                        h = step(h, t.value().to_bits());
                        h = step(h, i.value().to_bits());
                    }
                    h = step(h, 0x77); // slot separator
                }
            }
        }
        h = step(h, self.plan.times().len() as u64);
        for &t in self.plan.times() {
            h = step(h, t.value().to_bits());
        }
        h = step(h, u64::from(self.plan.is_degenerate()));
        h = step(h, self.background.len() as u64);
        for &b in &self.background {
            h = step(h, b.to_bits());
        }
        h
    }
}

/// A zone's precomputed sampled noise data, shared by all inner solvers.
#[derive(Debug, Clone)]
pub(crate) struct ZoneProblem {
    /// The zone's id in the run's partition (the metrics registry keys its
    /// per-zone rows by this).
    pub id: usize,
    /// Indices into `table.sinks` for this zone's sinks.
    pub sinks: Vec<usize>,
    /// The zone's sampling plan.
    pub plan: SamplePlan,
    /// Non-leaf background sampled on the plan.
    pub background: Vec<f64>,
    /// `vectors[local sink][option]` — sampled noise vectors (unshifted).
    pub vectors: Vec<Vec<Vec<f64>>>,
}

impl ZoneProblem {
    /// Builds every zone's problem for a noise table (the historical
    /// all-materialized entry point, still used by the comparison
    /// baselines that keep every zone hot).
    pub(crate) fn build_all(
        design: &Design,
        config: &WaveMinConfig,
        table: &NoiseTable,
    ) -> Vec<ZoneProblem> {
        ZoneSpec::build_specs(design, config, table)
            .iter()
            .map(|s| s.materialize(table))
            .collect()
    }

    /// The sampled vector of one option, delay-shifted when a nonzero
    /// adjustable code applies.
    pub(crate) fn option_vector(
        &self,
        table: &NoiseTable,
        local: usize,
        option: usize,
        code: Picoseconds,
    ) -> Vec<f64> {
        if code == Picoseconds::ZERO {
            self.vectors[local][option].clone()
        } else {
            let o = &table.sinks[self.sinks[local]].options[option];
            self.plan.vector_of(&o.waves.shifted(code))
        }
    }
}

/// One zone's solution: the chosen option (and delay code) per local sink,
/// plus the min–max objective value including the background.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ZoneSolution {
    pub choices: Vec<(usize, Picoseconds)>,
    pub cost: f64,
}

/// An inner solver assigns one zone's sinks inside one interval. `extra`
/// carries the accumulated noise of zones already assigned in this
/// interval (the paper optimizes zones "one by one"). Solvers must be
/// `Sync`: independent intervals are solved concurrently on a worker
/// pool, all through one shared solver instance.
pub(crate) trait ZoneSolver: Sync {
    fn solve_zone(
        &self,
        table: &NoiseTable,
        zone: &ZoneProblem,
        interval: &FeasibleInterval,
        extra: &crate::noise_table::BackgroundAccumulator,
    ) -> Result<ZoneSolution, WaveMinError>;

    /// The containment layer's one retry after [`Self::solve_zone`]
    /// faulted: solve the same zone on the cheapest rung available,
    /// injection-free. The default just retries the normal solve.
    fn salvage_zone(
        &self,
        table: &NoiseTable,
        zone: &ZoneProblem,
        interval: &FeasibleInterval,
        extra: &crate::noise_table::BackgroundAccumulator,
    ) -> Result<ZoneSolution, WaveMinError> {
        self.solve_zone(table, zone, interval, extra)
    }

    /// Notification that `zone`'s solve faulted (before the salvage
    /// retry); solvers record it in their own degradation bookkeeping.
    fn note_zone_fault(&self, _zone: usize, _payload: &str) {}

    /// Notification that `zone`'s salvage retry produced a usable result.
    fn note_zone_salvaged(&self, _zone: usize) {}
}

/// The shared interval-based optimization skeleton.
///
/// Setting the `WAVEMIN_DEBUG` environment variable prints each ranked
/// candidate's exact re-validated skew to stderr (a diagnosis aid for
/// window-margin tuning).
pub(crate) fn run_interval_framework<S: ZoneSolver>(
    design: &Design,
    config: &WaveMinConfig,
    solver: &S,
    registry: &MetricsRegistry,
) -> Result<Outcome, WaveMinError> {
    run_interval_framework_traced(
        design,
        config,
        solver,
        registry,
        &TraceJournal::disabled(),
        &crate::observe::ProgressTracker::disabled(),
    )
}

/// Everything the interval framework derives from a design before any
/// zone is solved: the characterized noise table, the feasible intervals,
/// the zone partition with solve order, and each zone's content hash.
/// Holding one of these resident is what makes a serve-mode session
/// cheap to re-solve — repeated jobs skip straight to the solve phase.
pub(crate) struct PreparedRun {
    /// The characterized noise table (mode 0).
    pub table: NoiseTable,
    /// The feasible time intervals under the tightened window.
    pub intervals: IntervalSet,
    /// Every zone behind the run's residency policy (materialized up
    /// front, or streamed through a budget-bounded compact archive).
    pub zones: streaming::ZoneStorage,
    /// Zone indices largest-first (the solve order inside each interval).
    pub zone_order: Vec<usize>,
    /// `zone_hashes[zone]` — content hash for cache keying.
    pub zone_hashes: Vec<u64>,
    /// Zones whose sampling plan fell back to a dummy time.
    pub degenerate_zones: usize,
}

/// Characterizes a design into a [`PreparedRun`]: noise table, feasible
/// intervals, zone partition, and per-zone content hashes. This is the
/// session-resident half of the split entry point; [`solve_prepared`] is
/// the repeatable half.
pub(crate) fn characterize_design(
    design: &Design,
    config: &WaveMinConfig,
    registry: &MetricsRegistry,
    journal: &TraceJournal,
) -> Result<PreparedRun, WaveMinError> {
    let mut thandle = journal.handle();
    let char_start = thandle.now_ns();
    let table = {
        let _span = registry.span(Stage::Characterization);
        NoiseTable::build(design, config, 0)?
    };
    thandle.stage_span(char_start, "characterization");
    // Optimize against a slightly tightened window: Observation 4 ignores
    // sibling-load feedback during assignment, so headroom is reserved and
    // the exact bound is checked afterwards.
    let zoning_span = registry.span(Stage::Zoning);
    let zoning_start = thandle.now_ns();
    let kappa_eff = config.skew_bound * config.window_margin;
    let intervals = IntervalSet::generate(&table, kappa_eff, config.max_intervals);
    if intervals.is_empty() {
        return Err(WaveMinError::NoFeasibleInterval);
    }
    let specs = ZoneSpec::build_specs(design, config, &table);
    registry.ensure_zones(specs.len());

    // Zones are processed largest-first so the dominant zones shape the
    // accumulated background the smaller ones then avoid.
    let mut zone_order: Vec<usize> = (0..specs.len()).collect();
    zone_order.sort_by_key(|&z| std::cmp::Reverse(specs[z].sinks.len()));
    let degenerate_zones = specs.iter().filter(|s| s.plan.is_degenerate()).count();
    let zone_hashes: Vec<u64> = specs.iter().map(|s| s.content_hash(&table)).collect();

    let zones = if config.streaming_enabled() {
        let limit = streaming_limit_bytes(config, &specs, &table)?;
        streaming::ZoneStorage::streaming(specs, limit)
    } else {
        streaming::ZoneStorage::materialized(specs, &table)
    };
    thandle.stage_span(zoning_start, "zoning");
    drop(zoning_span);
    registry.sample_rss();
    Ok(PreparedRun {
        table,
        intervals,
        zones,
        zone_order,
        zone_hashes,
        degenerate_zones,
    })
}

/// Translates `--memory-budget-mb` into the compact archive's byte
/// budget, or rejects an infeasible budget with a typed error.
///
/// The budget covers the *whole process*: the archive may only use what
/// remains after the current resident set (characterized table, tree,
/// intervals) plus the transient working set of one acquire — the hot
/// widened zone and its compact copy, bounded by twice the largest
/// zone's hot bytes. A budget below that minimal working set cannot run
/// at any archive size, so it fails up front with
/// [`WaveMinError::MemoryBudget`] instead of thrashing or aborting.
fn streaming_limit_bytes(
    config: &WaveMinConfig,
    specs: &[ZoneSpec],
    table: &NoiseTable,
) -> Result<usize, WaveMinError> {
    const MB: usize = 1 << 20;
    let Some(budget_mb) = config.memory_budget_mb else {
        return Ok(usize::MAX); // streaming without a cap: archive all
    };
    let budget = budget_mb.saturating_mul(MB);
    let baseline = crate::observe::current_rss_bytes().unwrap_or(0) as usize;
    let max_hot = specs.iter().map(|s| s.hot_bytes(table)).max().unwrap_or(0);
    // Slack for resident memory the archive ledger cannot see: zone
    // widen/solve churn leaves freed chunks retained by the allocator,
    // and the interval loop holds accumulated backgrounds and per-
    // interval results. Reserved up front so the end-of-solve RSS stays
    // under the budget rather than just the archive's own bytes.
    let slack = 16 * MB + budget / 8;
    let required = baseline.saturating_add(2 * max_hot).saturating_add(slack);
    if budget < required.saturating_add(MB) {
        return Err(WaveMinError::MemoryBudget {
            budget_mb,
            required_mb: required / MB + 2,
        });
    }
    Ok(budget - required)
}

/// [`run_interval_framework`] with an event journal attached: the driving
/// thread's characterization / zoning / validation stages become journal
/// spans alongside the registry's aggregates (zone-level and solver-level
/// events come from the inner solver's own journal wiring).
pub(crate) fn run_interval_framework_traced<S: ZoneSolver>(
    design: &Design,
    config: &WaveMinConfig,
    solver: &S,
    registry: &MetricsRegistry,
    journal: &TraceJournal,
    progress: &crate::observe::ProgressTracker,
) -> Result<Outcome, WaveMinError> {
    let prep = characterize_design(design, config, registry, journal)?;
    // The per-zone checkpoint journal, when the config asks for one. Keys
    // chain through every predecessor zone's content and solution, so a
    // hit is reusable bit-for-bit (see `crate::checkpoint`).
    let checkpoint = match &config.checkpoint_path {
        Some(path) => {
            let fingerprint = crate::checkpoint::design_fingerprint(design, config)?;
            Some(crate::checkpoint::CheckpointJournal::open(
                path,
                fingerprint,
                config.resume,
            )?)
        }
        None => None,
    };
    let store = checkpoint
        .as_ref()
        .map(|j| j as &dyn crate::checkpoint::ZoneStore);
    let seed = store
        .is_some()
        .then(|| crate::checkpoint::config_fingerprint(config))
        .transpose()?;
    solve_prepared(
        design, config, &prep, solver, registry, journal, store, seed, progress,
    )
}

/// Solves a [`PreparedRun`]: fans the feasible intervals over the worker
/// pool, chains zones through the accumulated background inside each
/// interval, validates exact skew, and assembles the [`Outcome`]. With a
/// [`crate::checkpoint::ZoneStore`] attached (checkpoint journal or the
/// serve-mode [`crate::checkpoint::ZoneCache`]), zones whose chain key
/// hits are spliced bit-for-bit and counted as `zones_reused`; `seed`
/// starts every interval's key chain and must capture the solver config
/// (see [`crate::checkpoint::config_fingerprint`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_prepared<S: ZoneSolver>(
    design: &Design,
    config: &WaveMinConfig,
    prep: &PreparedRun,
    solver: &S,
    registry: &MetricsRegistry,
    journal: &TraceJournal,
    store: Option<&dyn crate::checkpoint::ZoneStore>,
    seed: Option<u64>,
    progress: &crate::observe::ProgressTracker,
) -> Result<Outcome, WaveMinError> {
    let mut thandle = journal.handle();
    let start = std::time::Instant::now();
    let table = &prep.table;
    let intervals = &prep.intervals;
    let zones = &prep.zones;
    let zone_order = &prep.zone_order;
    let degenerate_zones = prep.degenerate_zones;
    registry.sample_rss();
    // Progress ticker for the whole solve (observation only — it never
    // feeds back into solver state, keeping enabled ≡ disabled runs
    // bit-identical). Each tick also folds an RSS sample into the peak
    // gauge so transient spikes between phase checkpoints are seen.
    let _progress_guard = progress.begin((intervals.len() * zone_order.len()) as u64, registry);

    // Zones that faulted and were salvaged, across all intervals.
    let faulted = std::sync::Mutex::new(std::collections::BTreeSet::new());

    // Solve one zone with fault containment: a panic (or an injected
    // fault surfacing as `ZoneFault`) is noted, then retried once through
    // the solver's salvage path. A second failure makes the whole
    // interval a fault — handled at ranking like an infeasible one as
    // long as some interval survives.
    let contained_solve = |zi: usize,
                           zone: &ZoneProblem,
                           interval: &FeasibleInterval,
                           accumulated: &crate::noise_table::BackgroundAccumulator|
     -> Result<ZoneSolution, WaveMinError> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let first = catch_unwind(AssertUnwindSafe(|| {
            solver.solve_zone(table, zone, interval, accumulated)
        }));
        let payload = match first {
            Ok(Ok(sol)) => return Ok(sol),
            Ok(Err(WaveMinError::ZoneFault { payload, .. })) => payload,
            Ok(Err(e)) => return Err(e),
            Err(p) => crate::parallel::panic_payload(p.as_ref()),
        };
        solver.note_zone_fault(zi, &payload);
        registry.record_zone_fault();
        if let Ok(mut g) = faulted.lock() {
            g.insert(zi);
        }
        let retry = catch_unwind(AssertUnwindSafe(|| {
            solver.salvage_zone(table, zone, interval, accumulated)
        }));
        match retry {
            Ok(Ok(sol)) => {
                solver.note_zone_salvaged(zi);
                registry.record_zone_salvage();
                Ok(sol)
            }
            Ok(Err(e)) => Err(WaveMinError::ZoneFault {
                zone: zi,
                payload: format!("{payload}; salvage failed: {e}"),
            }),
            Err(p) => Err(WaveMinError::ZoneFault {
                zone: zi,
                payload: format!(
                    "{payload}; salvage panicked: {}",
                    crate::parallel::panic_payload(p.as_ref())
                ),
            }),
        }
    };

    // Solve every interval. Intervals are independent — zones inside one
    // interval chain through the accumulated background and stay
    // sequential — so the intervals fan out over the worker pool and come
    // back in input order (bit-identical to a sequential run).
    let solve_interval =
        |interval: &FeasibleInterval| -> Result<Option<(f64, Assignment)>, WaveMinError> {
            let mut cost = 0.0_f64;
            let mut assignment = Assignment::new();
            let mut accumulated = crate::noise_table::BackgroundAccumulator::zero();
            let mut chain =
                seed.map(|s| crate::checkpoint::ZoneKeyChain::new(s, interval.t_lo, interval.t_hi));
            for &zi in zone_order {
                let key = chain.as_ref().map(|c| c.key_for(prep.zone_hashes[zi]));
                let acquired = match (store, key) {
                    (Some(s), Some(k)) => Some(s.acquire(k)),
                    _ => None,
                };
                let sol = match acquired {
                    Some(crate::checkpoint::StoreAcquire::Hit(hit)) => {
                        // Splicing a checkpointed solution needs only the
                        // zone's spec: the vectors stay cold.
                        registry.record_zone_reused();
                        ZoneSolution {
                            choices: hit.choices_ps(),
                            cost: hit.cost(),
                        }
                    }
                    other => {
                        // Miss (or no store): solve here. The reservation,
                        // if any, marks the key in flight for concurrent
                        // jobs; it is released on every exit path, and a
                        // successful record resolves it to a hit.
                        let _reservation = match other {
                            Some(crate::checkpoint::StoreAcquire::Solve(r)) => r,
                            _ => None,
                        };
                        // The hot zone (and the solver's Pareto tables)
                        // lives only for this solve; it drops at the end
                        // of the match arm.
                        let zone = zones.acquire(zi, table, registry);
                        match contained_solve(zi, &zone, interval, &accumulated) {
                            Ok(sol) => {
                                if let (Some(s), Some(k)) = (store, key) {
                                    s.record(k, sol.cost.to_bits(), &sol.choices)?;
                                }
                                sol
                            }
                            Err(WaveMinError::NoFeasibleInterval) => return Ok(None),
                            Err(e) => return Err(e),
                        }
                    }
                };
                if let Some(c) = chain.as_mut() {
                    c.absorb(prep.zone_hashes[zi], sol.cost.to_bits(), &sol.choices);
                }
                progress.zone_done();
                cost = cost.max(sol.cost);
                let spec = zones.spec(zi);
                for (local, &(opt, code)) in sol.choices.iter().enumerate() {
                    let si = spec.sinks[local];
                    let entry = &table.sinks[si];
                    let option = &entry.options[opt];
                    assignment.set(entry.node, option.cell.clone());
                    if code > Picoseconds::ZERO {
                        assignment.set_delay_code(0, entry.node, code);
                        accumulated.push(&option.waves.shifted(code));
                    } else {
                        accumulated.push(&option.waves);
                    }
                }
            }
            registry.sample_rss();
            Ok(Some((cost, assignment)))
        };
    let solved = crate::parallel::map_ordered(
        intervals.intervals(),
        config.effective_threads(),
        |_, interval| solve_interval(interval),
    );
    registry.sample_solve_rss();
    let mut ranked: Vec<(f64, Assignment)> = Vec::new();
    let mut fault: Option<WaveMinError> = None;
    for result in solved {
        match result {
            Ok(Some(pair)) => ranked.push(pair),
            Ok(None) => {}
            // An uncontainable zone fault drops its interval from the
            // ranking; only if *every* interval is lost does it become
            // the run's error.
            Err(e @ WaveMinError::ZoneFault { .. }) => {
                if fault.is_none() {
                    fault = Some(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    if ranked.is_empty() {
        return Err(match fault {
            Some(e) => e,
            None => WaveMinError::NoFeasibleInterval,
        });
    }
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    let intervals_tried = intervals.len();
    let runtime = start.elapsed();

    // Validate with exact timing (Observation 4 ignores sibling-load
    // feedback, so re-check against the true bound); fall back to the
    // next-best interval, then to the identity assignment.
    let _validation_span = registry.span(Stage::Validation);
    let validation_start = thandle.now_ns();
    let mut chosen: Option<Outcome> = None;
    for (cost, assignment) in &ranked {
        let mut candidate = design.clone();
        assignment.apply_to(&mut candidate);
        let skew = candidate.max_skew()?;
        if std::env::var_os("WAVEMIN_DEBUG").is_some() {
            eprintln!("candidate cost {cost:.1} -> exact skew {skew}");
        }
        if skew.value() <= config.skew_bound.value() + 1e-9 {
            chosen = Some(finish_outcome(
                design,
                &candidate,
                assignment.clone(),
                *cost,
                intervals_tried,
                runtime,
            )?);
            break;
        }
    }
    let mut out = match chosen {
        Some(out) => out,
        // Identity fallback: keep the tree as-is.
        None => finish_outcome(
            design,
            design,
            Assignment::new(),
            f64::NAN,
            intervals_tried,
            runtime,
        )?,
    };
    out.degenerate_zones = degenerate_zones;
    out.faulted_zones = match faulted.lock() {
        Ok(g) => g.iter().copied().collect(),
        Err(poisoned) => poisoned.into_inner().iter().copied().collect(),
    };
    thandle.stage_span(validation_start, "validation");
    registry.sample_rss();
    Ok(out)
}

/// Evaluates before/after and assembles the [`Outcome`].
pub(crate) fn finish_outcome(
    before: &Design,
    after: &Design,
    assignment: Assignment,
    estimated_cost: f64,
    intervals_tried: usize,
    runtime: Duration,
) -> Result<Outcome, WaveMinError> {
    let eval_before = NoiseEvaluator::new(before);
    let eval_after = NoiseEvaluator::new(after);
    let mut out = Outcome {
        assignment,
        peak_before: MilliAmps::ZERO,
        peak_after: MilliAmps::ZERO,
        vdd_noise_before: Millivolts::ZERO,
        vdd_noise_after: Millivolts::ZERO,
        gnd_noise_before: Millivolts::ZERO,
        gnd_noise_after: Millivolts::ZERO,
        skew_before: Picoseconds::ZERO,
        skew_after: Picoseconds::ZERO,
        estimated_cost,
        intervals_tried,
        adb_count: count_kind(after, CellKind::Adb),
        adi_count: count_kind(after, CellKind::Adi),
        runtime,
        degradation: None,
        degenerate_zones: 0,
        report: None,
        faulted_zones: Vec::new(),
    };
    for mode in 0..before.mode_count() {
        let rb = eval_before.evaluate(mode)?;
        out.peak_before = out.peak_before.max(rb.peak);
        out.vdd_noise_before = out.vdd_noise_before.max(rb.vdd_noise);
        out.gnd_noise_before = out.gnd_noise_before.max(rb.gnd_noise);
        out.skew_before = out.skew_before.max(rb.skew);
    }
    for mode in 0..after.mode_count() {
        let ra = eval_after.evaluate(mode)?;
        out.peak_after = out.peak_after.max(ra.peak);
        out.vdd_noise_after = out.vdd_noise_after.max(ra.vdd_noise);
        out.gnd_noise_after = out.gnd_noise_after.max(ra.gnd_noise);
        out.skew_after = out.skew_after.max(ra.skew);
    }
    Ok(out)
}

/// Counts the tree's cells of one kind.
pub(crate) fn count_kind(design: &Design, kind: CellKind) -> usize {
    design
        .tree
        .iter()
        .filter(|(_, n)| design.lib.get(&n.cell).is_some_and(|c| c.kind() == kind))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_percentage() {
        assert!((improvement_pct(100.0, 80.0) - 20.0).abs() < 1e-12);
        assert!((improvement_pct(100.0, 120.0) + 20.0).abs() < 1e-12);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn outcome_improvements_are_consistent() {
        let o = Outcome {
            assignment: Assignment::new(),
            peak_before: MilliAmps::new(10.0),
            peak_after: MilliAmps::new(8.0),
            vdd_noise_before: Millivolts::new(5.0),
            vdd_noise_after: Millivolts::new(4.0),
            gnd_noise_before: Millivolts::new(5.0),
            gnd_noise_after: Millivolts::new(6.0),
            skew_before: Picoseconds::ZERO,
            skew_after: Picoseconds::ZERO,
            estimated_cost: 0.0,
            intervals_tried: 0,
            adb_count: 0,
            adi_count: 0,
            runtime: Duration::ZERO,
            degradation: None,
            degenerate_zones: 0,
            report: None,
            faulted_zones: Vec::new(),
        };
        assert!((o.peak_improvement_pct() - 20.0).abs() < 1e-9);
        assert!((o.vdd_improvement_pct() - 20.0).abs() < 1e-9);
        assert!(o.gnd_improvement_pct() < 0.0);
    }
}
