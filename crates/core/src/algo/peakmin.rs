//! ClkPeakMin: the baseline of Jang et al. [27].
//!
//! PeakMin scores an assignment by only two aggregate numbers — the summed
//! standalone peak of all positive-polarity cells and of all
//! negative-polarity cells — and minimizes the larger one (Problem 3).
//! It is exactly WaveMin restricted to |S| = 2, so it inherits the same
//! feasible-interval framework. The per-zone subproblem is the classic
//! two-way balance: solved exactly here by dynamic programming over
//! reachable buffer-sum values (the paper's Knapsack formulation).

use crate::algo::{run_interval_framework, Outcome, ZoneProblem, ZoneSolution, ZoneSolver};
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use crate::intervals::FeasibleInterval;
use crate::noise_table::NoiseTable;
use crate::observe::{MetricsRegistry, ReportContext, ZoneSolveRecord};
use std::collections::HashMap;
use wavemin_cells::units::Picoseconds;
use wavemin_cells::Polarity;
use wavemin_mosp::SolveStats;

/// The ClkPeakMin baseline optimizer.
///
/// # Example
///
/// ```
/// use wavemin::prelude::*;
///
/// let design = Design::from_benchmark(&Benchmark::s15850(), 7);
/// let base = ClkPeakMin::new(WaveMinConfig::default()).run(&design)?;
/// assert!(base.skew_after.value() <= 21.5);
/// # Ok::<(), WaveMinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClkPeakMin {
    config: WaveMinConfig,
}

impl ClkPeakMin {
    /// Creates the baseline with the given configuration (the sample count
    /// is ignored — PeakMin always uses its two aggregate values).
    #[must_use]
    pub fn new(config: WaveMinConfig) -> Self {
        Self { config }
    }

    /// Optimizes a single-power-mode design.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::algo::ClkWaveMin::run`].
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        let registry = MetricsRegistry::from_config(&self.config);
        let solver = BalanceZoneSolver {
            registry: registry.clone(),
        };
        let mut out = run_interval_framework(design, &self.config, &solver, &registry)?;
        out.report = registry.report(&ReportContext {
            threads: self.config.effective_threads(),
            degenerate_zones: out.degenerate_zones,
            ladder_rung: 0,
            budget_units: 0,
            kernel: wavemin_mosp::kernels::active().name(),
        });
        Ok(out)
    }
}

/// Exact two-way balance DP per zone.
struct BalanceZoneSolver {
    registry: MetricsRegistry,
}

/// Peak resolution of the pseudo-polynomial DP (µA).
const RESOLUTION: f64 = 0.5;

impl ZoneSolver for BalanceZoneSolver {
    fn solve_zone(
        &self,
        table: &NoiseTable,
        zone: &ZoneProblem,
        interval: &FeasibleInterval,
        _extra: &crate::noise_table::BackgroundAccumulator,
    ) -> Result<ZoneSolution, WaveMinError> {
        // PeakMin is deliberately oblivious to other zones and to the
        // non-leaf background — that is the limitation WaveMin fixes.
        let started = self.registry.is_enabled().then(std::time::Instant::now);
        let mut work = 0_u64;
        let rows = zone.sinks.len();
        let allowed = interval.allowed_for(&zone.sinks);
        // Candidate tuples: (option, code, polarity, standalone peak).
        let mut candidates: Vec<Vec<(usize, Picoseconds, Polarity, f64)>> =
            Vec::with_capacity(rows);
        for (local, opts) in allowed.iter().enumerate() {
            let mut row = Vec::new();
            for &opt in opts.iter() {
                let si = zone.sinks[local];
                let o = &table.sinks[si].options[opt];
                if let Some(code) = o.delay_code_for(interval.t_lo, interval.t_hi) {
                    row.push((opt, code, o.kind.polarity(), o.waves.peak().value()));
                }
            }
            if row.is_empty() {
                return Err(WaveMinError::NoFeasibleInterval);
            }
            candidates.push(row);
        }

        // DP over sinks: buffer-sum (quantized) -> (min inverter-sum,
        // backtrace). Positive polarity adds to the buffer sum.
        type State = HashMap<i64, (f64, Vec<usize>)>;
        let mut state: State = HashMap::from([(0, (0.0, Vec::new()))]);
        for row in &candidates {
            let mut next: State = HashMap::new();
            for (&bufq, (invsum, trace)) in &state {
                for (ci, &(_, _, pol, peak)) in row.iter().enumerate() {
                    work += 1;
                    let (nb, ni) = match pol {
                        Polarity::Positive => (bufq + (peak / RESOLUTION).round() as i64, *invsum),
                        Polarity::Negative => (bufq, invsum + peak),
                    };
                    let entry = next.entry(nb).or_insert((f64::INFINITY, Vec::new()));
                    if ni < entry.0 {
                        let mut t = trace.clone();
                        t.push(ci);
                        *entry = (ni, t);
                    }
                }
            }
            state = next;
        }

        let (best_cost, best_trace) = state
            .into_iter()
            .map(|(bufq, (inv, trace))| {
                let buf = bufq as f64 * RESOLUTION;
                (buf.max(inv), trace)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .ok_or(WaveMinError::NoFeasibleInterval)?;

        let choices = best_trace
            .iter()
            .enumerate()
            .map(|(row, &ci)| {
                let (opt, code, _, _) = candidates[row][ci];
                (opt, code)
            })
            .collect();
        if let Some(started) = started {
            self.registry.record_zone_solve(
                zone.id,
                &ZoneSolveRecord {
                    stats: SolveStats {
                        labels_created: rows as u64,
                        labels_pruned: 0,
                        work,
                        front_size: 1,
                        dominance_checks: 0,
                        dominance_skipped: 0,
                    },
                    exhausted: false,
                    arena_arcs: 0,
                    arena_unique_weights: 0,
                    wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                },
            );
        }
        Ok(ZoneSolution {
            choices,
            cost: best_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn small_design() -> Design {
        Design::from_benchmark(&Benchmark::s15850(), 7)
    }

    #[test]
    fn baseline_runs_and_respects_skew() {
        let d = small_design();
        let cfg = WaveMinConfig::default();
        let out = ClkPeakMin::new(cfg.clone()).run(&d).unwrap();
        assert!(out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9);
        assert!(out.peak_after.value() > 0.0);
    }

    #[test]
    fn baseline_balances_polarities() {
        // Needs multi-sink zones; 1-sink zones legitimately pick the
        // lower-peak inverter.
        let d = Design::from_benchmark(&Benchmark::s13207(), 1);
        let cfg = WaveMinConfig {
            max_intervals: Some(6),
            ..WaveMinConfig::default()
        };
        let out = ClkPeakMin::new(cfg).run(&d).unwrap();
        let (pos, neg) = out.assignment.polarity_counts(&d);
        assert!(pos > 0 && neg > 0, "balance DP should split polarities");
    }

    #[test]
    fn wavemin_is_at_least_as_good_as_peakmin() {
        // Table V shape: fine-grained estimation finds equal-or-lower
        // true peak (allow small eval slack on a tiny circuit).
        let d = small_design();
        let cfg = WaveMinConfig::default();
        let wave = ClkWaveMin::new(cfg.clone()).run(&d).unwrap();
        let peak = ClkPeakMin::new(cfg).run(&d).unwrap();
        assert!(
            wave.peak_after.value() <= peak.peak_after.value() * 1.1,
            "WaveMin {} should not lose badly to PeakMin {}",
            wave.peak_after,
            peak.peak_after
        );
    }

    #[test]
    fn balance_dp_splits_even_instance() {
        // Four identical sinks with a buffer (peak 10 on +) and inverter
        // (peak 10 on −) option: optimum is a 2/2 split with cost 20.
        use crate::intervals::IntervalSet;
        let d = small_design();
        let cfg = WaveMinConfig::default();
        let table = NoiseTable::build(&d, &cfg, 0).unwrap();
        let intervals = IntervalSet::generate(&table, cfg.skew_bound, Some(1));
        let zones = ZoneProblem::build_all(&d, &cfg, &table);
        let solver = BalanceZoneSolver {
            registry: MetricsRegistry::disabled(),
        };
        let interval = &intervals.intervals()[0];
        for zone in &zones {
            let sol = solver
                .solve_zone(
                    &table,
                    zone,
                    interval,
                    &crate::noise_table::BackgroundAccumulator::zero(),
                )
                .unwrap();
            // The zone cost can never exceed assigning everything to one
            // polarity.
            let worst_one_sided: f64 = zone
                .sinks
                .iter()
                .map(|&si| {
                    table.sinks[si]
                        .options
                        .iter()
                        .map(|o| o.waves.peak().value())
                        .fold(0.0, f64::max)
                })
                .sum();
            assert!(sol.cost <= worst_one_sided + 1e-6);
        }
    }
}
