//! Placement-balanced polarity baseline (Samanta et al. [23]).
//!
//! Uses physical placement so that in every local region about half the
//! buffering elements take each polarity — but ignores the delay
//! difference between buffers and inverters, so it can stretch the clock
//! skew (the weakness WaveMin's feasible intervals fix).

use crate::algo::{finish_outcome, Outcome};
use crate::assignment::Assignment;
use crate::design::Design;
use crate::error::WaveMinError;
use wavemin_cells::units::Microns;
use wavemin_cells::CellKind;
use wavemin_clocktree::ZoneGrid;

/// The placement-balanced baseline.
///
/// # Example
///
/// ```
/// use wavemin::prelude::*;
///
/// let design = Design::from_benchmark(&Benchmark::s15850(), 7);
/// let out = SamantaBalanced::new(Microns::new(50.0)).run(&design)?;
/// assert!(out.peak_after.value() < out.peak_before.value());
/// # use wavemin_cells::units::Microns;
/// # Ok::<(), WaveMinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SamantaBalanced {
    zone_pitch: Microns,
}

impl SamantaBalanced {
    /// Creates the baseline with the given local-region pitch.
    #[must_use]
    pub fn new(zone_pitch: Microns) -> Self {
        Self { zone_pitch }
    }

    /// Assigns alternating polarities within each placement zone
    /// (x-then-y order), swapping buffers for same-drive inverters.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        let start = std::time::Instant::now();
        let grid = ZoneGrid::partition(&design.tree, self.zone_pitch);
        let mut assignment = Assignment::new();
        for zone in grid.zones() {
            let mut sinks = zone.sinks.clone();
            sinks.sort_by(|&a, &b| {
                let pa = design.tree.node(a).location;
                let pb = design.tree.node(b).location;
                pa.x.value()
                    .total_cmp(&pb.x.value())
                    .then(pa.y.value().total_cmp(&pb.y.value()))
            });
            for (i, &sink) in sinks.iter().enumerate() {
                if i % 2 == 1 {
                    let cell = &design.tree.node(sink).cell;
                    if let Some(spec) = design.lib.get(cell) {
                        if spec.kind() == CellKind::Buffer {
                            assignment.set(sink, format!("INV_X{}", spec.drive()));
                        }
                    }
                }
            }
        }
        let runtime = start.elapsed();
        let mut after = design.clone();
        assignment.apply_to(&mut after);
        finish_outcome(design, &after, assignment, f64::NAN, 0, runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn balances_within_zones() {
        let d = Design::from_benchmark(&Benchmark::s13207(), 3);
        let out = SamantaBalanced::new(Microns::new(50.0)).run(&d).unwrap();
        let (_, neg) = out.assignment.polarity_counts(&d);
        let total = d.leaves().len();
        let frac = neg as f64 / total as f64;
        assert!((0.2..=0.6).contains(&frac), "inverter fraction {frac}");
    }

    #[test]
    fn reduces_peak_but_ignores_skew() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 7);
        let out = SamantaBalanced::new(Microns::new(50.0)).run(&d).unwrap();
        assert!(out.peak_after.value() < out.peak_before.value());
        // Delay-unaware: the skew after is whatever the swaps produce;
        // with X8 buffers vs X8 inverters the gap is nonzero.
        assert!(out.skew_after.value() > out.skew_before.value());
    }
}
