//! Non-leaf polarity assignment — the extension direction of Lu & Taskin
//! [28], cited by the paper as reducing peak noise a further ~5 % by
//! letting *internal* buffering elements flip polarity too (at some skew
//! expense).
//!
//! The optimizer runs the regular leaf-level ClkWaveMin first, then walks
//! the internal nodes greedily: flipping an internal buffer to the
//! same-drive inverter inverts its whole subtree's effective polarity and
//! shifts its arrivals slightly; a flip is kept when the fine-grained
//! evaluated peak improves and the exact skew stays within the (possibly
//! relaxed) bound.

use crate::algo::{finish_outcome, ClkWaveMin, Outcome};
use crate::assignment::Assignment;
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use crate::eval::NoiseEvaluator;
use wavemin_cells::units::MilliAmps;
use wavemin_cells::CellKind;

/// Leaf ClkWaveMin plus greedy non-leaf polarity flips.
///
/// # Example
///
/// ```
/// use wavemin::prelude::*;
/// use wavemin::algo::NonLeafPolarity;
///
/// let design = Design::from_benchmark(&Benchmark::s15850(), 7);
/// let mut cfg = WaveMinConfig::default().with_sample_count(16);
/// cfg.max_intervals = Some(4);
/// let out = NonLeafPolarity::new(cfg, 1.5).run(&design)?;
/// assert!(out.peak_after.value() <= out.peak_before.value() + 1e-9);
/// # Ok::<(), WaveMinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NonLeafPolarity {
    config: WaveMinConfig,
    /// Skew relaxation factor: internal flips may stretch the skew up to
    /// `skew_bound × relax` (the [28] trade-off; 1.0 = no relaxation).
    relax: f64,
}

impl NonLeafPolarity {
    /// Creates the optimizer; `relax >= 1.0` scales the skew bound the
    /// internal flips are allowed to use.
    #[must_use]
    pub fn new(config: WaveMinConfig, relax: f64) -> Self {
        Self {
            config,
            relax: relax.max(1.0),
        }
    }

    /// Runs leaf-level ClkWaveMin, then the greedy non-leaf pass.
    ///
    /// # Errors
    ///
    /// Same contract as [`ClkWaveMin::run`].
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        let start = std::time::Instant::now();
        let leaf_outcome = ClkWaveMin::new(self.config.clone()).run(design)?;
        let mut working = design.clone();
        leaf_outcome.assignment.apply_to(&mut working);

        let skew_limit = self.config.skew_bound.value() * self.relax;
        let mut best_peak = worst_mode_peak(&working)?;
        let mut assignment = leaf_outcome.assignment.clone();
        let mut flips = 0usize;

        // Deepest internals first: their subtrees are smallest, so early
        // flips perturb the least while the big top-level flips are judged
        // against an already-improved baseline.
        let mut internals: Vec<_> = working
            .tree
            .non_leaves()
            .into_iter()
            .filter(|&id| id != working.tree.root())
            .collect();
        internals.sort_by_key(|&id| std::cmp::Reverse(depth(&working, id)));

        for node in internals {
            let cell_name = working.tree.node(node).cell.clone();
            let Some(spec) = working.lib.get(&cell_name) else {
                continue;
            };
            let flipped = match spec.kind() {
                CellKind::Buffer => format!("INV_X{}", spec.drive()),
                CellKind::Inverter => format!("BUF_X{}", spec.drive()),
                // Adjustable internals must keep their delay tuning role.
                CellKind::Adb | CellKind::Adi => continue,
            };
            if working.lib.get(&flipped).is_none() {
                continue;
            }
            working.tree.set_cell(node, &flipped);
            let skew = working.max_skew()?;
            let peak = if skew.value() <= skew_limit + 1e-9 {
                worst_mode_peak(&working)?
            } else {
                MilliAmps::new(f64::INFINITY)
            };
            if peak < best_peak {
                best_peak = peak;
                assignment.set(node, flipped);
                flips += 1;
            } else {
                // Revert.
                working.tree.set_cell(node, &cell_name);
            }
        }
        let runtime = start.elapsed();
        let _ = flips;

        finish_outcome(
            design,
            &working,
            assignment,
            leaf_outcome.estimated_cost,
            leaf_outcome.intervals_tried,
            runtime,
        )
    }

    /// Number of internal nodes whose polarity differs from the original
    /// design after `assignment` (a convenience for reporting).
    #[must_use]
    pub fn internal_flip_count(design: &Design, assignment: &Assignment) -> usize {
        let leaves: std::collections::BTreeSet<_> = design.tree.leaves().into_iter().collect();
        assignment
            .cells
            .keys()
            .filter(|n| !leaves.contains(n))
            .count()
    }
}

fn worst_mode_peak(design: &Design) -> Result<MilliAmps, WaveMinError> {
    let eval = NoiseEvaluator::new(design);
    let mut worst = MilliAmps::ZERO;
    for m in 0..design.mode_count() {
        worst = worst.max(eval.evaluate(m)?.peak);
    }
    Ok(worst)
}

fn depth(design: &Design, node: wavemin_clocktree::NodeId) -> usize {
    let mut d = 0;
    let mut cur = node;
    while let Some(p) = design.tree.node(cur).parent() {
        d += 1;
        cur = p;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn quick_config() -> WaveMinConfig {
        let mut cfg = WaveMinConfig::default().with_sample_count(16);
        cfg.max_intervals = Some(4);
        cfg
    }

    #[test]
    fn never_worse_than_leaf_only() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 7);
        let leaf = ClkWaveMin::new(quick_config()).run(&d).unwrap();
        let ext = NonLeafPolarity::new(quick_config(), 1.5).run(&d).unwrap();
        assert!(
            ext.peak_after.value() <= leaf.peak_after.value() + 1e-9,
            "extension {} vs leaf-only {}",
            ext.peak_after,
            leaf.peak_after
        );
    }

    #[test]
    fn respects_relaxed_skew_limit() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 7);
        let cfg = quick_config();
        let relax = 1.5;
        let out = NonLeafPolarity::new(cfg.clone(), relax).run(&d).unwrap();
        assert!(
            out.skew_after.value() <= cfg.skew_bound.value() * relax + 1e-9,
            "skew {}",
            out.skew_after
        );
    }

    #[test]
    fn no_relaxation_means_paper_bound() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 7);
        let cfg = quick_config();
        let out = NonLeafPolarity::new(cfg.clone(), 0.5).run(&d).unwrap();
        // relax clamps to >= 1.0
        assert!(out.skew_after.value() <= cfg.skew_bound.value() + 1e-9);
    }

    #[test]
    fn flipped_internals_appear_in_assignment() {
        let d = Design::from_benchmark(&Benchmark::s13207(), 3);
        let out = NonLeafPolarity::new(quick_config(), 2.0).run(&d).unwrap();
        // Any non-leaf entries must reference real library cells.
        for (node, cell) in &out.assignment.cells {
            assert!(d.lib.get(cell).is_some());
            let _ = node;
        }
    }
}
