//! Global brute-force reference: enumerate *every* assignment of a tiny
//! design, evaluate each with the exact fine-grained evaluator, and keep
//! the true optimum under the skew bound.
//!
//! Exponential in the sink count — usable up to roughly ten sinks — but it
//! is the ground truth the heuristics are validated against (WaveMin is
//! NP-complete; any polynomial algorithm can only approximate this).

use crate::algo::{finish_outcome, Outcome};
use crate::assignment::Assignment;
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use crate::eval::NoiseEvaluator;

/// Exhaustive global optimizer (see the module docs).
#[derive(Debug, Clone)]
pub struct ExhaustiveSearch {
    config: WaveMinConfig,
    /// Refuse to enumerate beyond this many assignments.
    budget: u64,
}

impl ExhaustiveSearch {
    /// Creates the reference optimizer with a default budget of 2¹⁶
    /// assignments.
    #[must_use]
    pub fn new(config: WaveMinConfig) -> Self {
        Self {
            config,
            budget: 1 << 16,
        }
    }

    /// Overrides the enumeration budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget.max(1);
        self
    }

    /// Enumerates every assignment; returns the evaluated optimum.
    ///
    /// # Errors
    ///
    /// [`WaveMinError::InvalidConfig`] when the search space exceeds the
    /// budget; [`WaveMinError::NoFeasibleInterval`] when nothing satisfies
    /// the skew bound; evaluation errors otherwise.
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        let start = std::time::Instant::now();
        let leaves = design.leaves();
        let options = &self.config.assignment_cells;
        let k = options.len() as u64;
        let total = (k as f64).powi(leaves.len() as i32);
        if !total.is_finite() || total > self.budget as f64 {
            return Err(WaveMinError::InvalidConfig(
                "search space exceeds the exhaustive budget",
            ));
        }

        let mut best: Option<(f64, Assignment)> = None;
        let mut working = design.clone();
        let mut counters = vec![0usize; leaves.len()];
        loop {
            // Apply the current combination.
            for (leaf, &c) in leaves.iter().zip(&counters) {
                working.tree.set_cell(*leaf, options[c].clone());
            }
            let eval = NoiseEvaluator::new(&working);
            let report = eval.evaluate(0)?;
            if report.skew.value() <= self.config.skew_bound.value() + 1e-9 {
                let peak = report.peak.value();
                if best.as_ref().is_none_or(|(b, _)| peak < *b) {
                    let mut assignment = Assignment::new();
                    for (leaf, &c) in leaves.iter().zip(&counters) {
                        assignment.set(*leaf, options[c].clone());
                    }
                    best = Some((peak, assignment));
                }
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == counters.len() {
                    // Wrapped: enumeration complete.
                    let (_, assignment) = best.ok_or(WaveMinError::NoFeasibleInterval)?;
                    let runtime = start.elapsed();
                    let mut optimum = design.clone();
                    assignment.apply_to(&mut optimum);
                    return finish_outcome(design, &optimum, assignment, f64::NAN, 0, runtime);
                }
                counters[i] += 1;
                if counters[i] < options.len() {
                    break;
                }
                counters[i] = 0;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use wavemin_cells::units::{Femtofarads, Microns, Picoseconds, Volts};

    /// A 6-sink design small enough for 4^6 = 4096 evaluations.
    fn tiny_design() -> Design {
        let mut tree = ClockTree::new(Point::new(0.0, 0.0), "BUF_X16");
        let a = tree.add_internal(
            tree.root(),
            Point::new(30.0, 10.0),
            "BUF_X8",
            Microns::new(40.0),
        );
        let b = tree.add_internal(
            tree.root(),
            Point::new(30.0, -10.0),
            "BUF_X8",
            Microns::new(40.0),
        );
        for i in 0..3 {
            tree.add_leaf(
                a,
                Point::new(60.0, 5.0 * i as f64),
                "BUF_X8",
                Microns::new(30.0 + 5.0 * i as f64),
                Femtofarads::new(4.0 + i as f64),
            );
            tree.add_leaf(
                b,
                Point::new(60.0, -5.0 * i as f64),
                "BUF_X8",
                Microns::new(30.0 + 5.0 * i as f64),
                Femtofarads::new(4.0 + i as f64),
            );
        }
        Design::new(
            tree,
            CellLibrary::nangate45(),
            PowerDesign::uniform(Volts::new(1.1)),
        )
    }

    fn cfg() -> WaveMinConfig {
        let mut cfg = WaveMinConfig::default()
            .with_sample_count(16)
            .with_skew_bound(Picoseconds::new(25.0));
        cfg.max_intervals = Some(8);
        cfg
    }

    #[test]
    fn finds_a_feasible_optimum() {
        let d = tiny_design();
        let out = ExhaustiveSearch::new(cfg()).run(&d).unwrap();
        assert!(out.skew_after.value() <= 25.0 + 1e-9);
        assert!(out.peak_after <= out.peak_before);
    }

    #[test]
    fn heuristics_stay_close_to_the_true_optimum() {
        // The headline validation: ClkWaveMin lands within 20 % of the
        // exhaustively verified global optimum on a toy instance.
        let d = tiny_design();
        let optimum = ExhaustiveSearch::new(cfg()).run(&d).unwrap();
        let wave = ClkWaveMin::new(cfg()).run(&d).unwrap();
        let ratio = wave.peak_after.value() / optimum.peak_after.value();
        assert!(
            ratio >= 1.0 - 1e-9,
            "nothing beats the exhaustive optimum ({ratio})"
        );
        assert!(
            ratio <= 1.2,
            "ClkWaveMin {} too far from optimum {}",
            wave.peak_after,
            optimum.peak_after
        );
    }

    #[test]
    fn budget_is_enforced() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1); // 4^19 states
        let err = ExhaustiveSearch::new(cfg()).run(&d).unwrap_err();
        assert!(matches!(err, WaveMinError::InvalidConfig(_)));
    }

    #[test]
    fn impossible_bound_reports_no_solution() {
        let mut d = tiny_design();
        let victim = d.leaves()[0];
        d.tree.node_mut(victim).delay_trim += Picoseconds::new(500.0);
        let err = ExhaustiveSearch::new(cfg()).run(&d).unwrap_err();
        assert_eq!(err, WaveMinError::NoFeasibleInterval);
    }
}
