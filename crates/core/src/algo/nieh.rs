//! Opposite-phase clock tree baseline (Nieh et al. [22]).
//!
//! The earliest polarity-assignment scheme: split the clock tree into two
//! halves and drive one half through an inverter, so the two halves charge
//! and discharge on opposite edges. Implemented by flipping the subtree
//! roots of a subset of the source's fanout covering roughly half the
//! sinks. No placement awareness, no sizing, no skew machinery.

use crate::algo::{finish_outcome, Outcome};
use crate::assignment::Assignment;
use crate::design::Design;
use crate::error::WaveMinError;
use wavemin_cells::CellKind;
use wavemin_clocktree::NodeId;

/// The opposite-phase baseline.
///
/// # Example
///
/// ```
/// use wavemin::prelude::*;
///
/// let design = Design::from_benchmark(&Benchmark::s15850(), 7);
/// let out = NiehOppositePhase::new().run(&design)?;
/// // Half the tree flips: peak current drops versus the all-buffer tree.
/// assert!(out.peak_after.value() < out.peak_before.value());
/// # Ok::<(), WaveMinError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct NiehOppositePhase;

impl NiehOppositePhase {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Flips roughly half of the tree (by sink count) to negative polarity.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        let start = std::time::Instant::now();
        let tree = &design.tree;
        let total_sinks = tree.leaves().len();

        // Count sinks under each child of the source, then greedily pick
        // children until about half the sinks are covered.
        let root_children = tree.node(tree.root()).children().to_vec();
        let mut counts: Vec<(NodeId, usize)> = root_children
            .iter()
            .map(|&c| (c, subtree_sinks(design, c)))
            .collect();
        counts.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        let mut covered = 0usize;
        let mut flip: Vec<NodeId> = Vec::new();
        for (node, count) in counts {
            if covered * 2 >= total_sinks {
                break;
            }
            flip.push(node);
            covered += count;
        }

        let mut assignment = Assignment::new();
        for node in flip {
            let cell = &tree.node(node).cell;
            if let Some(spec) = design.lib.get(cell) {
                if spec.kind() == CellKind::Buffer {
                    assignment.set(node, format!("INV_X{}", spec.drive()));
                }
            }
        }
        let runtime = start.elapsed();

        let mut after = design.clone();
        assignment.apply_to(&mut after);
        finish_outcome(design, &after, assignment, f64::NAN, 0, runtime)
    }
}

/// Number of sinks in the subtree rooted at `node`.
fn subtree_sinks(design: &Design, node: NodeId) -> usize {
    let mut count = 0;
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        let n = design.tree.node(id);
        if n.is_leaf() {
            count += 1;
        }
        stack.extend(n.children().iter().copied());
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn flips_roughly_half_the_sinks() {
        let d = Design::from_benchmark(&Benchmark::s13207(), 3);
        let out = NiehOppositePhase::new().run(&d).unwrap();
        // Count leaves under negative polarity after the flip.
        let mut after = d.clone();
        out.assignment.apply_to(&mut after);
        let timing = after.timing(0).unwrap();
        let neg = after
            .leaves()
            .iter()
            .filter(|&&l| timing.input_edge[l.0] == wavemin_cells::characterize::ClockEdge::Fall)
            .count();
        let total = after.leaves().len();
        let frac = neg as f64 / total as f64;
        assert!(
            (0.25..=0.75).contains(&frac),
            "flipped fraction {frac} not near half"
        );
    }

    #[test]
    fn reduces_peak_current() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 7);
        let out = NiehOppositePhase::new().run(&d).unwrap();
        assert!(out.peak_after.value() < out.peak_before.value());
    }

    #[test]
    fn may_degrade_skew() {
        // The baseline ignores delay: the inverter insertion perturbs
        // arrivals, so the skew is generally nonzero afterwards.
        let d = Design::from_benchmark(&Benchmark::s15850(), 7);
        let out = NiehOppositePhase::new().run(&d).unwrap();
        assert!(out.skew_after >= out.skew_before);
    }
}
