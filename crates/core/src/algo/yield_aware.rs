//! Skew-yield-aware polarity assignment — the constraint style of Kang &
//! Kim [26], cited by the paper: meet the skew bound not just nominally
//! but with a target *yield* under process variation.
//!
//! The approach is the classic statistical guard band: estimate the skew's
//! standard deviation with a fast timing-only Monte-Carlo pass, tighten
//! the optimization bound by `z(target_yield) · σ̂`, run ClkWaveMin against
//! the tightened bound, and verify the achieved yield with a second
//! Monte-Carlo pass.

use crate::algo::{ClkWaveMin, Outcome};
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Picoseconds;
use wavemin_clocktree::variation::VariationModel;
use wavemin_clocktree::Timing;

/// The yield-aware result: the underlying outcome plus the statistical
/// figures that produced and validated it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldOutcome {
    /// The optimization outcome (against the tightened bound).
    pub outcome: Outcome,
    /// Estimated skew standard deviation of the *input* design.
    pub skew_sigma: Picoseconds,
    /// Guard band subtracted from the skew bound.
    pub guard_band: Picoseconds,
    /// Fraction of validation samples meeting the original bound.
    pub achieved_yield: f64,
    /// The requested yield.
    pub target_yield: f64,
}

/// ClkWaveMin under a skew-yield constraint (see the module docs).
#[derive(Debug, Clone)]
pub struct YieldAwareWaveMin {
    config: WaveMinConfig,
    model: VariationModel,
    target_yield: f64,
    samples: usize,
}

impl YieldAwareWaveMin {
    /// Creates the optimizer.
    ///
    /// `target_yield` is clamped to `[0.5, 0.9999]`; `samples` sets both
    /// Monte-Carlo passes' sizes (the paper-scale default is 1000, but a
    /// few hundred suffice for a σ estimate).
    #[must_use]
    pub fn new(
        config: WaveMinConfig,
        model: VariationModel,
        target_yield: f64,
        samples: usize,
    ) -> Self {
        Self {
            config,
            model,
            target_yield: target_yield.clamp(0.5, 0.9999),
            samples: samples.max(10),
        }
    }

    /// Runs the guard-banded optimization.
    ///
    /// # Errors
    ///
    /// [`WaveMinError::NoFeasibleInterval`] when the guard-banded bound is
    /// too tight to admit any assignment, plus the usual timing errors.
    pub fn run(&self, design: &Design, seed: u64) -> Result<YieldOutcome, WaveMinError> {
        let sigma = self.skew_sigma(design, seed)?;
        let z = normal_quantile(self.target_yield);
        let guard = Picoseconds::new(z * sigma.value());
        let tightened = (self.config.skew_bound - guard).max(Picoseconds::new(0.1));

        let mut config = self.config.clone();
        config.skew_bound = tightened;
        let outcome = ClkWaveMin::new(config).run(design)?;

        // Validation against the ORIGINAL bound.
        let mut optimized = design.clone();
        outcome.assignment.apply_to(&mut optimized);
        let achieved = self.measure_yield(&optimized, seed + 1)?;
        Ok(YieldOutcome {
            outcome,
            skew_sigma: sigma,
            guard_band: guard,
            achieved_yield: achieved,
            target_yield: self.target_yield,
        })
    }

    /// Timing-only Monte-Carlo estimate of the skew's σ.
    fn skew_sigma(&self, design: &Design, seed: u64) -> Result<Picoseconds, WaveMinError> {
        let skews = self.sample_skews(design, seed)?;
        let n = skews.len() as f64;
        let mean = skews.iter().sum::<f64>() / n;
        let var = skews.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        Ok(Picoseconds::new(var.sqrt()))
    }

    fn measure_yield(&self, design: &Design, seed: u64) -> Result<f64, WaveMinError> {
        let skews = self.sample_skews(design, seed)?;
        let pass = skews
            .iter()
            .filter(|&&s| s <= self.config.skew_bound.value() + 1e-9)
            .count();
        Ok(pass as f64 / skews.len() as f64)
    }

    fn sample_skews(&self, design: &Design, seed: u64) -> Result<Vec<f64>, WaveMinError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let supply = design.power.supply_for(&design.tree, 0);
        let mut out = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let v = self.model.sample(&design.tree, &mut rng);
            let mut adjust = v.timing;
            // Keep the mode-0 ADB codes on top of the variation.
            for (i, &d) in design.mode_adjust[0].extra_delay.iter().enumerate() {
                if d > Picoseconds::ZERO {
                    let cur = adjust
                        .extra_delay
                        .get(i)
                        .copied()
                        .unwrap_or(Picoseconds::ZERO);
                    adjust.set_extra_delay(wavemin_clocktree::NodeId(i), cur + d);
                }
            }
            let timing = Timing::analyze(
                &design.tree,
                &design.lib,
                &design.chr,
                design.wire,
                &supply,
                Some(&adjust),
            )?;
            out.push(timing.skew(&design.tree).value());
        }
        Ok(out)
    }
}

/// The standard normal quantile Φ⁻¹(p) for `p ∈ [0.5, 0.9999]`, via
/// Acklam's rational approximation (relative error < 1.15e-9 — far tighter
/// than the Monte-Carlo noise it guards).
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    let p = p.clamp(0.5, 0.9999);
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_5,
        -275.928_510_446_968_7,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_5,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_HIGH: f64 = 1.0 - 0.02425;
    if p <= P_HIGH {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        let num = ((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5];
        let den = ((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0;
        q * num / den
    } else {
        // Upper tail.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        let num = ((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5];
        let den = (((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0;
        -num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn quick_config(kappa: f64) -> WaveMinConfig {
        let mut cfg = WaveMinConfig::default()
            .with_sample_count(16)
            .with_skew_bound(Picoseconds::new(kappa));
        cfg.max_intervals = Some(4);
        cfg
    }

    #[test]
    fn normal_quantile_reference_points() {
        assert!((normal_quantile(0.5) - 0.0).abs() < 1e-6);
        assert!((normal_quantile(0.8413447) - 1.0).abs() < 1e-3);
        assert!((normal_quantile(0.97725) - 2.0).abs() < 1e-3);
        assert!((normal_quantile(0.99865) - 3.0).abs() < 1e-2);
        // Monotone.
        assert!(normal_quantile(0.95) < normal_quantile(0.99));
    }

    #[test]
    fn guard_band_grows_with_target_yield() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 3);
        let model = VariationModel::default();
        let lo = YieldAwareWaveMin::new(quick_config(20.0), model, 0.84, 40)
            .run(&d, 9)
            .unwrap();
        let hi = YieldAwareWaveMin::new(quick_config(20.0), model, 0.999, 40)
            .run(&d, 9)
            .unwrap();
        assert!(hi.guard_band > lo.guard_band);
        assert!(lo.skew_sigma.value() > 0.0);
    }

    #[test]
    fn achieves_high_yield_with_guard_band() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 3);
        let out = YieldAwareWaveMin::new(quick_config(20.0), VariationModel::default(), 0.97, 60)
            .run(&d, 4)
            .unwrap();
        assert!(
            out.achieved_yield >= 0.9,
            "yield {} below expectation (guard {})",
            out.achieved_yield,
            out.guard_band
        );
        // The optimization itself respected the tightened bound.
        assert!(
            out.outcome.skew_after.value()
                <= (Picoseconds::new(20.0) - out.guard_band).value() + 1e-9
        );
    }

    #[test]
    fn overwhelming_variation_reports_honest_low_yield() {
        // Under 50 % delay variation no guard band can rescue a 5 ps
        // bound; the run still succeeds (the exactly-equalized tree always
        // admits the identity-like assignment) but must report the low
        // achieved yield rather than pretend.
        let d = Design::from_benchmark(&Benchmark::s15850(), 3);
        let model = VariationModel {
            cell_delay_sigma: 0.5,
            wire_r_sigma: 0.5,
            wire_c_sigma: 0.5,
            current_sigma: 0.05,
        };
        let out = YieldAwareWaveMin::new(quick_config(5.0), model, 0.9999, 30)
            .run(&d, 1)
            .unwrap();
        assert!(out.guard_band.value() > 0.0);
        assert!(
            out.achieved_yield < 0.5,
            "yield {} should collapse under 50 % variation",
            out.achieved_yield
        );
    }
}
