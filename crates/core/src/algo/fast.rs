//! ClkWaveMin-f: the fast greedy variant (Section V-C).

use crate::algo::{run_interval_framework, Outcome, ZoneProblem, ZoneSolution, ZoneSolver};
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use crate::intervals::FeasibleInterval;
use crate::noise_table::NoiseTable;
use crate::observe::{MetricsRegistry, ReportContext, ZoneSolveRecord};
use wavemin_cells::units::Picoseconds;
use wavemin_mosp::SolveStats;

/// The greedy variant: instead of a shortest-path search, sinks are
/// assigned one at a time; at each step the (sink, cell) option whose
/// selection worsens the running noise expectation the least is committed
/// (`M(v) = max_s (sum(s) + noise(v, s))`, minimized over unassigned
/// vertices). `O(|S|·|L|²)` time, `O(|S|·|L|)` space.
///
/// # Example
///
/// ```
/// use wavemin::prelude::*;
///
/// let design = Design::from_benchmark(&Benchmark::s15850(), 7);
/// let fast = ClkWaveMinFast::new(WaveMinConfig::default()).run(&design)?;
/// assert!(fast.peak_after.value() <= fast.peak_before.value() + 1e-9);
/// # Ok::<(), WaveMinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClkWaveMinFast {
    config: WaveMinConfig,
}

impl ClkWaveMinFast {
    /// Creates the optimizer with the given configuration.
    #[must_use]
    pub fn new(config: WaveMinConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &WaveMinConfig {
        &self.config
    }

    /// Optimizes a single-power-mode design.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::algo::ClkWaveMin::run`].
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        let registry = MetricsRegistry::from_config(&self.config);
        let solver = GreedyZoneSolver::new(registry.clone());
        let mut out = run_interval_framework(design, &self.config, &solver, &registry)?;
        out.report = registry.report(&ReportContext {
            threads: self.config.effective_threads(),
            degenerate_zones: out.degenerate_zones,
            ladder_rung: 0,
            budget_units: 0,
            kernel: wavemin_mosp::kernels::active().name(),
        });
        Ok(out)
    }
}

/// Greedy least-noise-worsening-first inner solver.
pub(crate) struct GreedyZoneSolver {
    registry: MetricsRegistry,
}

impl GreedyZoneSolver {
    pub(crate) fn new(registry: MetricsRegistry) -> Self {
        Self { registry }
    }
}

impl ZoneSolver for GreedyZoneSolver {
    fn solve_zone(
        &self,
        table: &NoiseTable,
        zone: &ZoneProblem,
        interval: &FeasibleInterval,
        extra: &crate::noise_table::BackgroundAccumulator,
    ) -> Result<ZoneSolution, WaveMinError> {
        let started = self.registry.is_enabled().then(std::time::Instant::now);
        let mut work = 0_u64;
        let rows = zone.sinks.len();
        let allowed = interval.allowed_for(&zone.sinks);
        // Candidate (row, option, code, vector) tuples.
        let mut candidates: Vec<Vec<(usize, Picoseconds, Vec<f64>)>> = Vec::with_capacity(rows);
        for (local, opts) in allowed.iter().enumerate() {
            let mut row = Vec::new();
            for &opt in opts.iter() {
                let si = zone.sinks[local];
                let o = &table.sinks[si].options[opt];
                if let Some(code) = o.delay_code_for(interval.t_lo, interval.t_hi) {
                    row.push((opt, code, zone.option_vector(table, local, opt, code)));
                }
            }
            if row.is_empty() {
                return Err(WaveMinError::NoFeasibleInterval);
            }
            candidates.push(row);
        }

        let mut sum = zone.background.clone();
        zone.plan.accumulate_background_into(&mut sum, extra);
        let mut choices = vec![(usize::MAX, Picoseconds::ZERO); rows];
        let mut remaining: Vec<usize> = (0..rows).collect();
        while !remaining.is_empty() {
            // Globally least-worsening vertex over all unassigned rows.
            let mut best: Option<(usize, usize, f64)> = None; // (row, cand idx, M)
            for &row in &remaining {
                for (ci, (_, _, vector)) in candidates[row].iter().enumerate() {
                    work += 1;
                    let m = wavemin_mosp::kernels::add_max(&sum, vector);
                    if best.is_none_or(|(_, _, bm)| m < bm) {
                        best = Some((row, ci, m));
                    }
                }
            }
            // Every row kept at least one candidate above, so a missing
            // best means the zone is genuinely unsolvable.
            let Some((row, ci, _)) = best else {
                return Err(WaveMinError::NoFeasibleInterval);
            };
            let (opt, code, ref vector) = candidates[row][ci];
            wavemin_mosp::kernels::add_assign(&mut sum, vector);
            choices[row] = (opt, code);
            remaining.retain(|&r| r != row);
        }
        let cost = wavemin_mosp::kernels::max_component(&sum).max(0.0);
        if let Some(started) = started {
            self.registry.record_zone_solve(
                zone.id,
                &ZoneSolveRecord {
                    stats: SolveStats {
                        labels_created: rows as u64,
                        labels_pruned: 0,
                        work,
                        front_size: 1,
                        dominance_checks: 0,
                        dominance_skipped: 0,
                    },
                    exhausted: false,
                    arena_arcs: 0,
                    arena_unique_weights: 0,
                    wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                },
            );
        }
        Ok(ZoneSolution { choices, cost })
    }
}

/// Sanity hook: the greedy cost can never beat the exact MOSP cost on the
/// same subproblem (used by the in-crate tests).
#[cfg(test)]
#[allow(clippy::items_after_test_module)]
fn greedy_vs_mosp_zone_cost(
    config: &WaveMinConfig,
    table: &NoiseTable,
    zone: &ZoneProblem,
    interval: &FeasibleInterval,
) -> Result<(f64, f64), WaveMinError> {
    use crate::algo::clkwavemin::MospZoneSolver;
    let zero = crate::noise_table::BackgroundAccumulator::zero();
    let greedy = GreedyZoneSolver::new(MetricsRegistry::disabled())
        .solve_zone(table, zone, interval, &zero)?;
    let mosp = MospZoneSolver::new(
        config,
        wavemin_mosp::Budget::unlimited(),
        MetricsRegistry::disabled(),
    )
    .solve_zone(table, zone, interval, &zero)?;
    Ok((greedy.cost, mosp.cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::IntervalSet;
    use crate::prelude::*;

    fn small_design() -> Design {
        Design::from_benchmark(&Benchmark::s15850(), 7)
    }

    #[test]
    fn fast_reduces_or_keeps_peak() {
        let d = small_design();
        let out = ClkWaveMinFast::new(WaveMinConfig::default())
            .run(&d)
            .unwrap();
        assert!(out.peak_after.value() <= out.peak_before.value() + 1e-9);
    }

    #[test]
    fn fast_respects_skew_bound() {
        let d = small_design();
        let cfg = WaveMinConfig::default();
        let out = ClkWaveMinFast::new(cfg.clone()).run(&d).unwrap();
        assert!(out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9);
    }

    #[test]
    fn greedy_never_beats_mosp_per_zone() {
        let d = small_design();
        let cfg = WaveMinConfig::default().with_sample_count(16);
        let table = NoiseTable::build(&d, &cfg, 0).unwrap();
        let intervals = IntervalSet::generate(&table, cfg.skew_bound, Some(4));
        let zones = ZoneProblem::build_all(&d, &cfg, &table);
        let mut compared = 0;
        for interval in intervals.intervals() {
            for zone in &zones {
                if let Ok((g, m)) = greedy_vs_mosp_zone_cost(&cfg, &table, zone, interval) {
                    // The Warburton grid rounds within epsilon: allow that
                    // much slack in the comparison.
                    assert!(
                        g >= m * (1.0 - 0.02) - 1e-6,
                        "greedy {g} beat the exact-ish MOSP cost {m}"
                    );
                    compared += 1;
                }
            }
        }
        assert!(compared > 0, "no zone/interval pairs compared");
    }

    #[test]
    fn fast_is_close_to_clkwavemin() {
        // Table VI shape: the greedy result lands near the MOSP result.
        let d = small_design();
        let cfg = WaveMinConfig::default();
        let full = ClkWaveMin::new(cfg.clone()).run(&d).unwrap();
        let fast = ClkWaveMinFast::new(cfg).run(&d).unwrap();
        let ratio = fast.peak_after.value() / full.peak_after.value();
        assert!(
            ratio <= 1.3,
            "greedy peak {} too far from MOSP peak {}",
            fast.peak_after,
            full.peak_after
        );
    }
}
