//! Dynamically reconfigurable polarity — the XOR-gate scheme of Lu,
//! Teng & Taskin [30], [31], cited by the paper as enabling mode-specific
//! noise reduction.
//!
//! A static assignment must compromise across power modes; with an XOR
//! gate in front of a sink (and double-edge-triggered flip-flops), the
//! sink's polarity can be switched *per mode*. This optimizer therefore
//! runs an independent single-mode ClkWaveMin per power mode and reports
//! the per-mode assignments plus the hardware cost: the number of sinks
//! whose polarity differs between modes (each needs an XOR cell).

use crate::algo::{ClkWaveMin, Outcome};
use crate::assignment::Assignment;
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use serde::{Deserialize, Serialize};
use wavemin_cells::Polarity;
use wavemin_clocktree::{NodeId, PowerDesign};

/// The result of a dynamic (per-mode) polarity optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicOutcome {
    /// One full single-mode outcome per power mode.
    pub per_mode: Vec<Outcome>,
    /// Sinks whose polarity differs between at least two modes — each
    /// needs an XOR reconfiguration cell.
    pub xor_sinks: Vec<NodeId>,
    /// The worst per-mode optimized peak (mA) — what the dynamic scheme
    /// achieves.
    pub dynamic_peak_ma: f64,
    /// The worst-mode peak of the best *static* single assignment among
    /// the per-mode winners, for comparison.
    pub static_peak_ma: f64,
}

impl DynamicOutcome {
    /// Number of XOR cells required.
    #[must_use]
    pub fn xor_count(&self) -> usize {
        self.xor_sinks.len()
    }

    /// Peak reduction of dynamic over static, in percent.
    #[must_use]
    pub fn gain_over_static_pct(&self) -> f64 {
        if self.static_peak_ma.abs() < 1e-12 {
            0.0
        } else {
            (self.static_peak_ma - self.dynamic_peak_ma) / self.static_peak_ma * 100.0
        }
    }
}

/// Per-mode independent polarity assignment with XOR accounting.
#[derive(Debug, Clone)]
pub struct DynamicPolarity {
    config: WaveMinConfig,
}

impl DynamicPolarity {
    /// Creates the optimizer.
    #[must_use]
    pub fn new(config: WaveMinConfig) -> Self {
        Self { config }
    }

    /// Optimizes each power mode independently.
    ///
    /// # Errors
    ///
    /// Fails when any mode's single-mode problem is infeasible.
    pub fn run(&self, design: &Design) -> Result<DynamicOutcome, WaveMinError> {
        let modes = design.mode_count();
        // The per-mode problems are fully independent, so they fan out
        // over the worker pool (input-order collection keeps the result
        // identical to a sequential run).
        let mode_ids: Vec<usize> = (0..modes).collect();
        let per_mode: Vec<crate::algo::Outcome> =
            crate::parallel::map_ordered(&mode_ids, self.config.effective_threads(), |_, &m| {
                let view = mode_view(design, m);
                ClkWaveMin::new(self.config.clone()).run(&view)
            })
            .into_iter()
            .collect::<Result<_, _>>()?;

        // Cross-pollination: evaluate every winning assignment in every
        // mode and let each mode pick its best. By the minimax inequality
        // the resulting per-mode maximum can never exceed the best static
        // assignment's worst-mode peak.
        let assignments: Vec<&Assignment> = per_mode.iter().map(|o| &o.assignment).collect();
        let mut matrix = vec![vec![0.0_f64; modes]; assignments.len()];
        for (j, a) in assignments.iter().enumerate() {
            let peaks = per_mode_peaks(design, a)?;
            matrix[j].copy_from_slice(&peaks);
        }
        let static_best = (0..assignments.len())
            .min_by(|&a, &b| {
                let wa = matrix[a].iter().copied().fold(0.0_f64, f64::max);
                let wb = matrix[b].iter().copied().fold(0.0_f64, f64::max);
                wa.total_cmp(&wb)
            })
            .unwrap_or(0);
        let static_peak_ma = matrix[static_best].iter().copied().fold(0.0_f64, f64::max);
        // Per-mode argmin; near-ties resolve to the static winner so XOR
        // cells are only spent where they actually buy noise.
        let chosen: Vec<usize> = (0..modes)
            .map(|m| {
                let best = (0..assignments.len())
                    .min_by(|&a, &b| matrix[a][m].total_cmp(&matrix[b][m]))
                    .unwrap_or(m);
                if matrix[static_best][m] <= matrix[best][m] * 1.001 {
                    static_best
                } else {
                    best
                }
            })
            .collect();
        let mut chosen = chosen;
        let mut dynamic_peak_ma = (0..modes)
            .map(|m| matrix[chosen[m]][m])
            .fold(0.0_f64, f64::max);
        // When reconfiguration buys nothing overall, stay static: zero
        // XOR cells is strictly better hardware for the same noise.
        if dynamic_peak_ma >= static_peak_ma * 0.999 {
            chosen = vec![static_best; modes];
            dynamic_peak_ma = static_peak_ma;
        }

        // XOR accounting: sinks whose chosen polarity differs across the
        // modes' selected assignments.
        let mut xor_sinks = Vec::new();
        for &leaf in &design.tree.leaves() {
            let polarities: Vec<Option<Polarity>> = chosen
                .iter()
                .map(|&j| {
                    assignments[j]
                        .cells
                        .get(&leaf)
                        .and_then(|c| design.lib.get(c))
                        .map(|s| s.polarity())
                })
                .collect();
            let mut distinct: Vec<Polarity> = polarities.iter().flatten().copied().collect();
            distinct.sort();
            distinct.dedup();
            if distinct.len() > 1 {
                xor_sinks.push(leaf);
            }
        }

        Ok(DynamicOutcome {
            per_mode,
            xor_sinks,
            dynamic_peak_ma,
            static_peak_ma,
        })
    }
}

/// A single-mode view of one power mode: same tree and libraries, but the
/// power intent keeps only mode `m`.
fn mode_view(design: &Design, mode: usize) -> Design {
    let domains = design.power.domains().to_vec();
    let m = design.power.modes()[mode].clone();
    let mut view = design.clone();
    view.power = PowerDesign::new(domains, vec![m], wavemin_cells::units::Volts::new(1.1));
    view.mode_adjust = vec![design.mode_adjust[mode].clone()];
    view
}

/// The assignment's evaluated peak in every mode (delay codes dropped:
/// they belong to one mode's view only, and these designs have no ADBs).
fn per_mode_peaks(design: &Design, assignment: &Assignment) -> Result<Vec<f64>, WaveMinError> {
    let mut candidate = design.clone();
    let static_assignment = Assignment {
        cells: assignment.cells.clone(),
        delay_codes: Vec::new(),
    };
    static_assignment.apply_to(&mut candidate);
    let eval = crate::eval::NoiseEvaluator::new(&candidate);
    (0..candidate.mode_count())
        .map(|m| eval.evaluate(m).map(|r| r.peak.value()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use wavemin_cells::units::Picoseconds;

    fn quick_config() -> WaveMinConfig {
        let mut cfg = WaveMinConfig::default()
            .with_sample_count(16)
            .with_skew_bound(Picoseconds::new(40.0));
        cfg.max_intervals = Some(4);
        cfg
    }

    fn design() -> Design {
        Design::from_benchmark_multimode(&Benchmark::s15850(), 5, 3, 3)
    }

    #[test]
    fn per_mode_outcomes_cover_all_modes() {
        let d = design();
        let out = DynamicPolarity::new(quick_config()).run(&d).unwrap();
        assert_eq!(out.per_mode.len(), d.mode_count());
        for o in &out.per_mode {
            assert!(o.peak_after.value() > 0.0);
        }
    }

    #[test]
    fn dynamic_never_loses_to_static() {
        // Per-mode freedom is a superset of a single static assignment.
        let d = design();
        let out = DynamicPolarity::new(quick_config()).run(&d).unwrap();
        assert!(
            out.dynamic_peak_ma <= out.static_peak_ma + 1e-9,
            "dynamic {} vs static {} (minimax guarantee)",
            out.dynamic_peak_ma,
            out.static_peak_ma
        );
    }

    #[test]
    fn xor_sinks_are_leaves_with_conflicting_polarities() {
        let d = design();
        let out = DynamicPolarity::new(quick_config()).run(&d).unwrap();
        let leaves = d.tree.leaves();
        for s in &out.xor_sinks {
            assert!(leaves.contains(s));
        }
        assert!(out.xor_count() <= leaves.len());
    }

    #[test]
    fn single_mode_design_needs_no_xors() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 5);
        let out = DynamicPolarity::new(quick_config()).run(&d).unwrap();
        assert_eq!(out.per_mode.len(), 1);
        assert_eq!(out.xor_count(), 0);
    }
}
