//! ClkWaveMin: the MOSP-based approximation algorithm (Section V).

use crate::algo::{run_interval_framework, Outcome, ZoneProblem, ZoneSolution, ZoneSolver};
use crate::config::{SolverKind, WaveMinConfig};
use crate::design::Design;
use crate::error::WaveMinError;
use crate::intervals::FeasibleInterval;
use crate::noise_table::NoiseTable;
use wavemin_cells::units::Picoseconds;
use wavemin_mosp::{solve, MospGraph, VertexId};

/// The paper's main algorithm: per zone and feasible interval, convert the
/// assignment subproblem to a multi-objective shortest path instance
/// (Algorithm 1) and solve it with Warburton's ε-approximation; the
/// min–max Pareto path is the zone's assignment.
///
/// # Example
///
/// ```
/// use wavemin::prelude::*;
///
/// let design = Design::from_benchmark(&Benchmark::s15850(), 7);
/// let outcome = ClkWaveMin::new(WaveMinConfig::default()).run(&design)?;
/// assert!(outcome.peak_after.value() <= outcome.peak_before.value() + 1e-9);
/// # Ok::<(), WaveMinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClkWaveMin {
    config: WaveMinConfig,
}

impl ClkWaveMin {
    /// Creates the optimizer with the given configuration.
    #[must_use]
    pub fn new(config: WaveMinConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &WaveMinConfig {
        &self.config
    }

    /// Optimizes a single-power-mode design.
    ///
    /// # Errors
    ///
    /// [`WaveMinError::NoFeasibleInterval`] when no assignment can satisfy
    /// the skew bound; timing/characterization errors otherwise.
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        run_interval_framework(design, &self.config, &MospZoneSolver { config: &self.config })
    }
}

/// The MOSP-based inner solver shared by ClkWaveMin and ClkWaveMin-M.
pub(crate) struct MospZoneSolver<'a> {
    pub(crate) config: &'a WaveMinConfig,
}

impl ZoneSolver for MospZoneSolver<'_> {
    fn solve_zone(
        &self,
        table: &NoiseTable,
        zone: &ZoneProblem,
        interval: &FeasibleInterval,
        extra: &crate::noise_table::EventWaveforms,
    ) -> Result<ZoneSolution, WaveMinError> {
        let mut background = zone.background.clone();
        zone.plan.accumulate_into(&mut background, extra);
        solve_zone_mosp(
            self.config,
            zone.sinks.len(),
            |local, option| {
                let si = zone.sinks[local];
                let o = &table.sinks[si].options[option];
                o.delay_code_for(interval.t_lo, interval.t_hi)
                    .map(|code| (code, zone.option_vector(table, local, option, code)))
            },
            &interval.allowed_for(&zone.sinks),
            &background,
        )
    }
}

impl FeasibleInterval {
    /// The allowed-option lists of the given sinks (indices into the full
    /// sink list).
    pub(crate) fn allowed_for(&self, sinks: &[usize]) -> Vec<Vec<usize>> {
        sinks.iter().map(|&si| self.allowed[si].clone()).collect()
    }
}

/// Builds the MOSP graph of Algorithm 1 and solves it.
///
/// * `rows` — number of sinks in the zone;
/// * `option_data(local, option)` — the delay-code payload and sampled
///   noise vector of an option, or `None` when it cannot fit the interval;
/// * `allowed[local]` — candidate option indices per sink;
/// * `background` — the non-leaf noise vector carried by the arcs into
///   `dest` (Observation 1).
///
/// Generic over the payload `C` so the multi-mode flow can carry one delay
/// code per power mode.
pub(crate) fn solve_zone_mosp_generic<C: Clone + Default>(
    config: &WaveMinConfig,
    rows: usize,
    mut option_data: impl FnMut(usize, usize) -> Option<(C, Vec<f64>)>,
    allowed: &[Vec<usize>],
    background: &[f64],
) -> Result<(Vec<(usize, C)>, f64), WaveMinError> {
    if rows == 0 {
        return Ok((Vec::new(), background.iter().copied().fold(0.0, f64::max)));
    }
    let dims = background.len();
    let mut graph = MospGraph::new(dims);
    let src = graph.add_vertex();
    // Registry: vertex -> (row, option index, payload).
    let mut registry: Vec<(usize, usize, C)> = vec![(usize::MAX, usize::MAX, C::default())];
    let mut prev_row: Vec<VertexId> = vec![src];
    let mut row_vectors: Vec<(VertexId, Vec<f64>)> = Vec::new();

    for (local, opts) in allowed.iter().enumerate().take(rows) {
        let mut this_row = Vec::new();
        row_vectors.clear();
        for &opt in opts {
            let Some((code, vector)) = option_data(local, opt) else {
                continue;
            };
            let v = graph.add_vertex();
            registry.push((local, opt, code));
            row_vectors.push((v, vector));
            this_row.push(v);
        }
        if this_row.is_empty() {
            return Err(WaveMinError::NoFeasibleInterval);
        }
        for &(v, ref vector) in &row_vectors {
            for &u in &prev_row {
                graph.add_arc(u, v, vector.clone())?;
            }
        }
        prev_row = this_row;
    }

    let dest = graph.add_vertex();
    registry.push((usize::MAX, usize::MAX, C::default()));
    for &u in &prev_row {
        graph.add_arc(u, dest, background.to_vec())?;
    }

    let set = match config.solver {
        SolverKind::Warburton { epsilon } => {
            solve::warburton_capped(&graph, src, dest, epsilon, Some(config.label_cap))?
        }
        SolverKind::Exact { max_labels } => solve::exact(&graph, src, dest, max_labels)?,
    };
    let best = set.min_max().ok_or(WaveMinError::NoFeasibleInterval)?;
    let mut choices: Vec<(usize, C)> = vec![(usize::MAX, C::default()); rows];
    for v in &best.vertices {
        let (row, opt, ref code) = registry[v.0];
        if row != usize::MAX {
            choices[row] = (opt, code.clone());
        }
    }
    debug_assert!(choices.iter().all(|(o, _)| *o != usize::MAX));
    Ok((choices, best.max_component()))
}

/// Single-mode wrapper around [`solve_zone_mosp_generic`].
pub(crate) fn solve_zone_mosp(
    config: &WaveMinConfig,
    rows: usize,
    option_data: impl FnMut(usize, usize) -> Option<(Picoseconds, Vec<f64>)>,
    allowed: &[Vec<usize>],
    background: &[f64],
) -> Result<ZoneSolution, WaveMinError> {
    let (choices, cost) =
        solve_zone_mosp_generic(config, rows, option_data, allowed, background)?;
    Ok(ZoneSolution { choices, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn small_design() -> Design {
        Design::from_benchmark(&Benchmark::s15850(), 7)
    }

    #[test]
    fn run_reduces_or_keeps_peak() {
        let d = small_design();
        let out = ClkWaveMin::new(WaveMinConfig::default()).run(&d).unwrap();
        assert!(out.peak_after.value() <= out.peak_before.value() + 1e-9);
        assert!(out.intervals_tried > 0);
    }

    #[test]
    fn assignment_mixes_polarities() {
        // s13207's zones hold ~4 sinks each, enough for a genuine split
        // (tiny 1-sink zones may legitimately all flip).
        let d = Design::from_benchmark(&Benchmark::s13207(), 1);
        let mut cfg = WaveMinConfig::default().with_sample_count(32);
        cfg.max_intervals = Some(6);
        let out = ClkWaveMin::new(cfg).run(&d).unwrap();
        let (pos, neg) = out.assignment.polarity_counts(&d);
        assert_eq!(pos + neg, d.leaves().len());
        assert!(neg > 0, "some sinks should become inverters");
        assert!(pos > 0, "not everything should flip");
    }

    #[test]
    fn skew_bound_is_respected() {
        let d = small_design();
        let cfg = WaveMinConfig::default();
        let out = ClkWaveMin::new(cfg.clone()).run(&d).unwrap();
        assert!(
            out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9,
            "skew {} exceeds bound {}",
            out.skew_after,
            cfg.skew_bound
        );
    }

    #[test]
    fn infeasible_skew_bound_errors() {
        // One sink pushed 50 ps late: no sub-ps window can cover all.
        let mut d = small_design();
        let victim = d.leaves()[0];
        d.tree.node_mut(victim).delay_trim += Picoseconds::new(50.0);
        let cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(0.5));
        assert_eq!(
            ClkWaveMin::new(cfg).run(&d).unwrap_err(),
            WaveMinError::NoFeasibleInterval
        );
    }

    #[test]
    fn exact_solver_agrees_with_warburton_on_small_design() {
        let d = small_design();
        let mut cfg_w = WaveMinConfig::default().with_sample_count(8);
        cfg_w.solver = SolverKind::Warburton { epsilon: 0.01 };
        let mut cfg_e = cfg_w.clone();
        cfg_e.solver = SolverKind::Exact { max_labels: None };
        let out_w = ClkWaveMin::new(cfg_w).run(&d).unwrap();
        let out_e = ClkWaveMin::new(cfg_e).run(&d).unwrap();
        // ε = 0.01: the approximation must be within ~1 % of exact.
        let ratio = out_w.estimated_cost / out_e.estimated_cost;
        assert!(
            (0.98..=1.02).contains(&ratio),
            "warburton {} vs exact {}",
            out_w.estimated_cost,
            out_e.estimated_cost
        );
    }

    #[test]
    fn more_samples_never_hurt_much() {
        // Table VI shape: peak with |S| = 158 <= peak with |S| = 4 (small
        // slack for evaluation noise).
        let d = small_design();
        let coarse = ClkWaveMin::new(WaveMinConfig::default().with_sample_count(4))
            .run(&d)
            .unwrap();
        let fine = ClkWaveMin::new(WaveMinConfig::default().with_sample_count(158))
            .run(&d)
            .unwrap();
        assert!(
            fine.peak_after.value() <= coarse.peak_after.value() * 1.05,
            "fine {} vs coarse {}",
            fine.peak_after,
            coarse.peak_after
        );
    }

    #[test]
    fn zone_mosp_solver_picks_min_max() {
        // Two sinks, two options each: buffer-ish (10, 0) and
        // inverter-ish (0, 10) per sample slot. Min-max splits them.
        let cfg = WaveMinConfig::default();
        let vectors = [
            vec![vec![10.0, 0.0], vec![0.0, 10.0]],
            vec![vec![10.0, 0.0], vec![0.0, 10.0]],
        ];
        let allowed = vec![vec![0, 1], vec![0, 1]];
        let sol = solve_zone_mosp(
            &cfg,
            2,
            |l, o| Some((Picoseconds::ZERO, vectors[l][o].clone())),
            &allowed,
            &[0.0, 0.0],
        )
        .unwrap();
        assert_eq!(sol.cost, 10.0);
        let (a, b) = (sol.choices[0].0, sol.choices[1].0);
        assert_ne!(a, b, "the two sinks must take opposite polarities");
    }

    #[test]
    fn zone_mosp_respects_background() {
        // Background loads dimension 0, so both sinks should pick option 1.
        let cfg = WaveMinConfig::default();
        let vectors = [
            vec![vec![5.0, 0.0], vec![0.0, 5.0]],
            vec![vec![5.0, 0.0], vec![0.0, 5.0]],
        ];
        let allowed = vec![vec![0, 1], vec![0, 1]];
        let sol = solve_zone_mosp(
            &cfg,
            2,
            |l, o| Some((Picoseconds::ZERO, vectors[l][o].clone())),
            &allowed,
            &[20.0, 0.0],
        )
        .unwrap();
        assert_eq!(sol.choices[0].0, 1);
        assert_eq!(sol.choices[1].0, 1);
        assert_eq!(sol.cost, 20.0);
    }

    #[test]
    fn empty_zone_costs_background_peak() {
        let cfg = WaveMinConfig::default();
        let sol = solve_zone_mosp(&cfg, 0, |_, _| None, &[], &[3.0, 7.0]).unwrap();
        assert_eq!(sol.cost, 7.0);
        assert!(sol.choices.is_empty());
    }
}
