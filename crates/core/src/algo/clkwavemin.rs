//! ClkWaveMin: the MOSP-based approximation algorithm (Section V).

use crate::algo::{
    run_interval_framework_traced, Degradation, DegradationStep, Outcome, ZoneProblem,
    ZoneSolution, ZoneSolver,
};
use crate::config::{SolverKind, WaveMinConfig};
use crate::design::Design;
use crate::error::WaveMinError;
use crate::eval::NoiseEvaluator;
use crate::fault::{FaultKind, FaultObserver, FaultPlan, FaultSite};
use crate::intervals::FeasibleInterval;
use crate::noise_table::NoiseTable;
use crate::observe::{MetricsRegistry, PeakAttribution, ReportContext, ZoneSolveRecord};
use crate::trace::TraceJournal;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
#[cfg(test)]
use wavemin_cells::units::Picoseconds;
use wavemin_mosp::{
    solve, Budget, Exhaustion, MospError, MospGraph, ParetoSet, SolveObserver, VertexId,
};

/// The paper's main algorithm: per zone and feasible interval, convert the
/// assignment subproblem to a multi-objective shortest path instance
/// (Algorithm 1) and solve it with Warburton's ε-approximation; the
/// min–max Pareto path is the zone's assignment.
///
/// # Example
///
/// ```
/// use wavemin::prelude::*;
///
/// let design = Design::from_benchmark(&Benchmark::s15850(), 7);
/// let outcome = ClkWaveMin::new(WaveMinConfig::default()).run(&design)?;
/// assert!(outcome.peak_after.value() <= outcome.peak_before.value() + 1e-9);
/// # Ok::<(), WaveMinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClkWaveMin {
    config: WaveMinConfig,
    progress: crate::observe::ProgressTracker,
}

impl ClkWaveMin {
    /// Creates the optimizer with the given configuration.
    #[must_use]
    pub fn new(config: WaveMinConfig) -> Self {
        Self {
            config,
            progress: crate::observe::ProgressTracker::disabled(),
        }
    }

    /// Attaches a progress channel: the solve phase emits periodic
    /// [`crate::observe::Progress`] snapshots through `progress` (and the
    /// ticker folds RSS samples into the peak gauge). Disabled by
    /// default; observation-only, so outcomes stay bit-identical.
    #[must_use]
    pub fn with_progress(mut self, progress: crate::observe::ProgressTracker) -> Self {
        self.progress = progress;
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &WaveMinConfig {
        &self.config
    }

    /// Optimizes a single-power-mode design.
    ///
    /// When the config carries a time budget, pathological solves descend
    /// the degradation ladder instead of running unbounded; the applied
    /// relaxations land in [`Outcome::degradation`].
    ///
    /// # Errors
    ///
    /// [`WaveMinError::NoFeasibleInterval`] when no assignment can satisfy
    /// the skew bound; timing/characterization errors otherwise.
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        self.run_traced(design, &TraceJournal::disabled())
    }

    /// [`ClkWaveMin::run`] with an event journal attached: zone /
    /// graph-layer / label-batch spans and ladder/budget instants land in
    /// `journal` (see [`TraceJournal::chrome_trace`]). A disabled journal
    /// makes this identical to `run` — the instrumentation is a single
    /// branch per hook.
    ///
    /// # Errors
    ///
    /// Same as [`ClkWaveMin::run`].
    pub fn run_traced(
        &self,
        design: &Design,
        journal: &TraceJournal,
    ) -> Result<Outcome, WaveMinError> {
        self.config.validate()?;
        design.validate()?;
        let registry = MetricsRegistry::from_config(&self.config);
        let budget = self.config.budget();
        let solver = MospZoneSolver::new(&self.config, budget.clone(), registry.clone())
            .with_journal(journal.clone())
            .with_progress(self.progress.clone());
        let mut out = run_interval_framework_traced(
            design,
            &self.config,
            &solver,
            &registry,
            journal,
            &self.progress,
        )?;
        out.degradation = solver.ladder.degradation();
        out.report = registry.report(&ReportContext {
            threads: self.config.effective_threads(),
            degenerate_zones: out.degenerate_zones,
            ladder_rung: solver.ladder.current_rung(),
            budget_units: budget.work_done(),
            kernel: wavemin_mosp::kernels::active().name(),
        });
        if out.report.is_some() {
            let attribution = worst_mode_attribution(design, &out)?;
            if let Some(report) = out.report.as_mut() {
                report.attribution = attribution;
            }
        }
        Ok(out)
    }
}

/// The peak attribution of the outcome's assignment: every mode is
/// decomposed and the one with the largest attributed peak wins (matching
/// the worst-mode `peak_after` the outcome reports).
pub(crate) fn worst_mode_attribution(
    design: &Design,
    out: &Outcome,
) -> Result<Option<PeakAttribution>, WaveMinError> {
    let mut optimized = design.clone();
    out.assignment.apply_to(&mut optimized);
    let eval = NoiseEvaluator::new(&optimized);
    let mut best: Option<PeakAttribution> = None;
    for mode in 0..optimized.mode_count() {
        let attr = eval.attribution(mode)?;
        if best.as_ref().is_none_or(|b| attr.peak_ma > b.peak_ma) {
            best = Some(attr);
        }
    }
    Ok(best)
}

/// The resource-governed degradation ladder shared by every MOSP zone
/// solve of one optimization run:
///
/// 1. the configured solver (exact enumeration or Warburton ε);
/// 2. Warburton with escalating ε (exact runs are demoted here first);
/// 3. Warburton with a large ε *and* a tightened per-vertex label cap;
/// 4. greedy single-label completion (always terminates, still a valid
///    assignment).
///
/// The ladder descends one rung every time a solve exhausts the shared
/// [`Budget`]; once the wall-clock deadline itself has passed it jumps
/// straight to the greedy rung. Every transition is recorded as a
/// [`DegradationStep`] for the final [`Degradation`] report.
///
/// The state sits behind a [`Mutex`] because concurrent interval solves
/// share one ladder; the lock only guards the tiny rung/step bookkeeping,
/// never a solve itself.
pub(crate) struct MospLadder {
    budget: Budget,
    rungs: Vec<Rung>,
    state: Mutex<LadderState>,
    /// The last rung recorded by a *completed* transition, kept outside
    /// the mutex so poison recovery can restore it (a panicking worker
    /// can poison the lock, never corrupt this).
    last_rung: AtomicUsize,
    /// The run's deterministic fault schedule (`None` in production);
    /// consulted by [`solve_zone_mosp_generic`] on non-salvage solves.
    pub(crate) fault_plan: Option<FaultPlan>,
    /// Metrics sink shared with the run's driver; rung transitions and
    /// (through [`solve_zone_mosp_generic`]) zone solves land here.
    pub(crate) registry: MetricsRegistry,
    /// Event journal shared with the run's driver; zone/layer/batch spans
    /// and rung/budget instants land here (disabled by default).
    pub(crate) journal: TraceJournal,
    /// Progress channel shared with the run's driver; rung transitions
    /// update its rung gauge (disabled by default).
    pub(crate) progress: crate::observe::ProgressTracker,
}

#[derive(Debug, Clone, Copy)]
struct Rung {
    solver: SolverKind,
    label_cap: usize,
}

#[derive(Debug)]
struct LadderState {
    rung: usize,
    steps: Vec<DegradationStep>,
    exhausted_solves: usize,
    total_solves: usize,
}

impl MospLadder {
    pub(crate) fn new(config: &WaveMinConfig, budget: Budget, registry: MetricsRegistry) -> Self {
        let cap = config.label_cap.max(1);
        let base_eps = match config.solver {
            SolverKind::Warburton { epsilon } => epsilon,
            SolverKind::Exact { .. } => 0.01,
        };
        let mut rungs = vec![Rung {
            solver: config.solver,
            label_cap: cap,
        }];
        if matches!(config.solver, SolverKind::Exact { .. }) {
            rungs.push(Rung {
                solver: SolverKind::Warburton { epsilon: base_eps },
                label_cap: cap,
            });
        }
        rungs.push(Rung {
            solver: SolverKind::Warburton {
                epsilon: (base_eps * 5.0).min(0.5),
            },
            label_cap: cap,
        });
        rungs.push(Rung {
            solver: SolverKind::Warburton {
                epsilon: (base_eps * 25.0).min(0.5),
            },
            label_cap: (cap / 4).max(4).min(cap),
        });
        rungs.push(Rung {
            solver: SolverKind::Exact {
                max_labels: Some(1),
            },
            label_cap: 1,
        });
        Self {
            budget,
            rungs,
            state: Mutex::new(LadderState {
                rung: 0,
                steps: Vec::new(),
                exhausted_solves: 0,
                total_solves: 0,
            }),
            last_rung: AtomicUsize::new(0),
            fault_plan: config.fault_plan,
            registry,
            journal: TraceJournal::disabled(),
            progress: crate::observe::ProgressTracker::disabled(),
        }
    }

    /// Locks the ladder state. On poison (a worker panicked while holding
    /// the guard) the last rung recorded by a completed transition is
    /// restored, the poison is cleared, and a trace instant marks the
    /// recovery — the ladder never silently loses its position.
    fn state(&self) -> std::sync::MutexGuard<'_, LadderState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                let rung = self.last_rung.load(Ordering::Relaxed);
                g.rung = rung;
                self.state.clear_poison();
                if self.journal.is_enabled() {
                    self.journal.handle().ladder_restored(rung);
                }
                g
            }
        }
    }

    /// A ladder that never descends (no limits set) and records nothing.
    pub(crate) fn unbudgeted(config: &WaveMinConfig) -> Self {
        Self::new(config, Budget::unlimited(), MetricsRegistry::disabled())
    }

    /// The rung the ladder currently sits on (0 = full fidelity).
    pub(crate) fn current_rung(&self) -> usize {
        self.state().rung
    }

    /// The index of the last (greedy single-label) rung — the one the
    /// salvage path always runs on.
    pub(crate) fn greedy_rung(&self) -> usize {
        self.rungs.len() - 1
    }

    /// Solves one prepared MOSP instance at the current rung, descending
    /// the ladder when the budget runs out mid-solve, with an optional
    /// [`SolveObserver`] receiving the solver's layer/batch spans and
    /// instants. Also returns the rung index the solve actually ran on,
    /// so per-zone accounting can report the worst rung a zone used
    /// rather than inferring it from the (racy) global ladder position.
    pub(crate) fn solve_observed(
        &self,
        graph: &MospGraph,
        src: VertexId,
        dest: VertexId,
        observer: Option<&mut dyn SolveObserver>,
    ) -> Result<(ParetoSet, usize), WaveMinError> {
        if self.budget.deadline_expired() {
            self.jump_to_greedy(Exhaustion::DeadlineExpired);
        }
        let (rung, rung_index) = {
            let st = self.state();
            (self.rungs[st.rung], st.rung)
        };
        let set = match rung.solver {
            SolverKind::Warburton { epsilon } => solve::warburton_observed(
                graph,
                src,
                dest,
                epsilon,
                Some(rung.label_cap),
                &self.budget,
                observer,
            )?,
            SolverKind::Exact { max_labels } => {
                let cap = Some(max_labels.map_or(rung.label_cap, |m| m.min(rung.label_cap)));
                solve::exact_observed(graph, src, dest, cap, &self.budget, observer)?
            }
        };
        let mut st = self.state();
        st.total_solves += 1;
        if let Some(reason) = set.exhaustion() {
            st.exhausted_solves += 1;
            drop(st);
            self.descend(reason);
        }
        Ok((set, rung_index))
    }

    /// Moves one rung down and records what changed.
    fn descend(&self, reason: Exhaustion) {
        let mut st = self.state();
        if st.rung + 1 >= self.rungs.len() {
            return;
        }
        let from = self.rungs[st.rung];
        let to = self.rungs[st.rung + 1];
        st.rung += 1;
        self.last_rung.store(st.rung, Ordering::Relaxed);
        self.registry.record_rung_transition();
        self.progress.set_rung(st.rung);
        if self.journal.is_enabled() {
            self.journal.handle().rung_transition(st.rung);
        }
        match (from.solver, to.solver) {
            (_, SolverKind::Exact { .. }) => {
                st.steps.push(DegradationStep::GreedyFallback { reason });
            }
            (SolverKind::Exact { .. }, SolverKind::Warburton { epsilon }) => {
                st.steps
                    .push(DegradationStep::ExactToApproximate { epsilon, reason });
            }
            (SolverKind::Warburton { epsilon: a }, SolverKind::Warburton { epsilon: b }) => {
                if b > a {
                    st.steps.push(DegradationStep::EpsilonRaised {
                        from: a,
                        to: b,
                        reason,
                    });
                }
                if to.label_cap < from.label_cap {
                    st.steps.push(DegradationStep::LabelCapTightened {
                        from: from.label_cap,
                        to: to.label_cap,
                        reason,
                    });
                }
            }
        }
    }

    /// Drops straight to the last (greedy) rung.
    fn jump_to_greedy(&self, reason: Exhaustion) {
        let mut st = self.state();
        let last = self.rungs.len() - 1;
        if st.rung < last {
            st.rung = last;
            self.last_rung.store(last, Ordering::Relaxed);
            st.steps.push(DegradationStep::GreedyFallback { reason });
            self.registry.record_rung_transition();
            self.progress.set_rung(last);
            if self.journal.is_enabled() {
                self.journal.handle().rung_transition(last);
            }
        }
    }

    /// The machine-readable record of everything that was relaxed, or
    /// `None` for a full-fidelity run.
    pub(crate) fn degradation(&self) -> Option<Degradation> {
        let st = self.state();
        if st.steps.is_empty() && st.exhausted_solves == 0 {
            None
        } else {
            Some(Degradation {
                steps: st.steps.clone(),
                exhausted_solves: st.exhausted_solves,
                total_solves: st.total_solves,
            })
        }
    }

    /// Records a contained zone fault as a degradation step and emits the
    /// trace instant (the containment layer owns the metrics counters).
    pub(crate) fn note_zone_fault(&self, zone: usize) {
        self.state()
            .steps
            .push(DegradationStep::ZoneFaultContained { zone });
        if self.journal.is_enabled() {
            self.journal.handle().zone_fault(zone);
        }
    }

    /// Emits the salvage trace instant for a recovered zone.
    pub(crate) fn note_zone_salvaged(&self, zone: usize) {
        if self.journal.is_enabled() {
            self.journal.handle().zone_salvaged(zone);
        }
    }

    /// The zones recorded as fault-contained so far, sorted and deduped.
    pub(crate) fn faulted_zones(&self) -> Vec<usize> {
        let st = self.state();
        let mut zones: Vec<usize> = st
            .steps
            .iter()
            .filter_map(|s| match s {
                DegradationStep::ZoneFaultContained { zone } => Some(*zone),
                _ => None,
            })
            .collect();
        drop(st);
        zones.sort_unstable();
        zones.dedup();
        zones
    }

    /// The salvage solver: greedy single-label completion (the ladder's
    /// last rung) without touching the ladder state or firing any
    /// injection. Always terminates, still a valid assignment.
    pub(crate) fn solve_salvage(
        &self,
        graph: &MospGraph,
        src: VertexId,
        dest: VertexId,
    ) -> Result<ParetoSet, WaveMinError> {
        Ok(solve::exact_observed(
            graph,
            src,
            dest,
            Some(1),
            &self.budget,
            None,
        )?)
    }
}

/// The MOSP-based inner solver shared by ClkWaveMin and ClkWaveMin-M.
pub(crate) struct MospZoneSolver {
    pub(crate) ladder: MospLadder,
}

impl MospZoneSolver {
    pub(crate) fn new(config: &WaveMinConfig, budget: Budget, registry: MetricsRegistry) -> Self {
        Self {
            ladder: MospLadder::new(config, budget, registry),
        }
    }

    /// Attaches an event journal (disabled by default).
    pub(crate) fn with_journal(mut self, journal: TraceJournal) -> Self {
        self.ladder.journal = journal;
        self
    }

    /// Attaches a progress channel (disabled by default); the ladder
    /// feeds its rung gauge.
    pub(crate) fn with_progress(mut self, progress: crate::observe::ProgressTracker) -> Self {
        self.ladder.progress = progress;
        self
    }
}

impl MospZoneSolver {
    fn solve_zone_inner(
        &self,
        table: &NoiseTable,
        zone: &ZoneProblem,
        interval: &FeasibleInterval,
        extra: &crate::noise_table::BackgroundAccumulator,
        salvage: bool,
    ) -> Result<ZoneSolution, WaveMinError> {
        let mut background = zone.background.clone();
        zone.plan.accumulate_background_into(&mut background, extra);
        let (choices, cost) = solve_zone_mosp_generic(
            &self.ladder,
            zone.id,
            zone.sinks.len(),
            |local, option| {
                let si = zone.sinks[local];
                let o = &table.sinks[si].options[option];
                o.delay_code_for(interval.t_lo, interval.t_hi)
                    .map(|code| (code, zone.option_vector(table, local, option, code)))
            },
            &interval.allowed_for(&zone.sinks),
            &background,
            salvage,
        )?;
        Ok(ZoneSolution { choices, cost })
    }
}

impl ZoneSolver for MospZoneSolver {
    fn solve_zone(
        &self,
        table: &NoiseTable,
        zone: &ZoneProblem,
        interval: &FeasibleInterval,
        extra: &crate::noise_table::BackgroundAccumulator,
    ) -> Result<ZoneSolution, WaveMinError> {
        self.solve_zone_inner(table, zone, interval, extra, false)
    }

    fn salvage_zone(
        &self,
        table: &NoiseTable,
        zone: &ZoneProblem,
        interval: &FeasibleInterval,
        extra: &crate::noise_table::BackgroundAccumulator,
    ) -> Result<ZoneSolution, WaveMinError> {
        self.solve_zone_inner(table, zone, interval, extra, true)
    }

    fn note_zone_fault(&self, zone: usize, _payload: &str) {
        self.ladder.note_zone_fault(zone);
    }

    fn note_zone_salvaged(&self, zone: usize) {
        self.ladder.note_zone_salvaged(zone);
    }
}

impl FeasibleInterval {
    /// The allowed-option lists of the given sinks (indices into the full
    /// sink list), borrowed straight from the interval — the hot path
    /// builds one of these per (zone, interval) pair, so no per-sink
    /// clones.
    pub(crate) fn allowed_for(&self, sinks: &[usize]) -> Vec<&[usize]> {
        sinks
            .iter()
            .map(|&si| self.allowed[si].as_slice())
            .collect()
    }
}

/// Builds the MOSP graph of Algorithm 1 and solves it.
///
/// * `rows` — number of sinks in the zone;
/// * `option_data(local, option)` — the delay-code payload and sampled
///   noise vector of an option, or `None` when it cannot fit the interval;
/// * `allowed[local]` — candidate option indices per sink;
/// * `background` — the non-leaf noise vector carried by the arcs into
///   `dest` (Observation 1).
///
/// Generic over the payload `C` so the multi-mode flow can carry one delay
/// code per power mode.
///
/// With `salvage` set, the solve runs greedy (single label), bypasses the
/// ladder state, and ignores the fault plan — the containment layer's
/// injection-free retry path.
pub(crate) fn solve_zone_mosp_generic<C: Clone + Default>(
    ladder: &MospLadder,
    zone_id: usize,
    rows: usize,
    mut option_data: impl FnMut(usize, usize) -> Option<(C, Vec<f64>)>,
    allowed: &[&[usize]],
    background: &[f64],
    salvage: bool,
) -> Result<(Vec<(usize, C)>, f64), WaveMinError> {
    if rows == 0 {
        return Ok((Vec::new(), background.iter().copied().fold(0.0, f64::max)));
    }
    let plan = if salvage { None } else { ladder.fault_plan };
    if let Some(p) = plan {
        let site = FaultSite::ZoneSolve { zone: zone_id };
        if p.decide(site) == Some(FaultKind::Panic) {
            p.fire_panic(site);
        }
    }
    // A pending NaN poison corrupts the first cost vector built below;
    // the kernels' ingest guard must reject it — `poison_ingest_error`
    // then converts the rejection into a contained `ZoneFault`.
    let mut poison_pending = plan.is_some_and(|p| {
        p.decide(FaultSite::ZoneIngest { zone: zone_id }) == Some(FaultKind::PoisonNan)
    });
    let mut poisoned = false;
    let dims = background.len();
    let mut graph = MospGraph::new(dims);
    let src = graph.add_vertex();
    // Registry: vertex -> (row, option index, payload).
    let mut registry: Vec<(usize, usize, C)> = vec![(usize::MAX, usize::MAX, C::default())];
    let mut prev_row: Vec<VertexId> = vec![src];
    let mut row_vectors: Vec<(VertexId, Vec<f64>)> = Vec::new();

    for (local, opts) in allowed.iter().enumerate().take(rows) {
        let mut this_row = Vec::new();
        row_vectors.clear();
        for &opt in opts.iter() {
            let Some((code, mut vector)) = option_data(local, opt) else {
                continue;
            };
            if poison_pending && !vector.is_empty() {
                vector[0] = f64::NAN;
                poison_pending = false;
                poisoned = true;
            }
            let v = graph.add_vertex();
            registry.push((local, opt, code));
            row_vectors.push((v, vector));
            this_row.push(v);
        }
        if this_row.is_empty() {
            return Err(WaveMinError::NoFeasibleInterval);
        }
        for &(v, ref vector) in &row_vectors {
            for &u in &prev_row {
                // Interning means the fan-in arcs all share one arena slot.
                graph
                    .add_arc_slice(u, v, vector)
                    .map_err(|e| poison_ingest_error(e, zone_id, poisoned))?;
            }
        }
        prev_row = this_row;
    }

    let dest = graph.add_vertex();
    registry.push((usize::MAX, usize::MAX, C::default()));
    for &u in &prev_row {
        graph.add_arc_slice(u, dest, background)?;
    }

    let started = ladder.registry.is_enabled().then(std::time::Instant::now);
    let mut handle = ladder.journal.handle();
    let zone_start = handle.now_ns();
    let (set, rung_used) = if salvage {
        // The salvage retry always runs the greedy rung, injection-free,
        // without touching the ladder state — the greedy rung must show
        // up in this zone's row, not in the global ladder position.
        (
            ladder.solve_salvage(&graph, src, dest)?,
            ladder.greedy_rung(),
        )
    } else if let Some(p) = plan {
        // A fault plan keeps the observed path live even when tracing is
        // off, so layer-site faults fire on untraced runs too.
        let inner: Option<&mut dyn SolveObserver> = if handle.is_enabled() {
            Some(&mut handle)
        } else {
            None
        };
        let mut fo = FaultObserver::new(p, zone_id, &ladder.budget, inner);
        ladder.solve_observed(&graph, src, dest, Some(&mut fo))?
    } else if handle.is_enabled() {
        ladder.solve_observed(&graph, src, dest, Some(&mut handle))?
    } else {
        ladder.solve_observed(&graph, src, dest, None)?
    };
    ladder.registry.record_zone_rung(zone_id, rung_used);
    handle.zone_span(zone_start, zone_id, set.stats(), set.exhaustion().is_some());
    drop(handle);
    if let Some(started) = started {
        ladder.registry.record_zone_solve(
            zone_id,
            &ZoneSolveRecord {
                stats: *set.stats(),
                exhausted: set.exhaustion().is_some(),
                arena_arcs: graph.arc_count() as u64,
                arena_unique_weights: graph.unique_weight_count() as u64,
                wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            },
        );
    }
    let best = set.min_max().ok_or(WaveMinError::NoFeasibleInterval)?;
    let mut choices: Vec<(usize, C)> = vec![(usize::MAX, C::default()); rows];
    for v in &best.vertices {
        let (row, opt, ref code) = registry[v.0];
        if row != usize::MAX {
            choices[row] = (opt, code.clone());
        }
    }
    debug_assert!(choices.iter().all(|(o, _)| *o != usize::MAX));
    Ok((choices, best.max_component()))
}

/// Converts the ingest guard's rejection of a deliberately poisoned
/// vector into a contained [`WaveMinError::ZoneFault`]; genuine invalid
/// weights (not ours) keep their `Mosp` error identity.
fn poison_ingest_error(e: MospError, zone: usize, poisoned: bool) -> WaveMinError {
    match e {
        MospError::InvalidWeight(w) if poisoned && !w.is_finite() => WaveMinError::ZoneFault {
            zone,
            payload: "injected NaN cost vector rejected at ingest".to_string(),
        },
        other => other.into(),
    }
}

/// Single-mode wrapper around [`solve_zone_mosp_generic`] (the production
/// drivers call the generic directly; tests exercise this entry).
#[cfg(test)]
pub(crate) fn solve_zone_mosp(
    ladder: &MospLadder,
    zone_id: usize,
    rows: usize,
    option_data: impl FnMut(usize, usize) -> Option<(Picoseconds, Vec<f64>)>,
    allowed: &[&[usize]],
    background: &[f64],
) -> Result<ZoneSolution, WaveMinError> {
    let (choices, cost) = solve_zone_mosp_generic(
        ladder,
        zone_id,
        rows,
        option_data,
        allowed,
        background,
        false,
    )?;
    Ok(ZoneSolution { choices, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn small_design() -> Design {
        Design::from_benchmark(&Benchmark::s15850(), 7)
    }

    #[test]
    fn run_reduces_or_keeps_peak() {
        let d = small_design();
        let out = ClkWaveMin::new(WaveMinConfig::default()).run(&d).unwrap();
        assert!(out.peak_after.value() <= out.peak_before.value() + 1e-9);
        assert!(out.intervals_tried > 0);
    }

    #[test]
    fn assignment_mixes_polarities() {
        // s13207's zones hold ~4 sinks each, enough for a genuine split
        // (tiny 1-sink zones may legitimately all flip).
        let d = Design::from_benchmark(&Benchmark::s13207(), 1);
        let mut cfg = WaveMinConfig::default().with_sample_count(32);
        cfg.max_intervals = Some(6);
        let out = ClkWaveMin::new(cfg).run(&d).unwrap();
        let (pos, neg) = out.assignment.polarity_counts(&d);
        assert_eq!(pos + neg, d.leaves().len());
        assert!(neg > 0, "some sinks should become inverters");
        assert!(pos > 0, "not everything should flip");
    }

    #[test]
    fn skew_bound_is_respected() {
        let d = small_design();
        let cfg = WaveMinConfig::default();
        let out = ClkWaveMin::new(cfg.clone()).run(&d).unwrap();
        assert!(
            out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9,
            "skew {} exceeds bound {}",
            out.skew_after,
            cfg.skew_bound
        );
    }

    #[test]
    fn infeasible_skew_bound_errors() {
        // One sink pushed 50 ps late: no sub-ps window can cover all.
        let mut d = small_design();
        let victim = d.leaves()[0];
        d.tree.node_mut(victim).delay_trim += Picoseconds::new(50.0);
        let cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(0.5));
        assert_eq!(
            ClkWaveMin::new(cfg).run(&d).unwrap_err(),
            WaveMinError::NoFeasibleInterval
        );
    }

    #[test]
    fn exact_solver_agrees_with_warburton_on_small_design() {
        let d = small_design();
        let mut cfg_w = WaveMinConfig::default().with_sample_count(8);
        cfg_w.solver = SolverKind::Warburton { epsilon: 0.01 };
        let mut cfg_e = cfg_w.clone();
        cfg_e.solver = SolverKind::Exact { max_labels: None };
        let out_w = ClkWaveMin::new(cfg_w).run(&d).unwrap();
        let out_e = ClkWaveMin::new(cfg_e).run(&d).unwrap();
        // ε = 0.01: the approximation must be within ~1 % of exact.
        let ratio = out_w.estimated_cost / out_e.estimated_cost;
        assert!(
            (0.98..=1.02).contains(&ratio),
            "warburton {} vs exact {}",
            out_w.estimated_cost,
            out_e.estimated_cost
        );
    }

    #[test]
    fn more_samples_never_hurt_much() {
        // Table VI shape: peak with |S| = 158 <= peak with |S| = 4 (small
        // slack for evaluation noise).
        let d = small_design();
        let coarse = ClkWaveMin::new(WaveMinConfig::default().with_sample_count(4))
            .run(&d)
            .unwrap();
        let fine = ClkWaveMin::new(WaveMinConfig::default().with_sample_count(158))
            .run(&d)
            .unwrap();
        assert!(
            fine.peak_after.value() <= coarse.peak_after.value() * 1.05,
            "fine {} vs coarse {}",
            fine.peak_after,
            coarse.peak_after
        );
    }

    #[test]
    fn zone_mosp_solver_picks_min_max() {
        // Two sinks, two options each: buffer-ish (10, 0) and
        // inverter-ish (0, 10) per sample slot. Min-max splits them.
        let cfg = WaveMinConfig::default();
        let vectors = [
            vec![vec![10.0, 0.0], vec![0.0, 10.0]],
            vec![vec![10.0, 0.0], vec![0.0, 10.0]],
        ];
        let allowed: Vec<&[usize]> = vec![&[0, 1], &[0, 1]];
        let sol = solve_zone_mosp(
            &MospLadder::unbudgeted(&cfg),
            0,
            2,
            |l, o| Some((Picoseconds::ZERO, vectors[l][o].clone())),
            &allowed,
            &[0.0, 0.0],
        )
        .unwrap();
        assert_eq!(sol.cost, 10.0);
        let (a, b) = (sol.choices[0].0, sol.choices[1].0);
        assert_ne!(a, b, "the two sinks must take opposite polarities");
    }

    #[test]
    fn zone_mosp_respects_background() {
        // Background loads dimension 0, so both sinks should pick option 1.
        let cfg = WaveMinConfig::default();
        let vectors = [
            vec![vec![5.0, 0.0], vec![0.0, 5.0]],
            vec![vec![5.0, 0.0], vec![0.0, 5.0]],
        ];
        let allowed: Vec<&[usize]> = vec![&[0, 1], &[0, 1]];
        let sol = solve_zone_mosp(
            &MospLadder::unbudgeted(&cfg),
            0,
            2,
            |l, o| Some((Picoseconds::ZERO, vectors[l][o].clone())),
            &allowed,
            &[20.0, 0.0],
        )
        .unwrap();
        assert_eq!(sol.choices[0].0, 1);
        assert_eq!(sol.choices[1].0, 1);
        assert_eq!(sol.cost, 20.0);
    }

    #[test]
    fn empty_zone_costs_background_peak() {
        let cfg = WaveMinConfig::default();
        let sol = solve_zone_mosp(
            &MospLadder::unbudgeted(&cfg),
            0,
            0,
            |_, _| None,
            &[],
            &[3.0, 7.0],
        )
        .unwrap();
        assert_eq!(sol.cost, 7.0);
        assert!(sol.choices.is_empty());
    }

    #[test]
    fn ladder_recovers_from_poisoned_state_mutex() {
        let cfg = WaveMinConfig::default();
        let ladder = MospLadder::unbudgeted(&cfg);
        ladder.descend(Exhaustion::WorkCapReached);
        let rung = ladder.current_rung();
        assert!(rung > 0, "descend must move off the top rung");
        // Poison the state mutex: a thread panics while holding the guard,
        // after tearing the rung to a value no rung table contains.
        let join = std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = ladder.state.lock().expect("not yet poisoned");
                g.rung = usize::MAX;
                panic!("poison the ladder");
            })
            .join()
        });
        assert!(join.is_err());
        assert!(ladder.state.is_poisoned());
        // Recovery restores the last-known-good rung and clears the poison.
        assert_eq!(ladder.current_rung(), rung);
        assert!(!ladder.state.is_poisoned());
        assert_eq!(ladder.current_rung(), rung, "stable after recovery");
    }

    #[test]
    fn injected_zone_panic_fires_and_salvage_path_is_injection_free() {
        // rate 1.0 fires at every site, and ZoneSolve sites always panic.
        let plan = crate::fault::FaultPlan { seed: 1, rate: 1.0 };
        let cfg = WaveMinConfig::default().with_fault_plan(Some(plan));
        let ladder = MospLadder::unbudgeted(&cfg);
        let allowed: Vec<&[usize]> = vec![&[0]];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            solve_zone_mosp(
                &ladder,
                3,
                1,
                |_, _| Some((Picoseconds::ZERO, vec![1.0])),
                &allowed,
                &[0.0],
            )
        }));
        let p = caught.expect_err("a rate-1.0 plan must fire");
        let payload = crate::parallel::panic_payload(p.as_ref());
        assert!(
            payload.contains(crate::fault::INJECTED_MARKER),
            "payload '{payload}' lacks the marker"
        );
        // The salvage retry runs with injection disarmed and succeeds.
        let (choices, _) = solve_zone_mosp_generic::<Picoseconds>(
            &ladder,
            3,
            1,
            |_, _| Some((Picoseconds::ZERO, vec![1.0])),
            &allowed,
            &[0.0],
            true,
        )
        .expect("salvage solve is injection-free");
        assert_eq!(choices.len(), 1);
    }
}
