//! Zone storage for the interval framework: materialized or streamed.
//!
//! The framework's historical behaviour materializes every
//! [`ZoneProblem`] — including the big sampled `vectors` slab — before
//! the first solve. At million-sink scale those slabs dominate memory,
//! so [`ZoneStorage`] hides the residency policy behind one `acquire`
//! call:
//!
//! * **Materialized** — every zone built up front, handed out as shared
//!   references. Bit-identical to the historical behaviour.
//! * **Streaming** — zones are characterized the first time an interval
//!   needs them and *archived* compactly (one
//!   [`wavemin_mosp::CompactCosts`] slab per sink, stored at the active
//!   [`wavemin_mosp::CostPrecision`]). Every acquire — including the
//!   first — widens the archived slab back to `f64`, so one zone's
//!   vectors are identical on every interval regardless of precision;
//!   at the default `F64` precision they are also bit-identical to a
//!   materialized run. When the archive exceeds its byte budget the
//!   least-recently-used zone is evicted (`zones_spilled`) and
//!   re-characterized on next use (`zone_recomputes`) — recomputation
//!   reproduces the same bits, so eviction never changes results, only
//!   time.
//!
//! The hot [`ZoneProblem`] handed to a solver is transient: the caller
//! drops it (and the solver's Pareto tables with it) as soon as the
//! zone's choices are folded into the interval's accumulated waveform.

use super::{ZoneProblem, ZoneSpec};
use crate::noise_table::NoiseTable;
use crate::observe::MetricsRegistry;
use std::sync::{Arc, Mutex, PoisonError};
use wavemin_mosp::CompactCosts;

/// The interval framework's zone backing store.
pub(crate) struct ZoneStorage {
    specs: Vec<ZoneSpec>,
    backing: Backing,
}

enum Backing {
    Materialized(Vec<Arc<ZoneProblem>>),
    Streaming(StreamingState),
}

struct StreamingState {
    /// Byte budget for the archived slabs (allocation capacity, the
    /// same accounting as [`CompactCosts::approx_bytes`]).
    limit_bytes: usize,
    archive: Mutex<Archive>,
}

struct Archive {
    slots: Vec<Slot>,
    /// Logical LRU clock: bumped per acquire, copied into the touched
    /// slot.
    clock: u64,
    /// Total archived bytes across all resident slots.
    bytes: usize,
}

#[derive(Default)]
struct Slot {
    compact: Option<CompactZone>,
    last_used: u64,
    bytes: usize,
    /// Whether this zone was ever characterized — a later rebuild is a
    /// recompute, not a first build.
    built: bool,
}

/// One zone's archived vectors: per local sink, a row-major slab with
/// one row per candidate option.
struct CompactZone {
    slabs: Vec<CompactCosts>,
}

impl CompactZone {
    fn from_problem(problem: &ZoneProblem) -> Self {
        let dims = problem.plan.dims();
        let slabs = problem
            .vectors
            .iter()
            .map(|per_sink| {
                let mut slab = CompactCosts::with_active(dims);
                for row in per_sink {
                    slab.push_row(row);
                }
                slab
            })
            .collect();
        Self { slabs }
    }

    fn bytes(&self) -> usize {
        self.slabs
            .iter()
            .map(CompactCosts::approx_bytes)
            .sum::<usize>()
    }

    fn widen(&self, spec: &ZoneSpec) -> ZoneProblem {
        let vectors = self
            .slabs
            .iter()
            .map(|slab| {
                (0..slab.rows())
                    .map(|row| {
                        let mut v = Vec::new();
                        slab.widen_row_into(row, &mut v);
                        v
                    })
                    .collect()
            })
            .collect();
        ZoneProblem {
            id: spec.id,
            sinks: spec.sinks.clone(),
            plan: spec.plan.clone(),
            background: spec.background.clone(),
            vectors,
        }
    }
}

impl ZoneStorage {
    /// Builds every zone up front (the historical behaviour).
    pub(crate) fn materialized(specs: Vec<ZoneSpec>, table: &NoiseTable) -> Self {
        let zones = specs
            .iter()
            .map(|s| Arc::new(s.materialize(table)))
            .collect();
        Self {
            specs,
            backing: Backing::Materialized(zones),
        }
    }

    /// Streams zones through a compact archive bounded by `limit_bytes`
    /// (`usize::MAX` = archive everything, never spill).
    pub(crate) fn streaming(specs: Vec<ZoneSpec>, limit_bytes: usize) -> Self {
        let slots = (0..specs.len()).map(|_| Slot::default()).collect();
        Self {
            specs,
            backing: Backing::Streaming(StreamingState {
                limit_bytes,
                archive: Mutex::new(Archive {
                    slots,
                    clock: 0,
                    bytes: 0,
                }),
            }),
        }
    }

    /// Number of zones.
    pub(crate) fn len(&self) -> usize {
        self.specs.len()
    }

    /// The lightweight spec of zone `zi` (always resident).
    pub(crate) fn spec(&self, zi: usize) -> &ZoneSpec {
        &self.specs[zi]
    }

    /// `true` for a streaming store.
    #[cfg(test)]
    pub(crate) fn is_streaming(&self) -> bool {
        matches!(self.backing, Backing::Streaming(_))
    }

    /// Produces zone `zi` ready to solve. Materialized: a shared
    /// reference. Streaming: widened from the archive, characterizing
    /// (or re-characterizing) the zone first when it is not resident.
    pub(crate) fn acquire(
        &self,
        zi: usize,
        table: &NoiseTable,
        registry: &MetricsRegistry,
    ) -> Arc<ZoneProblem> {
        match &self.backing {
            Backing::Materialized(zones) => Arc::clone(&zones[zi]),
            Backing::Streaming(state) => state.acquire(&self.specs[zi], table, registry),
        }
    }
}

impl StreamingState {
    fn lock(&self) -> std::sync::MutexGuard<'_, Archive> {
        self.archive.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn acquire(
        &self,
        spec: &ZoneSpec,
        table: &NoiseTable,
        registry: &MetricsRegistry,
    ) -> Arc<ZoneProblem> {
        {
            let mut archive = self.lock();
            archive.clock += 1;
            let now = archive.clock;
            let slot = &mut archive.slots[spec.id];
            if let Some(compact) = &slot.compact {
                slot.last_used = now;
                return Arc::new(compact.widen(spec));
            }
        }
        // Miss: characterize outside the lock so other workers keep
        // hitting the archive. The returned problem ALWAYS takes the
        // archive round-trip, so an acquire that characterized and one
        // that widened a resident slab hand out identical vectors at
        // any storage precision.
        let fresh = spec.materialize(table);
        let compact = CompactZone::from_problem(&fresh);
        drop(fresh);
        let problem = compact.widen(spec);

        let mut archive = self.lock();
        archive.clock += 1;
        let now = archive.clock;
        if archive.slots[spec.id].built {
            registry.record_zone_recompute();
        }
        if archive.slots[spec.id].compact.is_none() {
            let bytes = compact.bytes();
            archive.slots[spec.id] = Slot {
                compact: Some(compact),
                last_used: now,
                bytes,
                built: true,
            };
            archive.bytes += bytes;
        } else {
            // A racing worker archived this zone first; keep theirs.
            archive.slots[spec.id].last_used = now;
        }
        // Evict least-recently-used zones (never the one just acquired)
        // until the archive fits its budget again.
        while archive.bytes > self.limit_bytes {
            let victim = archive
                .slots
                .iter()
                .enumerate()
                .filter(|(i, s)| s.compact.is_some() && *i != spec.id)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            let Some(v) = victim else {
                break; // only the hot zone is resident; nothing to spill
            };
            archive.bytes -= archive.slots[v].bytes;
            archive.slots[v].compact = None;
            archive.slots[v].bytes = 0;
            registry.record_zone_spill();
        }
        Arc::new(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaveMinConfig;
    use crate::design::Design;
    use wavemin_clocktree::Benchmark;

    fn fixture() -> (Design, WaveMinConfig, NoiseTable) {
        let design = Design::from_benchmark(&Benchmark::s15850(), 3);
        let config = WaveMinConfig::default();
        let table = NoiseTable::build(&design, &config, 0).expect("characterize");
        (design, config, table)
    }

    #[test]
    fn streaming_acquires_match_materialized_bit_for_bit() {
        let (design, config, table) = fixture();
        let specs = ZoneSpec::build_specs(&design, &config, &table);
        let materialized = ZoneStorage::materialized(specs.clone_specs(), &table);
        let streaming = ZoneStorage::streaming(specs, usize::MAX);
        assert!(streaming.is_streaming());
        assert!(!materialized.is_streaming());
        assert_eq!(streaming.len(), materialized.len());
        let registry = MetricsRegistry::disabled();
        for zi in 0..streaming.len() {
            let m = materialized.acquire(zi, &table, &registry);
            let s = streaming.acquire(zi, &table, &registry);
            assert_eq!(m.vectors.len(), s.vectors.len());
            for (mv, sv) in m.vectors.iter().zip(&s.vectors) {
                for (mo, so) in mv.iter().zip(sv) {
                    let mb: Vec<u64> = mo.iter().map(|x| x.to_bits()).collect();
                    let sb: Vec<u64> = so.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(mb, sb, "zone {zi} vectors differ");
                }
            }
            assert_eq!(m.background, s.background);
            assert_eq!(m.sinks, s.sinks);
        }
    }

    #[test]
    fn tiny_archive_spills_and_recomputes_identically() {
        let (design, config, table) = fixture();
        let specs = ZoneSpec::build_specs(&design, &config, &table);
        assert!(specs.len() > 1, "fixture needs several zones");
        // An archive that holds roughly one zone forces constant
        // eviction on a round-robin access pattern.
        let one_zone = specs.iter().map(|s| s.hot_bytes(&table)).max().unwrap_or(0);
        let streaming = ZoneStorage::streaming(specs.clone_specs(), one_zone.max(1));
        let registry = MetricsRegistry::enabled(false);
        let mut first: Vec<Vec<u64>> = Vec::new();
        for zi in 0..streaming.len() {
            let z = streaming.acquire(zi, &table, &registry);
            first.push(
                z.vectors
                    .iter()
                    .flatten()
                    .flatten()
                    .map(|x| x.to_bits())
                    .collect(),
            );
        }
        for (zi, expect) in first.iter().enumerate() {
            let z = streaming.acquire(zi, &table, &registry);
            let again: Vec<u64> = z
                .vectors
                .iter()
                .flatten()
                .flatten()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(&again, expect, "recompute changed zone {zi}");
        }
        let report = registry
            .report(&crate::observe::ReportContext::default())
            .expect("enabled");
        assert!(report.counters.zones_spilled > 0, "archive never spilled");
        assert!(report.counters.zone_recomputes > 0, "nothing recomputed");
    }

    /// Test-only deep clone of a spec list (specs are not `Clone` in
    /// production code — they are built once per characterization).
    trait CloneSpecs {
        fn clone_specs(&self) -> Vec<ZoneSpec>;
    }

    impl CloneSpecs for Vec<ZoneSpec> {
        fn clone_specs(&self) -> Vec<ZoneSpec> {
            self.iter()
                .map(|s| ZoneSpec {
                    id: s.id,
                    sinks: s.sinks.clone(),
                    plan: s.plan.clone(),
                    background: s.background.clone(),
                })
                .collect()
        }
    }
}
