//! `wavemin` — command-line driver for the WaveMin flow.
//!
//! ```text
//! wavemin synthesize --benchmark s13207 --seed 42 -o tree.clk
//! wavemin optimize   -i tree.clk --algorithm wavemin --kappa 20 -o opt.clk
//! wavemin evaluate   -i opt.clk
//! wavemin svg        -i opt.clk -o opt.svg
//! wavemin liberty    -o nangate45.lib
//! ```
//!
//! Trees use the text format of [`wavemin_clocktree::io`]; libraries use
//! the Liberty subset of [`wavemin_cells::liberty`].

use std::process::ExitCode;
use wavemin::prelude::*;
use wavemin_cells::liberty;
use wavemin_cells::units::{Microns, Picoseconds, Volts};
use wavemin_clocktree::io as tree_io;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        print_usage();
        return Err("no command given".into());
    };
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "synthesize" => synthesize(&flags),
        "optimize" => optimize(&flags),
        "evaluate" => evaluate(&flags),
        "svg" => svg(&flags),
        "liberty" => liberty_dump(&flags),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown command '{other}'"))
        }
    }
}

fn print_usage() {
    eprintln!(
        "wavemin — clock buffer polarity assignment (WaveMin reproduction)

USAGE:
  wavemin synthesize --benchmark <name|all> [--seed N] [-o tree.clk]
  wavemin optimize   -i tree.clk [--algorithm wavemin|fast|peakmin|nieh|samanta|multimode]
                     [--kappa PS] [--samples N] [--lib file.lib]
                     [--power intent.pw] [-o out.clk]
  wavemin evaluate   -i tree.clk [--lib file.lib]
  wavemin svg        -i tree.clk [--lib file.lib] [-o out.svg]
  wavemin liberty    [-o out.lib]

Benchmarks: s13207 s15850 s35932 s38417 s38584 ispd09f31 ispd09f34"
    );
}

struct Flags {
    entries: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut entries = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                let value = iter
                    .peek()
                    .filter(|v| !v.starts_with('-'))
                    .map(|v| (*v).clone())
                    .unwrap_or_default();
                if !value.is_empty() {
                    iter.next();
                }
                entries.push((key.to_owned(), value));
            }
        }
        Self { entries }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn numeric(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }
}

fn benchmark_by_name(name: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name == name)
        .ok_or_else(|| format!("unknown benchmark '{name}'"))
}

fn load_library(flags: &Flags) -> Result<CellLibrary, String> {
    match flags.get("lib") {
        None => Ok(CellLibrary::nangate45()),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            liberty::parse_library(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn load_design(flags: &Flags) -> Result<Design, String> {
    let input = flags.get("i").ok_or("missing -i <tree.clk>")?;
    let text =
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let tree = tree_io::read_tree(&text).map_err(|e| format!("{input}: {e}"))?;
    let lib = load_library(flags)?;
    tree.validate(|c| lib.get(c).is_some())
        .map_err(|e| format!("{input}: {e}"))?;
    let power = match flags.get("power") {
        None => PowerDesign::uniform(Volts::new(1.1)),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            wavemin_clocktree::power_io::read_power(&text)
                .map_err(|e| format!("{path}: {e}"))?
        }
    };
    Ok(Design::new(tree, lib, power))
}

fn write_out(flags: &Flags, default_msg: &str, content: &str) -> Result<(), String> {
    match flags.get("o") {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            eprintln!("{default_msg}");
            print!("{content}");
            Ok(())
        }
    }
}

fn synthesize(flags: &Flags) -> Result<(), String> {
    let name = flags.get("benchmark").ok_or("missing --benchmark")?;
    let seed = flags.numeric("seed")?.unwrap_or(42.0) as u64;
    let bench = benchmark_by_name(name)?;
    let design = Design::from_benchmark(&bench, seed);
    eprintln!(
        "synthesized {}: {} nodes, {} sinks, skew {:.3}",
        bench.name,
        design.tree.len(),
        design.leaves().len(),
        design.skew(0).map_err(|e| e.to_string())?
    );
    write_out(flags, "(no -o given, dumping to stdout)", &tree_io::write_tree(&design.tree))
}

fn optimize(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    let mut config = WaveMinConfig::default();
    if let Some(k) = flags.numeric("kappa")? {
        config.skew_bound = Picoseconds::new(k);
    }
    if let Some(s) = flags.numeric("samples")? {
        config.sample_count = s as usize;
    }
    let algorithm = flags.get("algorithm").unwrap_or("wavemin");
    let outcome = match algorithm {
        "wavemin" => ClkWaveMin::new(config).run(&design),
        "fast" => ClkWaveMinFast::new(config).run(&design),
        "peakmin" => ClkPeakMin::new(config).run(&design),
        "nieh" => NiehOppositePhase::new().run(&design),
        "samanta" => SamantaBalanced::new(Microns::new(50.0)).run(&design),
        "multimode" => ClkWaveMinM::new(config).run(&design),
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    .map_err(|e| e.to_string())?;

    eprintln!(
        "{algorithm}: peak {:.3} -> {:.3} ({:+.2} %), Vdd noise {:.3} -> {:.3}, skew {:.2} -> {:.2}",
        outcome.peak_before,
        outcome.peak_after,
        -outcome.peak_improvement_pct(),
        outcome.vdd_noise_before,
        outcome.vdd_noise_after,
        outcome.skew_before,
        outcome.skew_after,
    );
    let (pos, neg) = outcome.assignment.polarity_counts(&design);
    eprintln!("assignment: {pos} buffers / {neg} inverters over {} sinks", pos + neg);

    let mut optimized = design.clone();
    outcome.assignment.apply_to(&mut optimized);
    if outcome.adb_count + outcome.adi_count > 0 {
        eprintln!(
            "note: {} ADBs / {} ADIs carry per-mode delay codes that the .clk              format does not persist",
            outcome.adb_count, outcome.adi_count
        );
    }
    write_out(
        flags,
        "(no -o given, dumping optimized tree to stdout)",
        &tree_io::write_tree(&optimized.tree),
    )
}

fn evaluate(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    let report = NoiseEvaluator::new(&design)
        .evaluate(0)
        .map_err(|e| e.to_string())?;
    println!("peak current : {:.3}", report.peak);
    println!(
        "peak rail    : {:?} at {:?} edge, t = {:.2}",
        report.peak_rail, report.peak_event, report.peak_time
    );
    println!("VDD noise    : {:.3}", report.vdd_noise);
    println!("Gnd noise    : {:.3}", report.gnd_noise);
    println!("clock skew   : {:.2}", report.skew);
    Ok(())
}

fn svg(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    let rendered = wavemin_clocktree::svg::render(
        &design.tree,
        &design.lib,
        &wavemin_clocktree::svg::SvgOptions::default(),
    );
    write_out(flags, "(no -o given, dumping SVG to stdout)", &rendered)
}

fn liberty_dump(flags: &Flags) -> Result<(), String> {
    let lib = CellLibrary::nangate45();
    write_out(
        flags,
        "(no -o given, dumping library to stdout)",
        &liberty::write_library("nangate45_wavemin", &lib),
    )
}
