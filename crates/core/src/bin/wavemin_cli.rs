//! `wavemin` — command-line driver for the WaveMin flow.
//!
//! ```text
//! wavemin synthesize --benchmark s13207 --seed 42 -o tree.clk
//! wavemin import     --sdf design.sdf --lib cells.lib -o tree.clk
//! wavemin optimize   -i tree.clk --algorithm wavemin --kappa 20 -o opt.clk
//! wavemin optimize   --sdf design.sdf --kappa 40 -o opt.clk
//! wavemin validate   -i tree.clk
//! wavemin evaluate   -i opt.clk
//! wavemin svg        -i opt.clk -o opt.svg
//! wavemin liberty    -o nangate45.lib
//! ```
//!
//! Trees use the text format of [`wavemin_clocktree::io`]; libraries use
//! the Liberty subset of [`wavemin_cells::liberty`].
//!
//! Exit codes: `0` success, `1` runtime error, `2` usage error, `3` the
//! input failed validation, `4` no feasible assignment exists, `5` the
//! run degraded under `--strict`.

use std::process::ExitCode;
use wavemin::prelude::*;
use wavemin::report::degradation_summary;
use wavemin_cells::liberty;
use wavemin_cells::units::{Microns, Picoseconds, Volts};
use wavemin_clocktree::io as tree_io;

/// Exit code for unexpected runtime failures (I/O, solver internals).
const EXIT_RUNTIME: u8 = 1;
/// Exit code for malformed command lines.
const EXIT_USAGE: u8 = 2;
/// Exit code for inputs rejected by upfront validation.
const EXIT_INVALID_INPUT: u8 = 3;
/// Exit code when no assignment can satisfy the skew bound.
const EXIT_INFEASIBLE: u8 = 4;
/// Exit code when `--strict` forbids the degradation that occurred.
const EXIT_DEGRADED: u8 = 5;

/// An error carrying the process exit code it maps to.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            code: EXIT_USAGE,
            message: message.into(),
        }
    }

    fn invalid(message: impl Into<String>) -> Self {
        Self {
            code: EXIT_INVALID_INPUT,
            message: message.into(),
        }
    }

    fn degraded(message: impl Into<String>) -> Self {
        Self {
            code: EXIT_DEGRADED,
            message: message.into(),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self {
            code: EXIT_RUNTIME,
            message,
        }
    }
}

impl From<&WaveMinError> for CliError {
    fn from(e: &WaveMinError) -> Self {
        let code = match e {
            WaveMinError::InvalidConfig(_)
            | WaveMinError::InvalidTree(_)
            | WaveMinError::NonFiniteInput(_)
            | WaveMinError::NegativeInput(_)
            | WaveMinError::EmptySinks
            | WaveMinError::DuplicateSinks(_)
            | WaveMinError::MissingCell(_)
            | WaveMinError::Sdf(_) => EXIT_INVALID_INPUT,
            WaveMinError::NoFeasibleInterval | WaveMinError::MemoryBudget { .. } => EXIT_INFEASIBLE,
            _ => EXIT_RUNTIME,
        };
        Self {
            code,
            message: e.to_string(),
        }
    }
}

impl From<WaveMinError> for CliError {
    fn from(e: WaveMinError) -> Self {
        Self::from(&e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        print_usage();
        return Err(CliError::usage("no command given"));
    };
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "synthesize" => {
            flags.reject_unknown("synthesize", &["benchmark", "seed", "o"])?;
            synthesize(&flags)
        }
        "import" => {
            flags.reject_unknown("import", &["sdf", "lib", "o"])?;
            import_cmd(&flags)
        }
        "optimize" => {
            flags.reject_unknown(
                "optimize",
                &[
                    "i",
                    "sdf",
                    "algorithm",
                    "kappa",
                    "samples",
                    "lib",
                    "power",
                    "time-budget-ms",
                    "threads",
                    "strict",
                    "metrics-out",
                    "trace",
                    "trace-out",
                    "fault-plan",
                    "checkpoint",
                    "resume",
                    "streaming",
                    "memory-budget-mb",
                    "shard-sinks",
                    "progress",
                    "o",
                ],
            )?;
            optimize(&flags)
        }
        "report" => {
            flags.reject_unknown(
                "report",
                &[
                    "i",
                    "sdf",
                    "lib",
                    "power",
                    "kappa",
                    "samples",
                    "threads",
                    "time-budget-ms",
                    "html",
                    "title",
                ],
            )?;
            report_cmd(&flags)
        }
        "explain" => {
            flags.reject_unknown(
                "explain",
                &["i", "sdf", "lib", "power", "top", "svg", "json"],
            )?;
            explain(&flags)
        }
        "check-report" => {
            flags.reject_unknown("check-report", &["i"])?;
            check_report(&flags)
        }
        "validate" => {
            flags.reject_unknown(
                "validate",
                &["i", "sdf", "lib", "power", "kappa", "samples"],
            )?;
            validate(&flags)
        }
        "evaluate" => {
            flags.reject_unknown("evaluate", &["i", "sdf", "lib"])?;
            evaluate(&flags)
        }
        "svg" => {
            flags.reject_unknown("svg", &["i", "sdf", "lib", "o"])?;
            svg(&flags)
        }
        "liberty" => {
            flags.reject_unknown("liberty", &["o"])?;
            liberty_dump(&flags)
        }
        "serve" => {
            flags.reject_unknown(
                "serve",
                &["socket", "workers", "cache-bytes", "threads", "log-json"],
            )?;
            serve_cmd(&flags)
        }
        "client" => {
            flags.reject_unknown("client", &["socket", "json"])?;
            client_cmd(&flags)
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(CliError::usage(format!("unknown command '{other}'")))
        }
    }
}

fn print_usage() {
    eprintln!(
        "wavemin — clock buffer polarity assignment (WaveMin reproduction)

USAGE:
  wavemin synthesize --benchmark <name|all> [--seed N] [-o tree.clk]
  wavemin import     --sdf file.sdf [--lib file.lib] [-o tree.clk]
  wavemin optimize   -i tree.clk | --sdf file.sdf
                     [--algorithm wavemin|fast|peakmin|nieh|samanta|multimode]
                     [--kappa PS] [--samples N] [--lib file.lib]
                     [--power intent.pw] [--time-budget-ms N] [--threads N]
                     [--strict] [--metrics-out report.json] [--trace]
                     [--trace-out trace.json] [--fault-plan seed:rate]
                     [--checkpoint journal.ckpt [--resume]]
                     [--streaming] [--memory-budget-mb N] [--shard-sinks N]
                     [--progress] [-o out.clk]
  wavemin validate   -i tree.clk | --sdf file.sdf [--lib file.lib]
                     [--power intent.pw] [--kappa PS] [--samples N]
  wavemin check-report -i report.json
  wavemin report     -i tree.clk | --sdf file.sdf [--lib file.lib]
                     [--power intent.pw] [--kappa PS] [--samples N]
                     [--threads N] [--time-budget-ms N] [--title T]
                     --html report.html
  wavemin explain    -i tree.clk | --sdf file.sdf [--lib file.lib]
                     [--power intent.pw] [--top N] [--svg waves.svg]
                     [--json attribution.json]
  wavemin evaluate   -i tree.clk | --sdf file.sdf [--lib file.lib]
  wavemin svg        -i tree.clk | --sdf file.sdf [--lib file.lib] [-o out.svg]
  wavemin liberty    [-o out.lib]
  wavemin serve      --socket PATH [--workers N] [--cache-bytes N] [--threads N]
                     [--log-json]
  wavemin client     --socket PATH --json '<request>'

FLAGS:
  --sdf PATH          read the design from a signoff SDF file instead of
                      -i: IOPATH/INTERCONNECT delays recover the topology
                      and per-sink arrivals (uniform 1.1 V supply; not
                      combinable with --power)
  --lib PATH          Liberty-subset cell library (default: built-in
                      nangate45); cell_rise/cell_fall LUTs calibrate the
                      characterizer when wavemin_ attributes are absent
  --time-budget-ms N  wall-clock cap; the solver degrades gracefully and
                      reports what was relaxed instead of running unbounded
  --threads N         worker threads for independent interval/mode solves
                      (default: one per core; results are thread-count
                      independent for unbudgeted runs)
  --strict            fail (exit 5) if the run had to degrade at all
  --metrics-out PATH  write the machine-readable run report (solver
                      metrics, stage timings, per-zone counters) as JSON
  --trace             print stage spans to stderr as they close (also
                      enables metrics collection)
  --trace-out PATH    record the event journal (zone/layer/label-batch
                      spans, ladder and budget instants) and write it as
                      Chrome-trace JSON, viewable in chrome://tracing and
                      ui.perfetto.dev; wavemin-algorithm runs only
  --fault-plan S:R    inject deterministic faults (seed S, per-site rate R
                      in (0,1]) into the zone solvers for chaos testing;
                      also settable via WAVEMIN_FAULTS=seed:rate. Contained
                      faults are salvaged and reported, not fatal
  --checkpoint PATH   append every completed zone's result to a
                      content-hashed journal as it finishes
  --resume            with --checkpoint: reuse journal entries whose keys
                      still match and re-solve only missing/dirty zones
  --streaming         characterize zones lazily and archive them compactly
                      instead of materializing everything up front
                      (bit-identical results; implied by --memory-budget-mb)
  --memory-budget-mb N  cap the whole process at about N MB: the zone
                      archive spills least-recently-used zones and
                      recomputes them on demand; an infeasible budget
                      fails up front (exit 4) instead of thrashing
  --shard-sinks N     wavemin only: split the tree into subtree shards of
                      at most N sinks, solve each independently, merge at
                      the root and re-validate the exact global skew
  --progress          optimize (wavemin only): print a live stderr ticker
                      (zones done/total, ladder rung, RSS) while solving;
                      observation only — results are bit-identical
  --html PATH         report: write a self-contained interactive HTML run
                      report (summary, histograms, attribution table,
                      waveforms, zone timeline; no external references)
  --title T           report: page title (default: the input name)
  --log-json          serve: one structured JSON line on stderr per job
                      lifecycle event (queued/start/done)
  --top N             explain: contributors to print (default 10)
  --socket PATH       serve/client: unix socket the daemon binds/dials
  --workers N         serve: solve-job worker threads (default 2)
  --cache-bytes N     serve: per-session zone-cache byte budget
                      (default 256 MiB); re-loading a session keeps its
                      cache, so ECO re-solves splice unchanged zones
  --json '<request>'  client: one line-delimited JSON request, e.g.
                      '{{\"cmd\":\"load\",\"session\":\"a\",\"benchmark\":\"s15850\"}}'
                      then '{{\"cmd\":\"solve\",\"session\":\"a\"}}'; exits
                      nonzero when the server answers \"ok\":false

EXIT CODES:
  0 success   1 runtime error   2 usage error
  3 input failed validation   4 infeasible   5 degraded under --strict
  (salvaged fault-contained runs exit 0 unless --strict)

Benchmarks: s13207 s15850 s35932 s38417 s38584 ispd09f31 ispd09f34
            scale<N>[k|m] — synthetic trees of N sinks (scale10k,
            scale100k, scale1m) for streaming/sharding scale runs"
    );
}

struct Flags {
    entries: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut entries = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                let value = iter
                    .peek()
                    .filter(|v| !v.starts_with('-'))
                    .map(|v| (*v).clone())
                    .unwrap_or_default();
                if !value.is_empty() {
                    iter.next();
                }
                entries.push((key.to_owned(), value));
            }
        }
        Self { entries }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when a boolean flag like `--strict` was passed.
    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Rejects flags the subcommand does not understand, so a typo like
    /// `--sTrict` fails loudly instead of silently changing semantics.
    fn reject_unknown(&self, command: &str, allowed: &[&str]) -> Result<(), CliError> {
        for (key, _) in &self.entries {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::usage(format!(
                    "unknown flag '--{key}' for '{command}'"
                )));
            }
        }
        Ok(())
    }

    fn numeric(&self, key: &str) -> Result<Option<f64>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("--{key} expects a number, got '{v}'"))),
        }
    }
}

fn benchmark_by_name(name: &str) -> Result<Benchmark, CliError> {
    if let Some(leaves) = parse_scale_name(name) {
        return Ok(Benchmark::scale(name, leaves));
    }
    Benchmark::all()
        .into_iter()
        .find(|b| b.name == name)
        .ok_or_else(|| CliError::usage(format!("unknown benchmark '{name}'")))
}

/// Synthetic scale benchmarks: `scale<N>` with an optional `k`/`m`
/// multiplier suffix — `scale10k`, `scale100k`, `scale1m`, `scale500`.
fn parse_scale_name(name: &str) -> Option<usize> {
    let rest = name.strip_prefix("scale")?;
    let (digits, mult) = match rest.as_bytes().last()? {
        b'k' => (&rest[..rest.len() - 1], 1_000),
        b'm' => (&rest[..rest.len() - 1], 1_000_000),
        _ => (rest, 1),
    };
    let n: usize = digits.parse().ok()?;
    (n > 0).then(|| n.saturating_mul(mult))
}

fn load_library(flags: &Flags) -> Result<CellLibrary, CliError> {
    match flags.get("lib") {
        None => Ok(CellLibrary::nangate45()),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            liberty::parse_library(&text).map_err(|e| CliError::invalid(format!("{path}: {e}")))
        }
    }
}

/// Reads and lowers an SDF file with the `--lib` (default nangate45)
/// library, surfacing parser/topology problems on the invalid-input
/// exit path.
fn import_from_flags(flags: &Flags, path: &str) -> Result<wavemin::io::ImportedDesign, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let lib = load_library(flags)?;
    wavemin::io::import_sdf(&text, lib).map_err(|e| {
        let mut c = CliError::from(&e);
        c.message = format!("{path}: {}", c.message);
        c
    })
}

fn load_design(flags: &Flags) -> Result<Design, CliError> {
    if let Some(path) = flags.get("sdf") {
        if flags.has("i") {
            return Err(CliError::usage("-i and --sdf are mutually exclusive"));
        }
        if flags.has("power") {
            return Err(CliError::usage(
                "--power cannot be combined with --sdf (the SDF lowering fixes a uniform 1.1 V supply)",
            ));
        }
        return Ok(import_from_flags(flags, path)?.design);
    }
    let input = flags
        .get("i")
        .ok_or_else(|| CliError::usage("missing -i <tree.clk> (or --sdf <file.sdf>)"))?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let tree = tree_io::read_tree(&text).map_err(|e| CliError::invalid(format!("{input}: {e}")))?;
    let lib = load_library(flags)?;
    tree.validate(|c| lib.get(c).is_some())
        .map_err(|e| CliError::invalid(format!("{input}: {e}")))?;
    let power = match flags.get("power") {
        None => PowerDesign::uniform(Volts::new(1.1)),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            wavemin_clocktree::power_io::read_power(&text)
                .map_err(|e| CliError::invalid(format!("{path}: {e}")))?
        }
    };
    Ok(Design::new(tree, lib, power))
}

fn write_out(flags: &Flags, default_msg: &str, content: &str) -> Result<(), CliError> {
    match flags.get("o") {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            eprintln!("{default_msg}");
            print!("{content}");
            Ok(())
        }
    }
}

fn synthesize(flags: &Flags) -> Result<(), CliError> {
    let name = flags
        .get("benchmark")
        .ok_or_else(|| CliError::usage("missing --benchmark"))?;
    let seed = flags.numeric("seed")?.unwrap_or(42.0) as u64;
    let bench = benchmark_by_name(name)?;
    let design = Design::from_benchmark(&bench, seed);
    eprintln!(
        "synthesized {}: {} nodes, {} sinks, skew {:.3}",
        bench.name,
        design.tree.len(),
        design.leaves().len(),
        design.skew(0).map_err(|e| e.to_string())?
    );
    write_out(
        flags,
        "(no -o given, dumping to stdout)",
        &tree_io::write_tree(&design.tree),
    )
}

/// `wavemin import --sdf F [--lib F] [-o tree.clk]` — lower a signoff
/// SDF file into the validated tree format the other subcommands read.
fn import_cmd(flags: &Flags) -> Result<(), CliError> {
    let path = flags
        .get("sdf")
        .ok_or_else(|| CliError::usage("missing --sdf <file.sdf>"))?;
    let imported = import_from_flags(flags, path)?;
    eprintln!(
        "imported {path}: {} instances, {} sinks, recovered skew {:.3} ps (choose --kappa >= the skew you intend to allow)",
        imported.instances.len(),
        imported.sink_arrivals.len(),
        imported.recovered_skew.value()
    );
    write_out(
        flags,
        "(no -o given, dumping imported tree to stdout)",
        &tree_io::write_tree(&imported.design.tree),
    )
}

fn build_config(flags: &Flags) -> Result<WaveMinConfig, CliError> {
    let mut config = WaveMinConfig::default();
    if let Some(k) = flags.numeric("kappa")? {
        config.skew_bound = Picoseconds::new(k);
    }
    if let Some(s) = flags.numeric("samples")? {
        config.sample_count = s as usize;
    }
    if let Some(ms) = flags.numeric("time-budget-ms")? {
        if ms < 0.0 {
            return Err(CliError::usage(
                "--time-budget-ms expects a nonnegative count",
            ));
        }
        config.time_budget_ms = Some(ms as u64);
    }
    if let Some(t) = flags.numeric("threads")? {
        if t < 1.0 || t.fract() != 0.0 {
            return Err(CliError::usage("--threads expects a positive integer"));
        }
        config.threads = Some(t as usize);
    }
    // Metrics are collected whenever a sink for them exists: a report
    // file (--metrics-out), live span tracing (--trace), or the event
    // journal (--trace-out).
    config.collect_metrics =
        flags.has("metrics-out") || flags.has("trace") || flags.has("trace-out");
    config.trace_spans = flags.has("trace");
    if let Some(spec) = flags.get("fault-plan") {
        let plan =
            FaultPlan::parse(spec).map_err(|e| CliError::usage(format!("--fault-plan: {e}")))?;
        config.fault_plan = Some(plan);
    }
    if let Some(path) = flags.get("checkpoint") {
        if path.is_empty() {
            return Err(CliError::usage("--checkpoint expects a journal path"));
        }
        config.checkpoint_path = Some(path.to_owned());
    }
    if flags.has("resume") {
        if config.checkpoint_path.is_none() {
            return Err(CliError::usage("--resume requires --checkpoint <path>"));
        }
        config.resume = true;
    }
    if flags.has("streaming") {
        config.streaming = true;
    }
    if let Some(mb) = flags.numeric("memory-budget-mb")? {
        if mb < 1.0 || mb.fract() != 0.0 {
            return Err(CliError::usage(
                "--memory-budget-mb expects a positive integer MB count",
            ));
        }
        config.memory_budget_mb = Some(mb as usize);
    }
    config.validate().map_err(|e| CliError::from(&e))?;
    Ok(config)
}

/// A compact rendering of per-shard sink counts: the full list for a few
/// shards, a min..max range summary for many.
fn summarize_shard_sinks(sinks: &[usize]) -> String {
    if sinks.len() <= 8 {
        format!("{sinks:?}")
    } else {
        let lo = sinks.iter().min().copied().unwrap_or(0);
        let hi = sinks.iter().max().copied().unwrap_or(0);
        format!("[{} shards of {lo}..{hi} sinks]", sinks.len())
    }
}

/// Injected chaos panics are contained and salvaged by the solver, but
/// the default panic hook would still print one message (and backtrace)
/// per fault to stderr, drowning the real output. With a plan active,
/// swallow hook output for payloads carrying the injection marker and
/// defer everything else — genuine panics — to the previous hook.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains(wavemin::fault::INJECTED_MARKER));
        if !injected {
            previous(info);
        }
    }));
}

fn optimize(flags: &Flags) -> Result<(), CliError> {
    let design = load_design(flags)?;
    let config = build_config(flags)?;
    if config.fault_plan.is_some() {
        quiet_injected_panics();
    }
    let algorithm = flags.get("algorithm").unwrap_or("wavemin");
    let trace_out = flags.get("trace-out");
    let journal = if trace_out.is_some() {
        TraceJournal::enabled()
    } else {
        TraceJournal::disabled()
    };
    if config.checkpoint_path.is_some() && algorithm != "wavemin" {
        eprintln!(
            "note: --checkpoint/--resume: only the 'wavemin' algorithm journals zone results"
        );
    }
    let shard_sinks = match flags.numeric("shard-sinks")? {
        Some(n) if n < 1.0 || n.fract() != 0.0 => {
            return Err(CliError::usage(
                "--shard-sinks expects a positive integer sink count",
            ));
        }
        Some(n) => Some(n as usize),
        None => None,
    };
    if shard_sinks.is_some() && algorithm != "wavemin" {
        return Err(CliError::usage(
            "--shard-sinks only applies to the 'wavemin' algorithm",
        ));
    }
    let progress = if flags.has("progress") {
        if algorithm != "wavemin" || shard_sinks.is_some() {
            eprintln!("note: --progress only ticks for the unsharded 'wavemin' algorithm");
        }
        stderr_progress_ticker()
    } else {
        ProgressTracker::disabled()
    };
    let outcome = match (algorithm, shard_sinks) {
        ("wavemin", Some(max_sinks)) => {
            wavemin::shardrun::optimize_sharded(&design, &config, max_sinks).map(|sharded| {
                eprintln!(
                    "sharded: {} shard(s), sinks per shard {}{}",
                    sharded.shard_count,
                    summarize_shard_sinks(&sharded.shard_sinks),
                    if sharded.merge_fallback {
                        " — merged assignment violated the global bound; identity fallback"
                    } else {
                        ""
                    }
                );
                sharded.outcome
            })
        }
        _ => match algorithm {
            "wavemin" => ClkWaveMin::new(config)
                .with_progress(progress)
                .run_traced(&design, &journal),
            "fast" => ClkWaveMinFast::new(config).run(&design),
            "peakmin" => ClkPeakMin::new(config).run(&design),
            "nieh" => NiehOppositePhase::new().run(&design),
            "samanta" => SamantaBalanced::new(Microns::new(50.0)).run(&design),
            "multimode" => ClkWaveMinM::new(config).run(&design),
            other => return Err(CliError::usage(format!("unknown algorithm '{other}'"))),
        },
    }
    .map_err(|e| CliError::from(&e))?;

    if !outcome.faulted_zones.is_empty() {
        eprintln!(
            "note: {} zone worker fault(s) contained (zones {:?}); the salvaged outcome is valid",
            outcome.faulted_zones.len(),
            outcome.faulted_zones
        );
    }
    if let Some(d) = &outcome.degradation {
        eprint!("{}", degradation_summary(Some(d)));
    }
    // Salvaged or budget-relaxed runs still exit 0 by default: the outcome
    // is valid, just degraded. `--strict` turns any degradation into
    // exit 5.
    if flags.has("strict") {
        if !outcome.faulted_zones.is_empty() {
            return Err(CliError::degraded(format!(
                "--strict: {} zone solve(s) faulted and were salvaged on the greedy rung",
                outcome.faulted_zones.len()
            )));
        }
        if let Some(d) = &outcome.degradation {
            return Err(CliError::degraded(format!(
                "--strict: the run relaxed {} of {} zone solves to stay within budget",
                d.exhausted_solves, d.total_solves
            )));
        }
    }
    eprintln!(
        "{algorithm}: peak {:.3} -> {:.3} ({:+.2} %), Vdd noise {:.3} -> {:.3}, skew {:.2} -> {:.2}",
        outcome.peak_before,
        outcome.peak_after,
        -outcome.peak_improvement_pct(),
        outcome.vdd_noise_before,
        outcome.vdd_noise_after,
        outcome.skew_before,
        outcome.skew_after,
    );
    let (pos, neg) = outcome.assignment.polarity_counts(&design);
    eprintln!(
        "assignment: {pos} buffers / {neg} inverters over {} sinks",
        pos + neg
    );
    eprintln!("degenerate zones: {}", outcome.degenerate_zones);
    if let Some(report) = &outcome.report {
        eprintln!(
            "metrics: ladder rung {}, {} zone solves, {} labels created, intern hit rate {:.1} %",
            report.ladder_rung,
            report.counters.zone_solves,
            report.counters.labels_created,
            report.counters.intern_hit_rate() * 100.0
        );
        if let Some(path) = flags.get("metrics-out") {
            let json = serde_json::to_string_pretty(report)
                .map_err(|e| format!("cannot serialize report: {e}"))?;
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote metrics report to {path}");
        }
    } else if flags.has("metrics-out") {
        eprintln!("note: --metrics-out: the '{algorithm}' algorithm does not produce a run report");
    }
    if let Some(path) = trace_out {
        if algorithm != "wavemin" {
            eprintln!("note: --trace-out: only the 'wavemin' algorithm emits solver events");
        }
        let json = journal
            .chrome_trace()
            .ok_or_else(|| CliError::from("trace journal was not enabled".to_owned()))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        let dropped = journal.dropped_events();
        if dropped > 0 {
            eprintln!("note: trace journal dropped {dropped} events to its capacity cap");
        }
        eprintln!("wrote Chrome-trace journal to {path}");
    }

    let mut optimized = design.clone();
    outcome.assignment.apply_to(&mut optimized);
    if outcome.adb_count + outcome.adi_count > 0 {
        eprintln!(
            "note: {} ADBs / {} ADIs carry per-mode delay codes that the .clk              format does not persist",
            outcome.adb_count, outcome.adi_count
        );
    }
    write_out(
        flags,
        "(no -o given, dumping optimized tree to stdout)",
        &tree_io::write_tree(&optimized.tree),
    )
}

/// A [`ProgressTracker`] that prints one stderr line per tick:
/// zones done/total, ladder rung, resident set size, and elapsed time.
fn stderr_progress_ticker() -> ProgressTracker {
    ProgressTracker::enabled(std::time::Duration::from_millis(500), |p: &Progress| {
        let rss_mb = p.rss_bytes as f64 / (1 << 20) as f64;
        eprintln!(
            "progress: {}/{} zone solves · rung {} · rss {:.0} MB · {:.1} s{}",
            p.zones_done,
            p.zones_total,
            p.rung,
            rss_mb,
            p.elapsed_ms as f64 / 1e3,
            if p.done { " · done" } else { "" }
        );
    })
}

/// `wavemin report --html PATH` — run the wavemin flow with metrics and
/// tracing enabled, then render one self-contained interactive HTML
/// report: summary cards, latency histograms, the exact peak-attribution
/// table, overlaid waveforms, the optimized tree, and a zone-solve
/// timeline from the event journal.
fn report_cmd(flags: &Flags) -> Result<(), CliError> {
    use wavemin::reportgen::{render_html, ReportInputs};

    let html_path = flags
        .get("html")
        .ok_or_else(|| CliError::usage("missing --html <report.html>"))?;
    let design = load_design(flags)?;
    let mut config = build_config(flags)?;
    config.collect_metrics = true;
    let journal = TraceJournal::enabled();
    let outcome = ClkWaveMin::new(config)
        .run_traced(&design, &journal)
        .map_err(|e| CliError::from(&e))?;
    let report = outcome
        .report
        .as_ref()
        .ok_or_else(|| CliError::from("run produced no report".to_owned()))?;

    let mut optimized = design.clone();
    outcome.assignment.apply_to(&mut optimized);
    let waveform_svg = report
        .attribution
        .as_ref()
        .map(|attr| attribution_chart(&NoiseEvaluator::new(&optimized), attr))
        .transpose()?;
    let tree_svg = wavemin_clocktree::svg::render(
        &optimized.tree,
        &optimized.lib,
        &wavemin_clocktree::svg::SvgOptions::default(),
    );
    let trace_json = journal.chrome_trace();
    let title = flags
        .get("title")
        .map(str::to_owned)
        .or_else(|| flags.get("i").map(str::to_owned))
        .or_else(|| flags.get("sdf").map(str::to_owned))
        .unwrap_or_else(|| "wavemin run".to_owned());

    let html = render_html(&ReportInputs {
        title: &title,
        report,
        waveform_svg: waveform_svg.as_deref(),
        tree_svg: Some(&tree_svg),
        trace_json: trace_json.as_deref(),
    });
    std::fs::write(html_path, &html).map_err(|e| format!("cannot write {html_path}: {e}"))?;
    eprintln!(
        "report: peak {:.3} -> {:.3}, {} zone solves; wrote {} ({:.0} KiB, self-contained)",
        outcome.peak_before,
        outcome.peak_after,
        report.counters.zone_solves,
        html_path,
        html.len() as f64 / 1024.0
    );
    Ok(())
}

/// Decomposes the worst mode's peak into per-node contributions and
/// prints/exports the attribution (see `NoiseEvaluator::attribution`).
fn explain(flags: &Flags) -> Result<(), CliError> {
    let design = load_design(flags)?;
    let eval = NoiseEvaluator::new(&design);
    let top = flags.numeric("top")?.unwrap_or(10.0).max(1.0) as usize;

    let mut best: Option<PeakAttribution> = None;
    for mode in 0..design.mode_count() {
        let attr = eval.attribution(mode).map_err(|e| CliError::from(&e))?;
        if best.as_ref().is_none_or(|b| attr.peak_ma > b.peak_ma) {
            best = Some(attr);
        }
    }
    let attr = best.ok_or_else(|| CliError::invalid("design has no power modes"))?;

    println!(
        "peak {:.6} mA on the {} rail at the {} edge, t = {:.2} ps (mode {})",
        attr.peak_ma, attr.rail, attr.edge, attr.time_ps, attr.mode
    );
    let mut rows = Vec::new();
    let mut cumulative = 0.0;
    for c in attr.contributions.iter().take(top) {
        cumulative += c.amps_ma;
        let pct = if attr.peak_ma.abs() > 1e-12 {
            cumulative / attr.peak_ma * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            c.node.to_string(),
            c.cell.clone(),
            c.kind.clone(),
            format!("{:.6}", c.amps_ma),
            format!("{pct:.1}"),
        ]);
    }
    print!(
        "{}",
        wavemin::report::render_table(&["node", "cell", "kind", "mA", "cum %"], &rows)
    );
    let hidden = attr.contributions.len().saturating_sub(top);
    if hidden > 0 {
        let rest: f64 = attr.contributions.iter().skip(top).map(|c| c.amps_ma).sum();
        println!("(+ {hidden} more contributors totaling {rest:.6} mA)");
    }
    let sum = attr.contribution_sum();
    println!(
        "contribution sum {:.9} mA (delta vs peak {:.3e})",
        sum,
        (sum - attr.peak_ma).abs()
    );

    if let Some(path) = flags.get("json") {
        let json = serde_json::to_string_pretty(&attr)
            .map_err(|e| format!("cannot serialize attribution: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote attribution to {path}");
    }
    if let Some(path) = flags.get("svg") {
        let svg = attribution_chart(&eval, &attr)?;
        std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote waveform overlay to {path}");
    }
    Ok(())
}

/// The explain SVG: the total rail waveform overlaid with the top
/// contributors' individual waveforms, the argmax instant marked.
fn attribution_chart(eval: &NoiseEvaluator, attr: &PeakAttribution) -> Result<String, CliError> {
    use wavemin_cells::characterize::{ClockEdge, Rail};
    use wavemin_clocktree::svg::{render_waveforms, WaveChartOptions, WaveSeries};

    let rail = if attr.rail == "gnd" {
        Rail::Gnd
    } else {
        Rail::Vdd
    };
    let edge = if attr.edge == "fall" {
        ClockEdge::Fall
    } else {
        ClockEdge::Rise
    };
    let (per_node, total) = eval.waveforms(attr.mode).map_err(|e| CliError::from(&e))?;
    let points = |w: &wavemin_cells::Waveform| -> Vec<(f64, f64)> {
        w.breakpoints()
            .map(|(t, i)| (t.value(), i.to_milliamps().value()))
            .collect()
    };
    let mut series = vec![WaveSeries {
        label: format!("total {} {}", attr.rail, attr.edge),
        color: "#111111".to_owned(),
        points: points(total.get(rail, edge)),
    }];
    for c in attr.contributions.iter().take(4) {
        let Some(waves) = per_node.get(c.node) else {
            continue;
        };
        series.push(WaveSeries {
            label: format!("{} {} ({})", c.kind, c.node, c.cell),
            color: String::new(),
            points: points(waves.get(rail, edge)),
        });
    }
    Ok(render_waveforms(
        &series,
        &WaveChartOptions {
            marker: Some((attr.time_ps, attr.peak_ma)),
            ..WaveChartOptions::default()
        },
    ))
}

fn check_report(flags: &Flags) -> Result<(), CliError> {
    let input = flags
        .get("i")
        .ok_or_else(|| CliError::usage("missing -i <report.json>"))?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let report =
        RunReport::from_json(&text).map_err(|e| CliError::invalid(format!("{input}: {e}")))?;
    report
        .validate()
        .map_err(|e| CliError::invalid(format!("{input}: {e}")))?;
    println!(
        "ok: schema v{}, {} zone solves across {} zones, {} labels created, {} stage spans",
        report.schema_version,
        report.counters.zone_solves,
        report.zones.len(),
        report.counters.labels_created,
        report.stages.len()
    );
    if let Some(attr) = &report.attribution {
        println!(
            "attribution: peak {:.6} mA ({} {}) over {} contributors, sum delta {:.3e}",
            attr.peak_ma,
            attr.rail,
            attr.edge,
            attr.contributions.len(),
            (attr.contribution_sum() - attr.peak_ma).abs()
        );
    }
    Ok(())
}

fn validate(flags: &Flags) -> Result<(), CliError> {
    build_config(flags)?;
    let design = load_design(flags)?;
    design.validate().map_err(|e| CliError::from(&e))?;
    println!(
        "ok: {} nodes, {} sinks, {} power mode(s); configuration and design are valid",
        design.tree.len(),
        design.leaves().len(),
        design.mode_count()
    );
    Ok(())
}

fn evaluate(flags: &Flags) -> Result<(), CliError> {
    let design = load_design(flags)?;
    let report = NoiseEvaluator::new(&design)
        .evaluate(0)
        .map_err(|e| CliError::from(&e))?;
    println!("peak current : {:.3}", report.peak);
    println!(
        "peak rail    : {:?} at {:?} edge, t = {:.2}",
        report.peak_rail, report.peak_event, report.peak_time
    );
    println!("VDD noise    : {:.3}", report.vdd_noise);
    println!("Gnd noise    : {:.3}", report.gnd_noise);
    println!("clock skew   : {:.2}", report.skew);
    Ok(())
}

fn svg(flags: &Flags) -> Result<(), CliError> {
    let design = load_design(flags)?;
    let rendered = wavemin_clocktree::svg::render(
        &design.tree,
        &design.lib,
        &wavemin_clocktree::svg::SvgOptions::default(),
    );
    write_out(flags, "(no -o given, dumping SVG to stdout)", &rendered)
}

#[cfg(unix)]
fn serve_cmd(flags: &Flags) -> Result<(), CliError> {
    let socket = flags
        .get("socket")
        .ok_or_else(|| CliError::usage("missing --socket <path>"))?;
    let workers = match flags.numeric("workers")? {
        None => 2,
        Some(w) if w >= 1.0 && w.fract() == 0.0 => w as usize,
        Some(_) => return Err(CliError::usage("--workers expects a positive integer")),
    };
    let cache_bytes = match flags.numeric("cache-bytes")? {
        None => 256 << 20,
        Some(b) if b >= 0.0 && b.fract() == 0.0 => b as usize,
        Some(_) => return Err(CliError::usage("--cache-bytes expects a byte count")),
    };
    let threads = match flags.numeric("threads")? {
        None => None,
        Some(t) if t >= 1.0 && t.fract() == 0.0 => Some(t as usize),
        Some(_) => return Err(CliError::usage("--threads expects a positive integer")),
    };
    eprintln!(
        "wavemin serve: listening on {socket} ({workers} worker(s), {cache_bytes} cache bytes)"
    );
    wavemin::serve::run(wavemin::serve::ServeOptions {
        socket_path: socket.to_owned(),
        workers,
        cache_bytes,
        threads,
        log_json: flags.has("log-json"),
    })
    .map_err(|e| CliError::from(format!("serve: {e}")))?;
    eprintln!("wavemin serve: drained and stopped");
    Ok(())
}

#[cfg(not(unix))]
fn serve_cmd(_flags: &Flags) -> Result<(), CliError> {
    Err(CliError::usage("'serve' requires a unix platform"))
}

#[cfg(unix)]
fn client_cmd(flags: &Flags) -> Result<(), CliError> {
    let socket = flags
        .get("socket")
        .ok_or_else(|| CliError::usage("missing --socket <path>"))?;
    let line = flags
        .get("json")
        .ok_or_else(|| CliError::usage("missing --json '<request>'"))?;
    let response = wavemin::serve::client_request(socket, line)
        .map_err(|e| CliError::from(format!("client: {e}")))?;
    println!("{response}");
    let ok = serde_json::from_str(&response)
        .ok()
        .and_then(|v| match v {
            serde::Value::Map(entries) => entries
                .into_iter()
                .find_map(|(k, v)| (k == "ok").then_some(matches!(v, serde::Value::Bool(true)))),
            _ => None,
        })
        .unwrap_or(false);
    if ok {
        Ok(())
    } else {
        Err(CliError::from("server returned an error".to_owned()))
    }
}

#[cfg(not(unix))]
fn client_cmd(_flags: &Flags) -> Result<(), CliError> {
    Err(CliError::usage("'client' requires a unix platform"))
}

fn liberty_dump(flags: &Flags) -> Result<(), CliError> {
    let lib = CellLibrary::nangate45();
    write_out(
        flags,
        "(no -o given, dumping library to stdout)",
        &liberty::write_library("nangate45_wavemin", &lib),
    )
}
