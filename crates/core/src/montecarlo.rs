//! Monte-Carlo process-variation study (Section VII-D).
//!
//! Wire widths/lengths, cell widths and threshold voltages are randomized
//! as Gaussians with σ/µ = 5 %; 1000 instances per circuit are analyzed
//! for skew-bound yield and for the spread (normalized standard deviation
//! σ̂/µ̂) of the peak current and VDD/Gnd noises.

use crate::design::Design;
use crate::error::WaveMinError;
use crate::eval::NoiseEvaluator;
use crate::observe::{MetricsRegistry, Stage};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Picoseconds;
use wavemin_clocktree::variation::VariationModel;
use wavemin_mosp::Budget;

/// Summary statistics of one observed quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Observed mean µ̂.
    pub mean: f64,
    /// Observed standard deviation σ̂.
    pub std_dev: f64,
}

impl Spread {
    fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        Self {
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// The paper's normalized deviation σ̂/µ̂.
    #[must_use]
    pub fn normalized(&self) -> f64 {
        if self.mean.abs() < 1e-12 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Results of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloStats {
    /// Number of instances actually analyzed (smaller than the requested
    /// count when the deadline expired mid-study).
    pub runs: usize,
    /// `true` when the study stopped early because its time budget ran
    /// out; the statistics then cover only the completed instances.
    pub deadline_hit: bool,
    /// Fraction of instances whose skew stayed within the bound.
    pub skew_yield: f64,
    /// Peak-current spread (mA).
    pub peak: Spread,
    /// VDD-noise spread (mV).
    pub vdd_noise: Spread,
    /// Ground-noise spread (mV).
    pub gnd_noise: Spread,
}

/// The Monte-Carlo driver.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// The variation magnitudes (default: σ/µ = 5 % everywhere).
    pub model: VariationModel,
    /// Instances to analyze (the paper uses 1000).
    pub runs: usize,
    /// The skew bound checked for yield.
    pub kappa: Picoseconds,
    /// Optional resource budget; when its deadline expires the study
    /// returns partial statistics instead of running to completion.
    pub budget: Budget,
    /// Metrics sink; a disabled registry (the default) records nothing.
    /// Shares the optimization run's registry when handed one via
    /// [`MonteCarlo::with_registry`], so the study appears as a
    /// `monte_carlo` stage in the same [`crate::observe::RunReport`].
    pub registry: MetricsRegistry,
}

impl MonteCarlo {
    /// The paper's setup: 1000 instances, σ/µ = 5 %, κ = 100 ps.
    #[must_use]
    pub fn paper_setup() -> Self {
        Self {
            model: VariationModel::default(),
            runs: 1000,
            kappa: Picoseconds::new(100.0),
            budget: Budget::unlimited(),
            registry: MetricsRegistry::disabled(),
        }
    }

    /// Creates a driver with explicit parameters.
    #[must_use]
    pub fn new(model: VariationModel, runs: usize, kappa: Picoseconds) -> Self {
        Self {
            model,
            runs,
            kappa,
            budget: Budget::unlimited(),
            registry: MetricsRegistry::disabled(),
        }
    }

    /// Bounds the study by a resource budget (deadline-checked between
    /// instances; on expiry the partial statistics are returned with
    /// [`MonteCarloStats::deadline_hit`] set).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Routes the study's span into the given metrics registry.
    #[must_use]
    pub fn with_registry(mut self, registry: MetricsRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Runs the study on the design's current state (mode 0).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn run(&self, design: &Design, seed: u64) -> Result<MonteCarloStats, WaveMinError> {
        let _span = self.registry.span(Stage::MonteCarlo);
        // Sample all variations up front (sequentially, so the result is
        // independent of the worker count), then evaluate in parallel.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = self.model;
        let variations: Vec<_> = (0..self.runs)
            .map(|_| model.sample(&design.tree, &mut rng))
            .collect();

        let workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(self.runs.max(1));
        let chunk = self.runs.div_ceil(workers.max(1)).max(1);
        let budget = &self.budget;
        let reports: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = variations
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        let eval = NoiseEvaluator::new(design);
                        let mut done = Vec::with_capacity(slice.len());
                        for v in slice {
                            // Deadline checks sit between instances so a
                            // partial study is always a prefix of whole
                            // evaluations, never a half-computed one.
                            if budget.deadline_expired() {
                                break;
                            }
                            done.push(eval.evaluate_with_variation(0, v)?);
                        }
                        Ok::<_, WaveMinError>(done)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect::<Result<Vec<_>, _>>()
        })?
        .into_iter()
        .flatten()
        .collect();

        let completed = reports.len();
        let mut peaks = Vec::with_capacity(completed);
        let mut vdds = Vec::with_capacity(completed);
        let mut gnds = Vec::with_capacity(completed);
        let mut pass = 0usize;
        for report in reports {
            if report.skew.value() <= self.kappa.value() + 1e-9 {
                pass += 1;
            }
            peaks.push(report.peak.value());
            vdds.push(report.vdd_noise.value());
            gnds.push(report.gnd_noise.value());
        }
        Ok(MonteCarloStats {
            runs: completed,
            deadline_hit: completed < self.runs,
            skew_yield: if completed == 0 {
                0.0
            } else {
                pass as f64 / completed as f64
            },
            peak: Spread::from_samples(&peaks),
            vdd_noise: Spread::from_samples(&vdds),
            gnd_noise: Spread::from_samples(&gnds),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn spread_statistics() {
        let s = Spread::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.normalized() - s.std_dev / 2.0).abs() < 1e-12);
        assert_eq!(Spread::from_samples(&[]).mean, 0.0);
    }

    #[test]
    fn small_variation_gives_high_yield() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let mc = MonteCarlo::new(VariationModel::default(), 40, Picoseconds::new(100.0));
        let stats = mc.run(&d, 11).unwrap();
        assert_eq!(stats.runs, 40);
        // A balanced tree with κ = 100 ps survives 5 % variation easily.
        assert!(stats.skew_yield > 0.9, "yield {}", stats.skew_yield);
        // Normalized spread should be on the order of the 5 % sigma.
        let norm = stats.peak.normalized();
        assert!((0.005..0.2).contains(&norm), "σ̂/µ̂ {norm}");
    }

    #[test]
    fn tight_bound_lowers_yield() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let loose = MonteCarlo::new(VariationModel::default(), 30, Picoseconds::new(100.0))
            .run(&d, 3)
            .unwrap();
        let tight = MonteCarlo::new(VariationModel::default(), 30, Picoseconds::new(3.0))
            .run(&d, 3)
            .unwrap();
        assert!(tight.skew_yield <= loose.skew_yield);
    }

    #[test]
    fn expired_budget_returns_partial_stats() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let mc = MonteCarlo::new(VariationModel::default(), 50, Picoseconds::new(100.0))
            .with_budget(Budget::with_time_limit(std::time::Duration::ZERO));
        let stats = mc.run(&d, 5).unwrap();
        assert!(stats.deadline_hit, "zero budget must flag the early stop");
        assert!(stats.runs < 50, "ran {} instances", stats.runs);
    }

    #[test]
    fn runs_are_reproducible() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let mc = MonteCarlo::new(VariationModel::default(), 10, Picoseconds::new(50.0));
        assert_eq!(mc.run(&d, 9).unwrap(), mc.run(&d, 9).unwrap());
    }
}
