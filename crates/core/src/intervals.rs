//! Feasible time intervals (Step 1–2 of the PeakMin framework, Fig. 6).
//!
//! Every candidate (sink, cell) pair produces an arrival time; each arrival
//! time `t` defines the interval `[t − κ, t]`. An interval is *feasible*
//! when every sink has at least one candidate whose (possibly
//! delay-adjusted) arrival falls inside it — assigning only such candidates
//! bounds the clock skew by κ. The optimizer then solves one subproblem per
//! feasible interval and keeps the best.

use crate::noise_table::NoiseTable;
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Picoseconds;

/// One feasible interval `[t_hi − κ, t_hi]` plus, per sink, the candidate
/// options allowed inside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibleInterval {
    /// Upper end of the interval.
    pub t_hi: Picoseconds,
    /// Lower end (`t_hi − κ`).
    pub t_lo: Picoseconds,
    /// `allowed[sink][..]` — indices into that sink's option list.
    pub allowed: Vec<Vec<usize>>,
}

impl FeasibleInterval {
    /// The degree of freedom: total allowed candidates over all sinks
    /// (Section VI uses this to prune weak interval intersections).
    #[must_use]
    pub fn degree_of_freedom(&self) -> usize {
        self.allowed.iter().map(Vec::len).sum()
    }
}

/// All feasible intervals of an instance, sorted by decreasing degree of
/// freedom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSet {
    intervals: Vec<FeasibleInterval>,
}

impl IntervalSet {
    /// Generates the feasible intervals of a noise table under skew bound
    /// κ.
    ///
    /// Candidate interval endpoints are all option arrivals (plus, for
    /// adjustable options, the fully-delayed arrival). Intervals whose
    /// allowed sets coincide are deduplicated; the result is sorted by
    /// decreasing degree of freedom and truncated to `max_intervals`.
    #[must_use]
    pub fn generate(table: &NoiseTable, kappa: Picoseconds, max_intervals: Option<usize>) -> Self {
        let mut endpoints: Vec<f64> = Vec::new();
        for sink in &table.sinks {
            for opt in &sink.options {
                endpoints.push(opt.arrival.value());
                if opt.is_adjustable() {
                    endpoints.push(opt.arrival.value() + opt.adjust_range.value());
                }
            }
        }
        endpoints.sort_by(f64::total_cmp);
        endpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        // The sweep below is O(endpoints × Σ options). At million-sink
        // scale that product explodes while the endpoints themselves
        // cluster densely (equalized trees put most arrivals within a
        // few ps), so past a fixed work budget the endpoint list is
        // thinned to an even subsample. Instances below the budget —
        // every conventional benchmark — see the exact legacy sweep.
        let per_endpoint: usize = table.sinks.iter().map(|s| s.options.len()).sum();
        if endpoints.len().saturating_mul(per_endpoint) > SWEEP_WORK_BUDGET {
            let keep = (SWEEP_WORK_BUDGET / per_endpoint.max(1)).max(MIN_SWEPT_ENDPOINTS);
            endpoints = subsample_even(endpoints, keep);
        }

        let mut intervals: Vec<FeasibleInterval> = Vec::new();
        'ep: for &t in &endpoints {
            let t_hi = Picoseconds::new(t);
            let t_lo = Picoseconds::new(t - kappa.value());
            let mut allowed = Vec::with_capacity(table.sinks.len());
            for sink in &table.sinks {
                let opts: Vec<usize> = sink
                    .options
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.delay_code_for(t_lo, t_hi).is_some())
                    .map(|(i, _)| i)
                    .collect();
                if opts.is_empty() {
                    continue 'ep;
                }
                allowed.push(opts);
            }
            if intervals.iter().any(|iv| iv.allowed == allowed) {
                continue;
            }
            intervals.push(FeasibleInterval {
                t_hi,
                t_lo,
                allowed,
            });
        }

        intervals.sort_by_key(|iv| std::cmp::Reverse(iv.degree_of_freedom()));
        if let Some(cap) = max_intervals {
            intervals.truncate(cap);
        }
        Self { intervals }
    }

    /// The feasible intervals (highest degree of freedom first).
    #[must_use]
    pub fn intervals(&self) -> &[FeasibleInterval] {
        &self.intervals
    }

    /// Number of feasible intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// `true` when no interval satisfies the skew bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

/// Cap on `endpoints × Σ options` feasibility probes one generate call
/// may spend (~a second of sweep on one core).
const SWEEP_WORK_BUDGET: usize = 50_000_000;

/// Never thin the candidate endpoints below this many.
const MIN_SWEPT_ENDPOINTS: usize = 16;

/// Keeps `keep` elements of `v` at an even stride, always including the
/// first and last (deterministic; order preserved).
fn subsample_even(v: Vec<f64>, keep: usize) -> Vec<f64> {
    if v.len() <= keep || keep < 2 {
        return v;
    }
    let last = v.len() - 1;
    (0..keep).map(|i| v[i * last / (keep - 1)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaveMinConfig;
    use crate::design::Design;
    use wavemin_clocktree::Benchmark;

    fn table() -> NoiseTable {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap()
    }

    #[test]
    fn balanced_tree_has_feasible_intervals() {
        let t = table();
        let set = IntervalSet::generate(&t, Picoseconds::new(20.0), None);
        assert!(!set.is_empty());
        for iv in set.intervals() {
            assert_eq!(iv.allowed.len(), t.sinks.len());
            assert!((iv.t_hi - iv.t_lo).value() - 20.0 < 1e-9);
            assert!(iv.allowed.iter().all(|a| !a.is_empty()));
        }
    }

    #[test]
    fn allowed_options_really_fit_the_window() {
        let t = table();
        let set = IntervalSet::generate(&t, Picoseconds::new(20.0), None);
        for iv in set.intervals() {
            for (si, opts) in iv.allowed.iter().enumerate() {
                for &oi in opts {
                    let o = &t.sinks[si].options[oi];
                    let code = o.delay_code_for(iv.t_lo, iv.t_hi).unwrap();
                    let adj = o.arrival + code;
                    assert!(adj.value() >= iv.t_lo.value() - 1e-6);
                    assert!(adj.value() <= iv.t_hi.value() + 1e-6);
                }
            }
        }
    }

    #[test]
    fn tight_bound_reduces_freedom() {
        let t = table();
        let wide = IntervalSet::generate(&t, Picoseconds::new(50.0), None);
        let tight = IntervalSet::generate(&t, Picoseconds::new(8.0), None);
        let dof_wide = wide
            .intervals()
            .first()
            .map_or(0, FeasibleInterval::degree_of_freedom);
        let dof_tight = tight
            .intervals()
            .first()
            .map_or(0, FeasibleInterval::degree_of_freedom);
        assert!(dof_wide >= dof_tight);
    }

    #[test]
    fn tiny_bound_leaves_no_freedom() {
        // The synthesized tree is equalized exactly, so even a 0.01 ps
        // bound admits the identity-like assignment — but nothing more.
        let t = table();
        let set = IntervalSet::generate(&t, Picoseconds::new(0.01), None);
        let wide = IntervalSet::generate(&t, Picoseconds::new(20.0), None);
        let tight_dof = set
            .intervals()
            .iter()
            .map(FeasibleInterval::degree_of_freedom)
            .max()
            .unwrap_or(0);
        let wide_dof = wide
            .intervals()
            .iter()
            .map(FeasibleInterval::degree_of_freedom)
            .max()
            .unwrap_or(0);
        assert!(tight_dof < wide_dof, "tight {tight_dof} vs wide {wide_dof}");
    }

    #[test]
    fn disturbed_tree_with_tiny_bound_is_infeasible() {
        // Push one sink 50 ps late: no 0.5 ps window covers every sink.
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let victim = d.leaves()[0];
        d.tree.node_mut(victim).delay_trim += Picoseconds::new(50.0);
        let t = NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap();
        let set = IntervalSet::generate(&t, Picoseconds::new(0.5), None);
        assert!(set.is_empty());
    }

    #[test]
    fn intervals_sorted_by_dof_and_capped() {
        let t = table();
        let set = IntervalSet::generate(&t, Picoseconds::new(20.0), None);
        let dofs: Vec<usize> = set
            .intervals()
            .iter()
            .map(FeasibleInterval::degree_of_freedom)
            .collect();
        assert!(dofs.windows(2).all(|w| w[0] >= w[1]));
        let capped = IntervalSet::generate(&t, Picoseconds::new(20.0), Some(2));
        assert!(capped.len() <= 2);
        if !dofs.is_empty() {
            assert_eq!(
                capped.intervals()[0].degree_of_freedom(),
                dofs[0],
                "cap keeps the best intervals"
            );
        }
    }

    #[test]
    fn endpoint_subsampling_is_even_and_keeps_extremes() {
        let v: Vec<f64> = (0..1000).map(f64::from).collect();
        let s = subsample_even(v.clone(), 16);
        assert_eq!(s.len(), 16);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[15], 999.0);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "order preserved");
        // Below the target the list passes through untouched.
        assert_eq!(subsample_even(v.clone(), 1000), v);
        assert_eq!(subsample_even(vec![1.0, 2.0], 1), vec![1.0, 2.0]);
    }

    #[test]
    fn duplicate_allowed_sets_are_merged() {
        let t = table();
        let set = IntervalSet::generate(&t, Picoseconds::new(20.0), None);
        for (i, a) in set.intervals().iter().enumerate() {
            for b in &set.intervals()[i + 1..] {
                assert_ne!(a.allowed, b.allowed);
            }
        }
    }
}
