//! Per-(sink, cell) noise characterization — the preprocessing of
//! Section IV-B.
//!
//! For every sink and every candidate cell the analytic characterizer
//! produces the cell's current signature under that sink's load; the
//! signature is shifted to absolute time by the sink's input arrival so
//! that arrival-time differences between sinks misalign the pulses exactly
//! as Observation 2 describes. The fixed non-leaf buffering elements are
//! characterized once and accumulated into a background waveform
//! (Observation 1).

use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wavemin_cells::characterize::{ClockEdge, Rail};
use wavemin_cells::lut::NoiseLut;
use wavemin_cells::units::{Femtofarads, Picoseconds};
use wavemin_cells::{CellKind, CellProfile, Waveform};
use wavemin_clocktree::prelude::*;

/// Current waveforms organized by **source event** rather than cell-input
/// edge: `rise` slots describe what happens when the *clock source* rises,
/// regardless of how many inverting stages sit above the cell.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventWaveforms {
    /// `I_DD` during the source-rising event.
    pub vdd_rise: Waveform,
    /// `I_SS` during the source-rising event.
    pub gnd_rise: Waveform,
    /// `I_DD` during the source-falling event.
    pub vdd_fall: Waveform,
    /// `I_SS` during the source-falling event.
    pub gnd_fall: Waveform,
}

impl EventWaveforms {
    /// All-zero waveforms.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Reorients a cell profile: a cell whose input sees `input_edge` when
    /// the source rises contributes its `input_edge` waveforms to the
    /// source-rise slots and the opposite pair to the source-fall slots.
    #[must_use]
    pub fn from_profile(profile: &CellProfile, input_edge: ClockEdge) -> Self {
        match input_edge {
            ClockEdge::Rise => Self {
                vdd_rise: profile.idd_rise.clone(),
                gnd_rise: profile.iss_rise.clone(),
                vdd_fall: profile.idd_fall.clone(),
                gnd_fall: profile.iss_fall.clone(),
            },
            ClockEdge::Fall => Self {
                vdd_rise: profile.idd_fall.clone(),
                gnd_rise: profile.iss_fall.clone(),
                vdd_fall: profile.idd_rise.clone(),
                gnd_fall: profile.iss_rise.clone(),
            },
        }
    }

    /// The waveform on `rail` during the source `event`.
    #[must_use]
    pub fn get(&self, rail: Rail, event: ClockEdge) -> &Waveform {
        match (rail, event) {
            (Rail::Vdd, ClockEdge::Rise) => &self.vdd_rise,
            (Rail::Gnd, ClockEdge::Rise) => &self.gnd_rise,
            (Rail::Vdd, ClockEdge::Fall) => &self.vdd_fall,
            (Rail::Gnd, ClockEdge::Fall) => &self.gnd_fall,
        }
    }

    /// The four `(rail, event)` slots in canonical order.
    pub const SLOTS: [(Rail, ClockEdge); 4] = [
        (Rail::Vdd, ClockEdge::Rise),
        (Rail::Gnd, ClockEdge::Rise),
        (Rail::Vdd, ClockEdge::Fall),
        (Rail::Gnd, ClockEdge::Fall),
    ];

    /// Sums many event waveforms by pooling breakpoints once per slot
    /// (much faster than folding [`Self::plus`] pairwise).
    #[must_use]
    pub fn sum<'a, I>(items: I) -> Self
    where
        I: IntoIterator<Item = &'a EventWaveforms> + Clone,
    {
        Self {
            vdd_rise: Waveform::sum(items.clone().into_iter().map(|w| &w.vdd_rise)),
            gnd_rise: Waveform::sum(items.clone().into_iter().map(|w| &w.gnd_rise)),
            vdd_fall: Waveform::sum(items.clone().into_iter().map(|w| &w.vdd_fall)),
            gnd_fall: Waveform::sum(items.into_iter().map(|w| &w.gnd_fall)),
        }
    }

    /// Pointwise sum.
    #[must_use]
    pub fn plus(&self, other: &Self) -> Self {
        Self {
            vdd_rise: self.vdd_rise.plus(&other.vdd_rise),
            gnd_rise: self.gnd_rise.plus(&other.gnd_rise),
            vdd_fall: self.vdd_fall.plus(&other.vdd_fall),
            gnd_fall: self.gnd_fall.plus(&other.gnd_fall),
        }
    }

    /// Every slot shifted later by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: Picoseconds) -> Self {
        Self {
            vdd_rise: self.vdd_rise.shifted(dt),
            gnd_rise: self.gnd_rise.shifted(dt),
            vdd_fall: self.vdd_fall.shifted(dt),
            gnd_fall: self.gnd_fall.shifted(dt),
        }
    }

    /// Every slot scaled by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        Self {
            vdd_rise: self.vdd_rise.scaled(k),
            gnd_rise: self.gnd_rise.scaled(k),
            vdd_fall: self.vdd_fall.scaled(k),
            gnd_fall: self.gnd_fall.scaled(k),
        }
    }

    /// The worst instantaneous current over all four slots.
    #[must_use]
    pub fn peak(&self) -> wavemin_cells::units::MicroAmps {
        self.vdd_rise
            .peak()
            .max(self.gnd_rise.peak())
            .max(self.vdd_fall.peak())
            .max(self.gnd_fall.peak())
    }

    /// Folds the two clock-edge events into one full-period pair of rail
    /// waveforms: the source rises at `t = 0` and falls at `t = period/2`,
    /// so the fall-event waveforms shift by half a period and add to the
    /// rise-event ones. Returns `(I_DD, I_SS)` over the period.
    ///
    /// When the half-period exceeds the pulse supports (the usual case —
    /// the paper treats the edges as temporally separate), the per-event
    /// peaks are recovered exactly; for very fast clocks the events
    /// overlap and the folded peak can exceed both.
    #[must_use]
    pub fn over_period(&self, period: Picoseconds) -> (Waveform, Waveform) {
        let half = period / 2.0;
        let idd = self.vdd_rise.plus(&self.vdd_fall.shifted(half));
        let iss = self.gnd_rise.plus(&self.gnd_fall.shifted(half));
        (idd, iss)
    }

    /// The union time support over all slots.
    #[must_use]
    pub fn support(&self) -> Option<(Picoseconds, Picoseconds)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (rail, event) in Self::SLOTS {
            if let Some((a, b)) = self.get(rail, event).support() {
                lo = lo.min(a.value());
                hi = hi.max(b.value());
            }
        }
        (lo <= hi).then(|| (Picoseconds::new(lo), Picoseconds::new(hi)))
    }
}

/// Incrementally accumulated background noise for one interval solve.
///
/// Zones inside an interval chain through the noise of the sinks already
/// assigned. Folding every chosen pulse into one pooled
/// [`EventWaveforms`] re-pools the entire breakpoint set per addition —
/// quadratic in sinks, and the dominant cost at 10⁵+-sink scale. This
/// accumulator keeps the pulses in logarithmic merge levels instead (the
/// Bentley–Saxe binary-counter scheme): a push merges geometrically
/// sized pooled waveforms `O(log n)` amortized times, and a sample reads
/// `O(log n)` pooled waveforms. Both the merge order and the sample
/// order are fixed by the push sequence, so results stay bit-identical
/// across residency policies and worker counts.
#[derive(Debug, Default, Clone)]
pub struct BackgroundAccumulator {
    levels: Vec<Option<EventWaveforms>>,
}

impl BackgroundAccumulator {
    /// An empty accumulator (no noise yet).
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Adds one chosen option's event waveforms.
    pub fn push(&mut self, waves: &EventWaveforms) {
        let mut carry = waves.clone();
        for slot in &mut self.levels {
            match slot.take() {
                None => {
                    *slot = Some(carry);
                    return;
                }
                Some(existing) => carry = EventWaveforms::sum([&existing, &carry]),
            }
        }
        self.levels.push(Some(carry));
    }

    /// The resident merge levels, smallest first.
    pub fn levels(&self) -> impl Iterator<Item = &EventWaveforms> {
        self.levels.iter().flatten()
    }

    /// `true` when nothing has been accumulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(Option::is_none)
    }
}

/// One candidate cell for one sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinkOption {
    /// The candidate cell's library name.
    pub cell: String,
    /// The cell kind (determines polarity).
    pub kind: CellKind,
    /// Propagation delay under this sink's load (for the sink's input
    /// edge).
    pub delay: Picoseconds,
    /// Output arrival time: sink input arrival + `delay` (before any
    /// adjustable-delay code).
    pub arrival: Picoseconds,
    /// Current waveforms in absolute time (shifted by the input arrival).
    pub waves: EventWaveforms,
    /// Adjustable-delay range (zero for plain cells).
    pub adjust_range: Picoseconds,
    /// Number of adjustable-delay steps.
    pub adjust_steps: u32,
}

impl SinkOption {
    /// `true` for ADB/ADI candidates.
    #[must_use]
    pub fn is_adjustable(&self) -> bool {
        self.adjust_steps > 0
    }

    /// The smallest quantized delay code whose adjusted arrival falls in
    /// `[lo, hi]`, or `None` when no code fits.
    ///
    /// Non-adjustable options return `Some(0)` iff the raw arrival is in
    /// range.
    #[must_use]
    pub fn delay_code_for(&self, lo: Picoseconds, hi: Picoseconds) -> Option<Picoseconds> {
        let eps = 1e-9;
        if !self.is_adjustable() {
            return (self.arrival.value() >= lo.value() - eps
                && self.arrival.value() <= hi.value() + eps)
                .then_some(Picoseconds::ZERO);
        }
        let step = self.adjust_range.value() / self.adjust_steps as f64;
        let needed = (lo.value() - self.arrival.value()).max(0.0);
        let code = (needed / step).ceil() * step;
        let code = code.min(self.adjust_range.value());
        let adjusted = self.arrival.value() + code;
        (adjusted >= lo.value() - eps && adjusted <= hi.value() + eps)
            .then(|| Picoseconds::new(code))
    }
}

/// Per-sink characterization results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinkEntry {
    /// The leaf node.
    pub node: NodeId,
    /// Clock arrival at the sink's input.
    pub input_arrival: Picoseconds,
    /// Edge the sink's input sees when the source rises.
    pub input_edge: ClockEdge,
    /// Load the sink drives (the FF capacitance).
    pub load: Femtofarads,
    /// Candidate cells for this sink.
    pub options: Vec<SinkOption>,
}

/// The complete preprocessing result for one power mode: every sink's
/// candidate profiles plus the accumulated non-leaf background.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseTable {
    /// The power mode this table was built for.
    pub mode: usize,
    /// Per-sink candidates, in [`ClockTree::leaves`] order.
    pub sinks: Vec<SinkEntry>,
    /// Accumulated non-leaf current background (absolute time).
    pub nonleaf: EventWaveforms,
    /// Per-node non-leaf signatures, for localized (per-zone) backgrounds.
    pub nonleaf_nodes: Vec<(NodeId, EventWaveforms)>,
}

impl NoiseTable {
    /// Builds the table for one power mode.
    ///
    /// Candidate rules follow Section VI: a leaf currently implemented as
    /// an ADB may only choose between the same-drive ADB and ADI; a plain
    /// leaf chooses among `config.assignment_cells` (never ADB/ADI, which
    /// would waste area).
    ///
    /// # Errors
    ///
    /// Fails if timing analysis fails or a candidate cell is missing from
    /// the library.
    pub fn build(
        design: &Design,
        config: &WaveMinConfig,
        mode: usize,
    ) -> Result<Self, WaveMinError> {
        let timing = design.timing(mode)?;
        let tree = &design.tree;
        let supply = design.power.supply_for(tree, mode);

        // Non-leaf background: every non-leaf cell under its real load,
        // slew and supply, shifted to absolute time. ADB extra delay of
        // this mode shifts the pulse too.
        let mut nonleaf_nodes = Vec::new();
        for id in tree.non_leaves() {
            let node = tree.node(id);
            let cell = design
                .lib
                .get(&node.cell)
                .ok_or_else(|| WaveMinError::MissingCell(node.cell.clone()))?;
            let profile = design.chr.characterize(
                cell,
                timing.load[id.0],
                timing.input_slew[id.0],
                supply_at(&supply, id),
            );
            let extra = design.mode_adjust[mode]
                .extra_delay
                .get(id.0)
                .copied()
                .unwrap_or(Picoseconds::ZERO);
            let waves = EventWaveforms::from_profile(&profile, timing.input_edge[id.0])
                .shifted(timing.input_arrival[id.0] + extra);
            nonleaf_nodes.push((id, waves));
        }
        let nonleaf = EventWaveforms::sum(nonleaf_nodes.iter().map(|(_, w)| w));

        // Optional LUT characterization (Section IV-B): one table per
        // (cell, supply), shared by all sinks.
        let mut luts: HashMap<(String, u64), NoiseLut> = HashMap::new();
        let lut_loads = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let lut_slews = [10.0, 20.0, 35.0, 60.0, 100.0, 170.0, 300.0];

        // Per-sink candidate profiles.
        let mut sinks = Vec::new();
        for id in tree.leaves() {
            let node = tree.node(id);
            let current = design
                .lib
                .get(&node.cell)
                .ok_or_else(|| WaveMinError::MissingCell(node.cell.clone()))?;
            let candidate_names: Vec<String> = if current.kind() == CellKind::Adb {
                let drive = current.drive();
                vec![format!("ADB_X{drive}"), format!("ADI_X{drive}")]
            } else {
                config.assignment_cells.clone()
            };
            let input_arrival = timing.input_arrival[id.0];
            let input_edge = timing.input_edge[id.0];
            let load = node.sink_cap;
            let vdd = supply_at(&supply, id);
            // Section IV-B: the profiling slew must track the slew actually
            // observed in the tree (the paper uses a fixed 20 ps because its
            // trees settle there; ours vary more, so use the analyzed slew,
            // never sharper than the configured profiling slew).
            let slew = timing.input_slew[id.0].max(config.profiling_slew);
            let mut options = Vec::with_capacity(candidate_names.len());
            for name in candidate_names {
                let cell = design
                    .lib
                    .get(&name)
                    .ok_or_else(|| WaveMinError::MissingCell(name.clone()))?;
                let profile = if config.lut_characterization {
                    let key = (name.clone(), vdd.value().to_bits());
                    luts.entry(key)
                        .or_insert_with(|| {
                            NoiseLut::build(&design.chr, cell, &lut_loads, &lut_slews, vdd)
                        })
                        .lookup(load, slew)
                } else {
                    design.chr.characterize(cell, load, slew, vdd)
                };
                let delay = profile.delay(input_edge);
                options.push(SinkOption {
                    cell: name,
                    kind: cell.kind(),
                    delay,
                    arrival: input_arrival + delay,
                    waves: EventWaveforms::from_profile(&profile, input_edge)
                        .shifted(input_arrival),
                    adjust_range: cell.delay_range(),
                    adjust_steps: cell.delay_steps(),
                });
            }
            sinks.push(SinkEntry {
                node: id,
                input_arrival,
                input_edge,
                load,
                options,
            });
        }

        Ok(Self {
            mode,
            sinks,
            nonleaf,
            nonleaf_nodes,
        })
    }

    /// The accumulated background of the non-leaf elements placed inside a
    /// rectangle (the paper optimizes noise zone by zone because it is a
    /// local effect, so only nearby non-leaf noise competes with a zone's
    /// leaves).
    #[must_use]
    pub fn nonleaf_within(
        &self,
        tree: &wavemin_clocktree::ClockTree,
        rect: &wavemin_clocktree::geom::Rect,
    ) -> EventWaveforms {
        let local: Vec<&EventWaveforms> = self
            .nonleaf_nodes
            .iter()
            .filter(|(id, _)| rect.contains(tree.node(*id).location))
            .map(|(_, w)| w)
            .collect();
        EventWaveforms::sum(local.iter().copied())
    }

    /// Index of the [`SinkEntry`] for a node, if it is a sink.
    #[must_use]
    pub fn sink_index(&self, node: NodeId) -> Option<usize> {
        self.sinks.iter().position(|s| s.node == node)
    }
}

fn supply_at(supply: &SupplyAssignment, id: NodeId) -> wavemin_cells::units::Volts {
    supply.at(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaveMinConfig;
    use wavemin_cells::units::MicroAmps;

    fn design() -> Design {
        Design::from_benchmark(&Benchmark::s15850(), 1)
    }

    #[test]
    fn table_covers_all_sinks_and_candidates() {
        let d = design();
        let cfg = WaveMinConfig::default();
        let t = NoiseTable::build(&d, &cfg, 0).unwrap();
        assert_eq!(t.sinks.len(), d.leaves().len());
        for s in &t.sinks {
            assert_eq!(s.options.len(), 4);
            for o in &s.options {
                assert!(o.arrival > s.input_arrival);
                assert!(o.waves.peak() > MicroAmps::ZERO);
            }
        }
    }

    #[test]
    fn nonleaf_background_is_nonzero() {
        let d = design();
        let t = NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap();
        assert!(t.nonleaf.peak() > MicroAmps::ZERO);
        // Background support overlaps the sink switching window.
        let (lo, hi) = t.nonleaf.support().unwrap();
        assert!(lo < hi);
    }

    #[test]
    fn buffer_and_inverter_options_differ_in_rail() {
        let d = design();
        let t = NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap();
        let s = &t.sinks[0];
        let buf = s
            .options
            .iter()
            .find(|o| o.kind == CellKind::Buffer)
            .unwrap();
        let inv = s
            .options
            .iter()
            .find(|o| o.kind == CellKind::Inverter)
            .unwrap();
        // Buffer: main VDD pulse at source rise; inverter: at source fall.
        assert!(buf.waves.vdd_rise.peak() > buf.waves.vdd_fall.peak());
        assert!(inv.waves.vdd_fall.peak() > inv.waves.vdd_rise.peak());
    }

    #[test]
    fn waves_are_shifted_by_arrival() {
        let d = design();
        let t = NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap();
        let s = &t.sinks[0];
        let o = &s.options[0];
        let (lo, _) = o.waves.support().unwrap();
        // The pulse cannot start before the sink's input arrival.
        assert!(lo >= s.input_arrival - Picoseconds::new(1e-9));
    }

    #[test]
    fn adb_leaf_gets_adb_adi_candidates() {
        let mut d = design();
        let leaf = d.leaves()[0];
        d.tree.set_cell(leaf, "ADB_X8");
        let t = NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap();
        let entry = t.sinks.iter().find(|s| s.node == leaf).unwrap();
        let names: Vec<&str> = entry.options.iter().map(|o| o.cell.as_str()).collect();
        assert_eq!(names, vec!["ADB_X8", "ADI_X8"]);
        assert!(entry.options.iter().all(SinkOption::is_adjustable));
    }

    #[test]
    fn delay_code_quantization() {
        let opt = SinkOption {
            cell: "ADB_X8".into(),
            kind: CellKind::Adb,
            delay: Picoseconds::new(20.0),
            arrival: Picoseconds::new(100.0),
            waves: EventWaveforms::zero(),
            adjust_range: Picoseconds::new(20.0),
            adjust_steps: 8,
        };
        // Window already contains the arrival: zero code.
        assert_eq!(
            opt.delay_code_for(Picoseconds::new(95.0), Picoseconds::new(105.0)),
            Some(Picoseconds::ZERO)
        );
        // Needs 6 ps: steps are 2.5 ps, so the code is 7.5 ps.
        assert_eq!(
            opt.delay_code_for(Picoseconds::new(106.0), Picoseconds::new(120.0)),
            Some(Picoseconds::new(7.5))
        );
        // Window beyond the range: infeasible.
        assert_eq!(
            opt.delay_code_for(Picoseconds::new(125.0), Picoseconds::new(140.0)),
            None
        );
        // Window entirely before the arrival: infeasible (delay only adds).
        assert_eq!(
            opt.delay_code_for(Picoseconds::new(80.0), Picoseconds::new(90.0)),
            None
        );
    }

    #[test]
    fn non_adjustable_delay_code() {
        let opt = SinkOption {
            cell: "BUF_X8".into(),
            kind: CellKind::Buffer,
            delay: Picoseconds::new(20.0),
            arrival: Picoseconds::new(100.0),
            waves: EventWaveforms::zero(),
            adjust_range: Picoseconds::ZERO,
            adjust_steps: 0,
        };
        assert_eq!(
            opt.delay_code_for(Picoseconds::new(95.0), Picoseconds::new(105.0)),
            Some(Picoseconds::ZERO)
        );
        assert_eq!(
            opt.delay_code_for(Picoseconds::new(101.0), Picoseconds::new(105.0)),
            None
        );
    }

    #[test]
    fn event_waveform_reorientation() {
        let d = design();
        let lib = &d.lib;
        let cell = lib.get("BUF_X4").unwrap();
        let profile = d.chr.characterize(
            cell,
            Femtofarads::new(5.0),
            Picoseconds::new(20.0),
            wavemin_cells::units::Volts::new(1.1),
        );
        let rise = EventWaveforms::from_profile(&profile, ClockEdge::Rise);
        let fall = EventWaveforms::from_profile(&profile, ClockEdge::Fall);
        // Under a flipped input edge the rise/fall slots swap.
        assert_eq!(rise.vdd_rise, fall.vdd_fall);
        assert_eq!(rise.gnd_fall, fall.gnd_rise);
    }

    #[test]
    fn period_folding_separates_slow_clocks() {
        let d = design();
        let t = NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap();
        // A slow clock: the events stay disjoint, so the folded peak is
        // the max of the per-event peaks.
        let (idd, iss) = t.nonleaf.over_period(Picoseconds::new(10_000.0));
        let expect_idd = t.nonleaf.vdd_rise.peak().max(t.nonleaf.vdd_fall.peak());
        assert!((idd.peak() - expect_idd).abs().value() < 1e-6);
        let expect_iss = t.nonleaf.gnd_rise.peak().max(t.nonleaf.gnd_fall.peak());
        assert!((iss.peak() - expect_iss).abs().value() < 1e-6);
    }

    #[test]
    fn period_folding_overlaps_fast_clocks() {
        let d = design();
        let t = NoiseTable::build(&d, &WaveMinConfig::default(), 0).unwrap();
        // An absurdly fast clock folds both events on top of each other.
        let (idd, _) = t.nonleaf.over_period(Picoseconds::new(0.0));
        let separate = t.nonleaf.vdd_rise.peak().max(t.nonleaf.vdd_fall.peak());
        assert!(idd.peak() >= separate);
    }

    #[test]
    fn lut_characterization_tracks_direct() {
        let d = design();
        let direct_cfg = WaveMinConfig::default();
        let lut_cfg = WaveMinConfig {
            lut_characterization: true,
            ..WaveMinConfig::default()
        };
        let direct = NoiseTable::build(&d, &direct_cfg, 0).unwrap();
        let lut = NoiseTable::build(&d, &lut_cfg, 0).unwrap();
        for (a, b) in direct.sinks.iter().zip(&lut.sinks) {
            for (oa, ob) in a.options.iter().zip(&b.options) {
                let derr = (oa.delay - ob.delay).abs().value() / oa.delay.value();
                assert!(derr < 0.05, "{}: delay err {derr}", oa.cell);
                let perr =
                    (oa.waves.peak() - ob.waves.peak()).abs().value() / oa.waves.peak().value();
                assert!(perr < 0.25, "{}: peak err {perr}", oa.cell);
            }
        }
    }

    #[test]
    fn slots_order_is_canonical() {
        let slots = EventWaveforms::SLOTS;
        assert_eq!(slots[0], (Rail::Vdd, ClockEdge::Rise));
        assert_eq!(slots[3], (Rail::Gnd, ClockEdge::Fall));
    }
}
