//! A minimal deterministic worker pool for independent solve units.
//!
//! The pipeline fans out over *independent* units — feasible intervals in
//! the single-mode flow, interval intersections and power modes in the
//! multi-mode flow, Monte-Carlo instances — while zones inside one unit
//! stay sequential (their accumulated-background chaining is order
//! dependent). Results always come back in input order, so the outcome of
//! a run is independent of the worker count: the same contiguous-chunk
//! scheme as [`crate::montecarlo`], built on [`std::thread::scope`].

/// The process-wide default worker count, resolved from
/// [`std::thread::available_parallelism`] exactly once and cached for the
/// life of the process. A long-lived serve session must not change its
/// `map_ordered` batching (and thus its work partitioning) mid-flight
/// just because the surrounding cgroup was resized between jobs.
pub(crate) fn available_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Maps `f` over `items`, returning results in input order.
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on
/// the calling thread — no pool, no overhead. Otherwise the items are
/// split into at most `threads` contiguous chunks, one scoped worker per
/// chunk. `f` receives the item's index alongside the item. Worker panics
/// propagate to the caller.
pub(crate) fn map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(ci * chunk + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Renders a caught panic payload as text. `panic!` carries a `&str` or
/// `String` in practice; anything else gets a stable placeholder so the
/// containment layer can always produce a typed error.
pub(crate) fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = map_ordered(&items, threads, |i, &x| {
                assert_eq!(i, x, "index matches item");
                x * 2
            });
            let want: Vec<usize> = items.iter().map(|x| x * 2).collect();
            assert_eq!(out, want, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let none: Vec<u8> = Vec::new();
        assert!(map_ordered(&none, 4, |_, &x| x).is_empty());
        assert_eq!(map_ordered(&[7u8], 4, |_, &x| x), vec![7]);
    }

    #[test]
    fn results_are_thread_count_independent() {
        let items: Vec<f64> = (0..37).map(|i| f64::from(i) * 1.5).collect();
        let seq = map_ordered(&items, 1, |i, &x| x + i as f64);
        for threads in [2, 4, 16] {
            assert_eq!(map_ordered(&items, threads, |i, &x| x + i as f64), seq);
        }
    }

    #[test]
    fn error_results_stay_in_place() {
        let items: Vec<u32> = (0..10).collect();
        let out = map_ordered(&items, 3, |_, &x| if x == 4 { Err("boom") } else { Ok(x) });
        assert_eq!(out[4], Err("boom"));
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 9);
    }

    #[test]
    #[should_panic(expected = "worker panic propagates")]
    fn panics_propagate() {
        let items: Vec<u8> = (0..8).collect();
        let _ = map_ordered(&items, 4, |_, &x| {
            assert!(x < 6, "worker panic propagates");
            x
        });
    }

    #[test]
    fn panic_payload_extracts_strings() {
        let e = std::panic::catch_unwind(|| panic!("static message")).expect_err("panics");
        assert_eq!(panic_payload(e.as_ref()), "static message");
        let e = std::panic::catch_unwind(|| panic!("formatted {}", 7)).expect_err("panics");
        assert_eq!(panic_payload(e.as_ref()), "formatted 7");
        let e = std::panic::catch_unwind(|| std::panic::panic_any(42_u32)).expect_err("panics");
        assert_eq!(panic_payload(e.as_ref()), "non-string panic payload");
    }
}
