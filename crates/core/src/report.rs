//! Plain-text table formatting shared by the benchmark binaries.

use crate::algo::{Degradation, DegradationStep};

/// Renders an aligned plain-text table: a header row, a separator, then
/// the data rows. Columns are right-aligned except the first.
///
/// # Example
///
/// ```
/// use wavemin::report::render_table;
///
/// let s = render_table(
///     &["ckt", "peak (mA)"],
///     &[vec!["s15850".into(), "3.01".into()]],
/// );
/// assert!(s.contains("s15850"));
/// assert!(s.lines().count() >= 3);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    fn push_row(out: &mut String, widths: &[usize], cells: &[String]) {
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map_or("", String::as_str);
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("  {cell:>w$}"));
            }
        }
        out.push('\n');
    }
    let mut out = String::new();
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    push_row(&mut out, &widths, &header_cells);
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        push_row(&mut out, &widths, row);
    }
    out
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn fmt(value: f64, decimals: usize) -> String {
    if value.is_nan() {
        "-".to_owned()
    } else {
        format!("{value:.decimals$}")
    }
}

/// Formats a signed percentage (one decimal).
#[must_use]
pub fn pct(value: f64) -> String {
    if value.is_nan() {
        "-".to_owned()
    } else {
        format!("{value:+.2}")
    }
}

/// Renders a run's degradation record as a short human-readable block
/// (one line per relaxation step, plus an exhausted/total solve count),
/// or "no degradation" when the run finished at full fidelity.
#[must_use]
pub fn degradation_summary(degradation: Option<&Degradation>) -> String {
    match degradation {
        None => "no degradation: all zone solves ran at full fidelity".to_owned(),
        Some(d) => {
            let faults = d
                .steps
                .iter()
                .filter(|s| matches!(s, DegradationStep::ZoneFaultContained { .. }))
                .count();
            // A fault-only record has nothing budget-related to report;
            // don't open with a confusing "0/0 solves exhausted" line.
            let mut out = if d.exhausted_solves > 0 || faults == 0 {
                format!(
                    "degraded: {}/{} zone solves exhausted their budget\n",
                    d.exhausted_solves, d.total_solves
                )
            } else {
                "degraded: stayed within budget, but zone workers faulted\n".to_owned()
            };
            if faults > 0 {
                out.push_str(&format!(
                    "  {faults} zone worker fault(s) contained and salvaged\n"
                ));
            }
            // Contained faults are aggregated above (a chaos run can have
            // hundreds); only the fidelity-relaxation steps are itemized.
            for step in &d.steps {
                if matches!(step, DegradationStep::ZoneFaultContained { .. }) {
                    continue;
                }
                out.push_str(&format!("  - {step}\n"));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::DegradationStep;
    use wavemin_mosp::Exhaustion;

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "22.5".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    fn fmt_and_pct() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(f64::NAN, 2), "-");
        assert_eq!(pct(12.345), "+12.35");
        assert_eq!(pct(-3.0), "-3.00");
        assert_eq!(pct(f64::NAN), "-");
    }

    #[test]
    fn short_rows_are_padded() {
        let s = render_table(&["a", "b", "c"], &[vec!["x".into()]]);
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn degradation_summary_renders_steps() {
        assert!(degradation_summary(None).contains("no degradation"));
        let d = Degradation {
            steps: vec![DegradationStep::ExactToApproximate {
                epsilon: 0.01,
                reason: Exhaustion::DeadlineExpired,
            }],
            exhausted_solves: 1,
            total_solves: 4,
        };
        let s = degradation_summary(Some(&d));
        assert!(s.contains("1/4"), "{s}");
        assert!(s.contains("0.01"), "{s}");
    }

    #[test]
    fn degradation_summary_counts_contained_faults() {
        let d = Degradation {
            steps: vec![
                DegradationStep::ZoneFaultContained { zone: 2 },
                DegradationStep::ZoneFaultContained { zone: 7 },
            ],
            exhausted_solves: 0,
            total_solves: 9,
        };
        let s = degradation_summary(Some(&d));
        assert!(s.contains("2 zone worker fault(s)"), "{s}");
        assert!(
            !s.contains("zone 7"),
            "contained faults are aggregated, not itemized: {s}"
        );
    }
}
