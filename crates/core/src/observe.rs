//! Observability: pipeline stage spans, a lock-free solver metrics
//! registry, and the machine-readable [`RunReport`].
//!
//! The registry is an `Option<Arc<_>>`: a disabled registry carries no
//! allocation and every recording call is a single branch on `None`, so
//! the instrumented hot paths cost nothing when metrics are off (the
//! `metrics_overhead` criterion group in `wavemin-bench` keeps that
//! honest). When enabled, all counters are relaxed [`AtomicU64`]s —
//! recording from the `parallel::map_ordered` workers never locks, and
//! because every counter is a commutative sum, the aggregates are
//! identical for any worker count on an unbudgeted run.
//!
//! Span hierarchy (one [`Stage`] per pipeline phase):
//!
//! ```text
//! run
//! ├── characterization      NoiseTable::build (per power mode)
//! ├── zoning                feasible intervals/intersections + ZoneProblem
//! ├── zone_solve            one span per zone × interval MOSP solve
//! ├── intersection          one span per multi-mode intersection solve
//! ├── validation            exact skew re-check of ranked candidates
//! └── monte_carlo           process-variation study
//! ```

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};
use wavemin_mosp::SolveStats;

/// The instrumented pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Per-mode candidate characterization ([`crate::NoiseTable`] build).
    Characterization,
    /// Feasible interval/intersection generation and zone partitioning.
    Zoning,
    /// One zone × interval MOSP (or greedy) subproblem solve.
    ZoneSolve,
    /// One multi-mode interval-intersection solve (all zones chained).
    Intersection,
    /// Exact skew re-validation of the ranked candidates.
    Validation,
    /// Monte-Carlo process-variation study.
    MonteCarlo,
}

impl Stage {
    const COUNT: usize = 6;

    const ALL: [Stage; Stage::COUNT] = [
        Stage::Characterization,
        Stage::Zoning,
        Stage::ZoneSolve,
        Stage::Intersection,
        Stage::Validation,
        Stage::MonteCarlo,
    ];

    /// The stage's stable snake_case name (the key used in reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Characterization => "characterization",
            Stage::Zoning => "zoning",
            Stage::ZoneSolve => "zone_solve",
            Stage::Intersection => "intersection",
            Stage::Validation => "validation",
            Stage::MonteCarlo => "monte_carlo",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Characterization => 0,
            Stage::Zoning => 1,
            Stage::ZoneSolve => 2,
            Stage::Intersection => 3,
            Stage::Validation => 4,
            Stage::MonteCarlo => 5,
        }
    }
}

/// Per-stage span accumulator: entry count and total wall time.
#[derive(Default)]
struct StageCell {
    count: AtomicU64,
    total_ns: AtomicU64,
}

/// Global run counters (relaxed atomics; every one is a commutative sum).
#[derive(Default)]
struct Counters {
    labels_created: AtomicU64,
    labels_pruned: AtomicU64,
    solver_work: AtomicU64,
    pareto_paths: AtomicU64,
    zone_solves: AtomicU64,
    exhausted_solves: AtomicU64,
    arena_arcs: AtomicU64,
    arena_unique_weights: AtomicU64,
    rung_transitions: AtomicU64,
    dominance_checks: AtomicU64,
    dominance_skipped: AtomicU64,
    zone_faults: AtomicU64,
    zone_salvages: AtomicU64,
    zones_reused: AtomicU64,
    zones_spilled: AtomicU64,
    zone_recomputes: AtomicU64,
    /// Gauge, not a sum: the largest VmRSS sampled at a pipeline
    /// checkpoint (`fetch_max`).
    peak_rss_bytes: AtomicU64,
    /// Gauge: the RSS sampled when the interval solves finished, before
    /// final validation (the phase the memory budget governs).
    solve_rss_bytes: AtomicU64,
}

/// Per-zone counters, same units as the matching [`Counters`] fields.
#[derive(Default)]
struct ZoneCell {
    solves: AtomicU64,
    labels_created: AtomicU64,
    labels_pruned: AtomicU64,
    solver_work: AtomicU64,
    pareto_paths: AtomicU64,
    exhausted_solves: AtomicU64,
    dominance_checks: AtomicU64,
    dominance_skipped: AtomicU64,
    wall_ns: AtomicU64,
    /// Worst (highest-index) degradation-ladder rung any solve of this
    /// zone actually ran on, via `fetch_max`. Distinguishes a salvaged
    /// zone's forced greedy rung from the global ladder position.
    worst_rung: AtomicU64,
}

/// Number of histogram buckets in the fixed log2 layout: bucket 0 holds
/// exact zeros, bucket `i` (1..=63) holds values of bit length `i`
/// (the range `[2^(i-1), 2^i - 1]`), bucket 64 holds `2^63` and above.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length (0 for 0). Exact by
/// construction — no floating point, so the same value always lands in
/// the same bucket on every platform.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value bucket `index` can hold (the `le` bound Prometheus
/// exposition uses). Indices past the table clamp to `u64::MAX`.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

/// One live log2-bucket histogram (relaxed atomics, like [`Counters`]).
/// Bucket increments and the count/sum/min/max are each commutative, so
/// the aggregate is worker-count independent like every other counter.
struct HistCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first observation (`fetch_min`).
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistCell {
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds an already-snapshotted histogram in (daemon-level
    /// aggregation across jobs).
    fn absorb(&self, h: &RunHistogram) {
        if h.count == 0 {
            return;
        }
        for b in &h.buckets {
            let i = (b.index as usize).min(HISTOGRAM_BUCKETS - 1);
            self.buckets[i].fetch_add(b.count, Ordering::Relaxed);
        }
        self.count.fetch_add(h.count, Ordering::Relaxed);
        self.sum.fetch_add(h.sum, Ordering::Relaxed);
        self.min.fetch_min(h.min, Ordering::Relaxed);
        self.max.fetch_max(h.max, Ordering::Relaxed);
    }

    fn snapshot(&self) -> RunHistogram {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let count = load(&self.count);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = load(b);
                (c > 0).then_some(HistogramBucket {
                    index: i as u32,
                    count: c,
                })
            })
            .collect();
        let mut h = RunHistogram {
            count,
            sum: load(&self.sum),
            min: if count == 0 { 0 } else { load(&self.min) },
            max: load(&self.max),
            buckets,
            p50: 0,
            p90: 0,
            p99: 0,
        };
        h.refresh_quantiles();
        h
    }
}

/// The registry's live histograms (one [`HistCell`] per distribution).
#[derive(Default)]
struct Hists {
    zone_solve_ns: HistCell,
    labels_per_zone: HistCell,
    front_size: HistCell,
    job_wall_ns: HistCell,
}

impl Hists {
    fn snapshot(&self) -> RunHistograms {
        RunHistograms {
            zone_solve_ns: self.zone_solve_ns.snapshot(),
            labels_per_zone: self.labels_per_zone.snapshot(),
            front_size: self.front_size.snapshot(),
            job_wall_ns: self.job_wall_ns.snapshot(),
        }
    }
}

struct Inner {
    trace: bool,
    counters: Counters,
    stages: [StageCell; Stage::COUNT],
    hists: Hists,
    /// Indexed by [`crate::algo::ZoneProblem`] id. Behind an `RwLock` only
    /// for growth ([`MetricsRegistry::ensure_zones`]); recording takes the
    /// read lock and bumps atomics, so concurrent workers never contend on
    /// anything but the cells themselves.
    zones: RwLock<Vec<ZoneCell>>,
}

/// The run-wide metrics sink threaded through the optimization pipeline.
///
/// Cheap to clone (it is an `Option<Arc<_>>`); a disabled registry is a
/// `None` and every method short-circuits on the first branch.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl MetricsRegistry {
    /// A registry that records nothing (also the `Default`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A collecting registry; `trace` additionally prints every finished
    /// span to stderr as it closes.
    #[must_use]
    pub fn enabled(trace: bool) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                trace,
                counters: Counters::default(),
                stages: Default::default(),
                hists: Hists::default(),
                zones: RwLock::new(Vec::new()),
            })),
        }
    }

    /// Builds the registry a run should use: collecting iff the config
    /// asks for metrics or span tracing.
    #[must_use]
    pub fn from_config(config: &crate::config::WaveMinConfig) -> Self {
        if config.collect_metrics || config.trace_spans {
            Self::enabled(config.trace_spans)
        } else {
            Self::disabled()
        }
    }

    /// `true` when this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span for `stage`; the guard records the elapsed wall time
    /// (and bumps the stage count) when dropped. No-op when disabled.
    #[must_use]
    pub fn span(&self, stage: Stage) -> SpanGuard {
        SpanGuard {
            active: self
                .inner
                .as_ref()
                .map(|inner| (Arc::clone(inner), stage, Instant::now())),
        }
    }

    /// Pre-sizes the per-zone table so worker threads only ever take the
    /// read lock. Growth is monotonic — multi-mode margin retries re-use
    /// the ids of earlier builds and keep accumulating into them.
    pub fn ensure_zones(&self, zones: usize) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut table = inner.zones.write().unwrap_or_else(PoisonError::into_inner);
        if table.len() < zones {
            table.resize_with(zones, ZoneCell::default);
        }
    }

    /// Records one finished zone subproblem solve: the DP's label/work
    /// counters, the graph's arena interning footprint, whether the solve
    /// exhausted its budget, and its wall time. Updates the global and the
    /// per-zone counters from the same numbers, so `global == Σ zones`
    /// holds by construction.
    pub fn record_zone_solve(&self, zone: usize, solve: &ZoneSolveRecord) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let c = &inner.counters;
        c.labels_created
            .fetch_add(solve.stats.labels_created, Ordering::Relaxed);
        c.labels_pruned
            .fetch_add(solve.stats.labels_pruned, Ordering::Relaxed);
        c.solver_work.fetch_add(solve.stats.work, Ordering::Relaxed);
        c.pareto_paths
            .fetch_add(solve.stats.front_size, Ordering::Relaxed);
        c.zone_solves.fetch_add(1, Ordering::Relaxed);
        c.exhausted_solves
            .fetch_add(u64::from(solve.exhausted), Ordering::Relaxed);
        c.arena_arcs.fetch_add(solve.arena_arcs, Ordering::Relaxed);
        c.arena_unique_weights
            .fetch_add(solve.arena_unique_weights, Ordering::Relaxed);
        c.dominance_checks
            .fetch_add(solve.stats.dominance_checks, Ordering::Relaxed);
        c.dominance_skipped
            .fetch_add(solve.stats.dominance_skipped, Ordering::Relaxed);

        let stage = &inner.stages[Stage::ZoneSolve.index()];
        stage.count.fetch_add(1, Ordering::Relaxed);
        stage.total_ns.fetch_add(solve.wall_ns, Ordering::Relaxed);

        inner.hists.zone_solve_ns.record(solve.wall_ns);
        inner
            .hists
            .labels_per_zone
            .record(solve.stats.labels_created);
        inner.hists.front_size.record(solve.stats.front_size);

        {
            let table = inner.zones.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(cell) = table.get(zone) {
                cell.solves.fetch_add(1, Ordering::Relaxed);
                cell.labels_created
                    .fetch_add(solve.stats.labels_created, Ordering::Relaxed);
                cell.labels_pruned
                    .fetch_add(solve.stats.labels_pruned, Ordering::Relaxed);
                cell.solver_work
                    .fetch_add(solve.stats.work, Ordering::Relaxed);
                cell.pareto_paths
                    .fetch_add(solve.stats.front_size, Ordering::Relaxed);
                cell.exhausted_solves
                    .fetch_add(u64::from(solve.exhausted), Ordering::Relaxed);
                cell.dominance_checks
                    .fetch_add(solve.stats.dominance_checks, Ordering::Relaxed);
                cell.dominance_skipped
                    .fetch_add(solve.stats.dominance_skipped, Ordering::Relaxed);
                cell.wall_ns.fetch_add(solve.wall_ns, Ordering::Relaxed);
                return;
            }
        }
        // A zone id past the table means `ensure_zones` was not called
        // first; grow and retry rather than silently dropping the row.
        self.ensure_zones(zone + 1);
        let table = inner.zones.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(cell) = table.get(zone) {
            cell.solves.fetch_add(1, Ordering::Relaxed);
            cell.labels_created
                .fetch_add(solve.stats.labels_created, Ordering::Relaxed);
            cell.labels_pruned
                .fetch_add(solve.stats.labels_pruned, Ordering::Relaxed);
            cell.solver_work
                .fetch_add(solve.stats.work, Ordering::Relaxed);
            cell.pareto_paths
                .fetch_add(solve.stats.front_size, Ordering::Relaxed);
            cell.exhausted_solves
                .fetch_add(u64::from(solve.exhausted), Ordering::Relaxed);
            cell.dominance_checks
                .fetch_add(solve.stats.dominance_checks, Ordering::Relaxed);
            cell.dominance_skipped
                .fetch_add(solve.stats.dominance_skipped, Ordering::Relaxed);
            cell.wall_ns.fetch_add(solve.wall_ns, Ordering::Relaxed);
        }
    }

    /// Records the ladder rung one solve of `zone` actually used; the
    /// zone's row keeps the worst (highest) rung seen. A salvaged zone is
    /// recorded on the greedy rung even while the global ladder sits on a
    /// better one — the per-zone row is where that asymmetry is visible.
    pub fn record_zone_rung(&self, zone: usize, rung: usize) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        {
            let table = inner.zones.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(cell) = table.get(zone) {
                cell.worst_rung.fetch_max(rung as u64, Ordering::Relaxed);
                return;
            }
        }
        self.ensure_zones(zone + 1);
        let table = inner.zones.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(cell) = table.get(zone) {
            cell.worst_rung.fetch_max(rung as u64, Ordering::Relaxed);
        }
    }

    /// Counts one degradation-ladder rung transition.
    pub fn record_rung_transition(&self) {
        if let Some(inner) = self.inner.as_ref() {
            inner
                .counters
                .rung_transitions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one contained zone-worker fault (panic or poisoned input).
    pub fn record_zone_fault(&self) {
        if let Some(inner) = self.inner.as_ref() {
            inner.counters.zone_faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one successful salvage retry of a faulted zone.
    pub fn record_zone_salvage(&self) {
        if let Some(inner) = self.inner.as_ref() {
            inner.counters.zone_salvages.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one zone result served from the checkpoint journal instead
    /// of being re-solved.
    pub fn record_zone_reused(&self) {
        if let Some(inner) = self.inner.as_ref() {
            inner.counters.zones_reused.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one archived zone evicted from the streaming archive to
    /// stay under the memory budget.
    pub fn record_zone_spill(&self) {
        if let Some(inner) = self.inner.as_ref() {
            inner.counters.zones_spilled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one zone re-characterized after its archived copy was
    /// spilled.
    pub fn record_zone_recompute(&self) {
        if let Some(inner) = self.inner.as_ref() {
            inner
                .counters
                .zone_recomputes
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Samples the process RSS and folds it into the peak-RSS gauge
    /// (`fetch_max`). Called at pipeline checkpoints — characterization,
    /// each interval's completion, validation. No-op when the registry
    /// is disabled or `/proc/self/status` is unavailable.
    pub fn sample_rss(&self) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        if let Some(rss) = current_rss_bytes() {
            inner
                .counters
                .peak_rss_bytes
                .fetch_max(rss, Ordering::Relaxed);
        }
    }

    /// Samples the RSS into the end-of-solve gauge (and the peak). The
    /// memory budget governs the solve phase — characterization, zone
    /// residency, interval accumulation; final validation re-evaluates
    /// the whole design and is measured but not budgeted.
    pub fn sample_solve_rss(&self) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        if let Some(rss) = current_rss_bytes() {
            inner
                .counters
                .peak_rss_bytes
                .fetch_max(rss, Ordering::Relaxed);
            inner
                .counters
                .solve_rss_bytes
                .fetch_max(rss, Ordering::Relaxed);
        }
    }

    /// Records one finished job's end-to-end wall time into the
    /// job-wall-clock histogram (the serve daemon calls this once per
    /// completed solve job).
    pub fn record_job_wall_ns(&self, wall_ns: u64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.hists.job_wall_ns.record(wall_ns);
        }
    }

    /// Folds an already-reported set of histograms into this registry —
    /// how the serve daemon aggregates per-job distributions into one
    /// scrapeable process-lifetime view.
    pub fn absorb_histograms(&self, hists: &RunHistograms) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        inner.hists.zone_solve_ns.absorb(&hists.zone_solve_ns);
        inner.hists.labels_per_zone.absorb(&hists.labels_per_zone);
        inner.hists.front_size.absorb(&hists.front_size);
        inner.hists.job_wall_ns.absorb(&hists.job_wall_ns);
    }

    /// Snapshots the current histograms without assembling a full report
    /// (the Prometheus exposition path).
    #[must_use]
    pub fn histograms(&self) -> Option<RunHistograms> {
        self.inner.as_ref().map(|inner| inner.hists.snapshot())
    }

    /// Assembles the [`RunReport`], or `None` when the registry is
    /// disabled. The caller supplies run-level context the registry
    /// cannot observe itself.
    #[must_use]
    pub fn report(&self, ctx: &ReportContext) -> Option<RunReport> {
        let inner = self.inner.as_ref()?;
        let c = &inner.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let cell = &inner.stages[s.index()];
                StageTiming {
                    stage: s.name().to_owned(),
                    count: load(&cell.count),
                    total_ns: load(&cell.total_ns),
                }
            })
            .filter(|t| t.count > 0)
            .collect();
        let zones = {
            let table = inner.zones.read().unwrap_or_else(PoisonError::into_inner);
            table
                .iter()
                .enumerate()
                .map(|(id, cell)| ZoneMetrics {
                    zone: id,
                    solves: load(&cell.solves),
                    labels_created: load(&cell.labels_created),
                    labels_pruned: load(&cell.labels_pruned),
                    solver_work: load(&cell.solver_work),
                    pareto_paths: load(&cell.pareto_paths),
                    exhausted_solves: load(&cell.exhausted_solves),
                    dominance_checks: load(&cell.dominance_checks),
                    dominance_skipped: load(&cell.dominance_skipped),
                    wall_ns: load(&cell.wall_ns),
                    worst_rung: load(&cell.worst_rung),
                })
                .collect()
        };
        Some(RunReport {
            schema_version: RunReport::SCHEMA_VERSION,
            threads: ctx.threads,
            kernel: ctx.kernel.to_owned(),
            counters: RunCounters {
                labels_created: load(&c.labels_created),
                labels_pruned: load(&c.labels_pruned),
                solver_work: load(&c.solver_work),
                pareto_paths: load(&c.pareto_paths),
                zone_solves: load(&c.zone_solves),
                exhausted_solves: load(&c.exhausted_solves),
                arena_arcs: load(&c.arena_arcs),
                arena_unique_weights: load(&c.arena_unique_weights),
                rung_transitions: load(&c.rung_transitions),
                budget_units: ctx.budget_units,
                dominance_checks: load(&c.dominance_checks),
                dominance_skipped: load(&c.dominance_skipped),
                zone_faults: load(&c.zone_faults),
                zone_salvages: load(&c.zone_salvages),
                zones_reused: load(&c.zones_reused),
                zones_spilled: load(&c.zones_spilled),
                zone_recomputes: load(&c.zone_recomputes),
                peak_rss_bytes: load(&c.peak_rss_bytes),
                solve_rss_bytes: load(&c.solve_rss_bytes),
            },
            stages,
            zones,
            degenerate_zones: ctx.degenerate_zones,
            ladder_rung: ctx.ladder_rung,
            attribution: None,
            histograms: inner.hists.snapshot(),
        })
    }
}

/// Live guard of an open [`Stage`] span; records on drop.
pub struct SpanGuard {
    active: Option<(Arc<Inner>, Stage, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((inner, stage, started)) = self.active.take() else {
            return;
        };
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let cell = &inner.stages[stage.index()];
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        if inner.trace {
            eprintln!(
                "[trace] span={} elapsed_us={:.1}",
                stage.name(),
                elapsed_ns as f64 / 1e3
            );
        }
    }
}

/// One solver progress snapshot, emitted periodically while a solve
/// runs and once more (with `done = true`) when it finishes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Progress {
    /// Zone × interval subproblems completed so far.
    pub zones_done: u64,
    /// Total subproblems the run will solve.
    pub zones_total: u64,
    /// Current (worst seen) degradation-ladder rung.
    pub rung: u64,
    /// Process RSS at the snapshot, bytes (0 where `/proc` is missing).
    pub rss_bytes: u64,
    /// Wall time since the solve started, milliseconds.
    pub elapsed_ms: u64,
    /// `true` only on the final event the guard emits at drop.
    pub done: bool,
}

struct ProgressInner {
    zones_done: AtomicU64,
    zones_total: AtomicU64,
    rung: AtomicU64,
    interval: Duration,
    sink: Box<dyn Fn(&Progress) + Send + Sync>,
}

impl ProgressInner {
    fn emit(&self, started: Instant, done: bool) {
        let p = Progress {
            zones_done: self.zones_done.load(Ordering::Relaxed),
            zones_total: self.zones_total.load(Ordering::Relaxed),
            rung: self.rung.load(Ordering::Relaxed),
            rss_bytes: current_rss_bytes().unwrap_or(0),
            elapsed_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
            done,
        };
        (self.sink)(&p);
    }
}

/// The solver's progress channel: a clock (ticker thread) driving a
/// caller-supplied sink with [`Progress`] snapshots.
///
/// Shaped exactly like [`MetricsRegistry`]: an `Option<Arc<_>>`, so a
/// disabled tracker is a `None` and every hook on the solve path is a
/// single branch. The tracker is strictly an observer — it reads its own
/// atomics and the RSS gauge, never solver state — so enabled and
/// disabled runs produce bit-identical outcomes (the
/// `progress_differential` test keeps that honest).
#[derive(Clone, Default)]
pub struct ProgressTracker {
    inner: Option<Arc<ProgressInner>>,
}

impl std::fmt::Debug for ProgressTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressTracker")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl ProgressTracker {
    /// A tracker that emits nothing (also the `Default`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A tracker calling `sink` every `interval` while a solve runs
    /// (plus one final `done` event). The sink runs on the ticker
    /// thread, never on a solver worker.
    #[must_use]
    pub fn enabled<F>(interval: Duration, sink: F) -> Self
    where
        F: Fn(&Progress) + Send + Sync + 'static,
    {
        Self {
            inner: Some(Arc::new(ProgressInner {
                zones_done: AtomicU64::new(0),
                zones_total: AtomicU64::new(0),
                rung: AtomicU64::new(0),
                interval,
                sink: Box::new(sink),
            })),
        }
    }

    /// `true` when this tracker emits events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Counts one completed zone × interval subproblem.
    pub fn zone_done(&self) {
        if let Some(inner) = self.inner.as_ref() {
            inner.zones_done.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the ladder rung the solve currently runs on (`fetch_max`:
    /// the ladder only descends).
    pub fn set_rung(&self, rung: usize) {
        if let Some(inner) = self.inner.as_ref() {
            inner.rung.fetch_max(rung as u64, Ordering::Relaxed);
        }
    }

    /// Starts the ticker for one solve of `zones_total` subproblems; the
    /// returned guard stops it (and emits the final `done` event) on
    /// drop. Each tick also folds a fresh RSS sample into `registry`'s
    /// peak gauge, so transient mid-solve spikes reach `peak_rss_bytes`
    /// instead of only the end-of-phase checkpoints. No-op when the
    /// tracker is disabled.
    #[must_use]
    pub fn begin(&self, zones_total: u64, registry: &MetricsRegistry) -> ProgressGuard {
        let Some(inner) = self.inner.as_ref() else {
            return ProgressGuard { state: None };
        };
        inner.zones_done.store(0, Ordering::Relaxed);
        inner.rung.store(0, Ordering::Relaxed);
        inner.zones_total.store(zones_total, Ordering::Relaxed);
        let started = Instant::now();
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread = {
            let inner = Arc::clone(inner);
            let registry = registry.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let (lock, cvar) = &*stop;
                let mut stopped = lock.lock().unwrap_or_else(PoisonError::into_inner);
                while !*stopped {
                    let (guard, timeout) = cvar
                        .wait_timeout(stopped, inner.interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    stopped = guard;
                    if !*stopped && timeout.timed_out() {
                        registry.sample_rss();
                        inner.emit(started, false);
                    }
                }
            })
        };
        ProgressGuard {
            state: Some(ProgressGuardState {
                inner: Arc::clone(inner),
                registry: registry.clone(),
                started,
                stop,
                thread: Some(thread),
            }),
        }
    }
}

struct ProgressGuardState {
    inner: Arc<ProgressInner>,
    registry: MetricsRegistry,
    started: Instant,
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Live guard of one solve's progress ticker; stops the ticker thread
/// and emits the final `done = true` event on drop.
pub struct ProgressGuard {
    state: Option<ProgressGuardState>,
}

impl Drop for ProgressGuard {
    fn drop(&mut self) {
        let Some(mut st) = self.state.take() else {
            return;
        };
        {
            let (lock, cvar) = &*st.stop;
            *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
            cvar.notify_all();
        }
        if let Some(t) = st.thread.take() {
            let _ = t.join();
        }
        st.registry.sample_rss();
        st.inner.emit(st.started, true);
    }
}

/// Everything one zone subproblem solve contributes to the registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZoneSolveRecord {
    /// The DP's label/work counters.
    pub stats: SolveStats,
    /// Whether the solve exhausted its resource budget mid-way.
    pub exhausted: bool,
    /// Arcs in the solve's MOSP graph (each references an arena slot).
    pub arena_arcs: u64,
    /// Distinct interned weight vectors in the graph's arena.
    pub arena_unique_weights: u64,
    /// Wall time of the solve, nanoseconds.
    pub wall_ns: u64,
}

/// Run-level context only the driver knows, passed to
/// [`MetricsRegistry::report`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportContext {
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// Zones whose sampling plan degenerated (see
    /// [`crate::algo::Outcome::degenerate_zones`]).
    pub degenerate_zones: usize,
    /// Final degradation-ladder rung (0 = full fidelity).
    pub ladder_rung: usize,
    /// Work units the shared [`wavemin_mosp::Budget`] charged (0 when the
    /// run was unbudgeted — the budget's fast path skips its atomic; see
    /// [`RunCounters::solver_work`] for the unconditional count).
    pub budget_units: u64,
    /// Name of the numeric kernel family the run dispatched to
    /// ([`wavemin_mosp::kernels::active`]`().name()`; empty when unknown).
    pub kernel: &'static str,
}

/// One stage's aggregated span timing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name ([`Stage::name`]).
    pub stage: String,
    /// Number of spans recorded for the stage.
    pub count: u64,
    /// Total wall time across those spans, nanoseconds.
    pub total_ns: u64,
}

/// The run-wide counter aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunCounters {
    /// MOSP labels that survived insertion, across all zone solves.
    pub labels_created: u64,
    /// Labels evicted from an active frontier (dominance or cap).
    pub labels_pruned: u64,
    /// Label-insertion attempts (the budget work unit), counted
    /// unconditionally.
    pub solver_work: u64,
    /// Pareto paths returned at the destinations (Σ front sizes).
    pub pareto_paths: u64,
    /// Zone × interval subproblem solves performed.
    pub zone_solves: u64,
    /// Zone solves that exhausted their resource budget.
    pub exhausted_solves: u64,
    /// Arcs across all solved MOSP graphs.
    pub arena_arcs: u64,
    /// Distinct interned weight vectors across those graphs.
    pub arena_unique_weights: u64,
    /// Degradation-ladder rung transitions during the run.
    pub rung_transitions: u64,
    /// Work units charged against the shared budget (0 for unbudgeted
    /// runs, whose fast path never touches the atomic).
    pub budget_units: u64,
    /// Pairwise dominance comparisons the frontier actually performed.
    pub dominance_checks: u64,
    /// Dominance comparisons the sorted max-component index proved
    /// unnecessary and skipped.
    pub dominance_skipped: u64,
    /// Zone-worker faults (panics or poisoned inputs) the containment
    /// layer caught. Additive schema field — defaults to 0 in reports
    /// written before it existed.
    #[serde(default)]
    pub zone_faults: u64,
    /// Faulted zones whose greedy salvage retry succeeded.
    #[serde(default)]
    pub zone_salvages: u64,
    /// Zone results served from the checkpoint journal instead of being
    /// re-solved (`--resume`).
    #[serde(default)]
    pub zones_reused: u64,
    /// Archived zones evicted from the streaming archive to stay under
    /// the memory budget. Environment-dependent (eviction order follows
    /// worker interleaving) — zeroed by [`RunReport::normalized`].
    #[serde(default)]
    pub zones_spilled: u64,
    /// Zones re-characterized after their archived copy was spilled.
    /// Environment-dependent — zeroed by [`RunReport::normalized`].
    #[serde(default)]
    pub zone_recomputes: u64,
    /// Largest process RSS (bytes) sampled at a pipeline checkpoint; 0
    /// when the platform exposes no `/proc/self/status`.
    /// Environment-dependent — zeroed by [`RunReport::normalized`].
    #[serde(default)]
    pub peak_rss_bytes: u64,
    /// RSS (bytes) sampled when the interval solves finished, before
    /// final validation — the phase `--memory-budget-mb` governs.
    /// Environment-dependent — zeroed by [`RunReport::normalized`].
    #[serde(default)]
    pub solve_rss_bytes: u64,
}

/// The process's current resident set size in bytes (the `VmRSS` row of
/// `/proc/self/status`), or `None` where that interface is missing.
#[must_use]
pub fn current_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

impl RunCounters {
    /// Fraction of arc weight lookups served by an already-interned arena
    /// vector: `1 - unique/arcs` (0 when no arcs were built).
    #[must_use]
    pub fn intern_hit_rate(&self) -> f64 {
        if self.arena_arcs == 0 {
            0.0
        } else {
            1.0 - self.arena_unique_weights as f64 / self.arena_arcs as f64
        }
    }
}

/// One zone's aggregated solver metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneMetrics {
    /// Zone id (index into the run's zone partition).
    pub zone: usize,
    /// Subproblem solves recorded against this zone.
    pub solves: u64,
    /// Labels created by this zone's solves.
    pub labels_created: u64,
    /// Labels pruned by this zone's solves.
    pub labels_pruned: u64,
    /// Label-insertion attempts by this zone's solves.
    pub solver_work: u64,
    /// Pareto paths returned by this zone's solves.
    pub pareto_paths: u64,
    /// This zone's solves that exhausted the budget.
    pub exhausted_solves: u64,
    /// Dominance comparisons performed by this zone's solves.
    pub dominance_checks: u64,
    /// Dominance comparisons skipped via the sorted-key index.
    pub dominance_skipped: u64,
    /// Total wall time of this zone's solves, nanoseconds.
    pub wall_ns: u64,
    /// Worst (highest-index) degradation-ladder rung any solve of this
    /// zone actually used. A salvaged zone shows the greedy rung here
    /// even when the run-level `ladder_rung` stayed at a better rung.
    #[serde(default)]
    pub worst_rung: u64,
}

/// One occupied histogram bucket (sparse: empty buckets are omitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Bucket index in the fixed log2 layout ([`bucket_index`]).
    pub index: u32,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// One serialized log2-bucket histogram with quantile summaries.
///
/// Quantiles are stored as [`bucket_upper_bound`]s — exact integers, so
/// the type stays `Eq` and two runs of the same problem produce equal
/// histograms for the deterministic distributions (labels per zone,
/// front sizes). `count == Σ buckets[].count` by construction and the
/// stored quantiles always equal [`RunHistogram::quantile`] recomputed
/// from the buckets ([`RunReport::validate`] enforces both).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHistogram {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Occupied buckets, ascending by index.
    pub buckets: Vec<HistogramBucket>,
    /// Median upper bound (0 when empty).
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

impl RunHistogram {
    /// Records one value (the non-atomic mirror of the registry's live
    /// cell, for merging and tests).
    pub fn observe(&mut self, value: u64) {
        let index = bucket_index(value) as u32;
        match self.buckets.binary_search_by_key(&index, |b| b.index) {
            Ok(i) => self.buckets[i].count += 1,
            Err(i) => self.buckets.insert(i, HistogramBucket { index, count: 1 }),
        }
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
        self.sum += value;
        self.refresh_quantiles();
    }

    /// Merges another histogram in. Associative and commutative up to
    /// bucket resolution — `a.merge(b)` equals `b.merge(a)` exactly.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        for b in &other.buckets {
            match self.buckets.binary_search_by_key(&b.index, |x| x.index) {
                Ok(i) => self.buckets[i].count += b.count,
                Err(i) => self.buckets.insert(i, *b),
            }
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.refresh_quantiles();
    }

    /// The upper bound of the bucket holding the `q`-quantile
    /// observation (rank `ceil(q·count)`, clamped to `[1, count]`).
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for b in &self.buckets {
            cumulative = cumulative.saturating_add(b.count);
            if cumulative >= rank {
                return bucket_upper_bound(b.index as usize);
            }
        }
        self.max
    }

    /// Mean observed value (0 for an empty histogram).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn refresh_quantiles(&mut self) {
        self.p50 = self.quantile(0.50);
        self.p90 = self.quantile(0.90);
        self.p99 = self.quantile(0.99);
    }

    fn validate(&self, name: &str) -> Result<(), String> {
        let mut bucket_sum = 0u64;
        let mut last_index: Option<u32> = None;
        for b in &self.buckets {
            if b.index as usize >= HISTOGRAM_BUCKETS {
                return Err(format!(
                    "histogram {name}: bucket index {} out of range",
                    b.index
                ));
            }
            if b.count == 0 {
                return Err(format!(
                    "histogram {name}: empty bucket {} stored (sparse form)",
                    b.index
                ));
            }
            if last_index.is_some_and(|prev| prev >= b.index) {
                return Err(format!(
                    "histogram {name}: bucket indices not strictly ascending at {}",
                    b.index
                ));
            }
            last_index = Some(b.index);
            bucket_sum = bucket_sum.saturating_add(b.count);
        }
        if bucket_sum != self.count {
            return Err(format!(
                "histogram {name}: count {} but buckets sum to {bucket_sum}",
                self.count
            ));
        }
        if self.count == 0 {
            if self.sum != 0 || self.min != 0 || self.max != 0 {
                return Err(format!("histogram {name}: empty but carries values"));
            }
        } else if self.min > self.max {
            return Err(format!(
                "histogram {name}: min {} exceeds max {}",
                self.min, self.max
            ));
        }
        for (label, stored, q) in [
            ("p50", self.p50, 0.50),
            ("p90", self.p90, 0.90),
            ("p99", self.p99, 0.99),
        ] {
            if stored != self.quantile(q) {
                return Err(format!(
                    "histogram {name}: stored {label} {stored} disagrees with buckets"
                ));
            }
        }
        if self.p50 > self.p90 || self.p90 > self.p99 {
            return Err(format!(
                "histogram {name}: quantiles not monotone ({} / {} / {})",
                self.p50, self.p90, self.p99
            ));
        }
        Ok(())
    }
}

/// The report's histogram set. Additive schema-v1 field — reports
/// written before it existed decode to the empty default.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHistograms {
    /// Wall time of each zone × interval subproblem solve, nanoseconds.
    /// Environment-dependent — emptied by [`RunReport::normalized`].
    pub zone_solve_ns: RunHistogram,
    /// Labels created per zone solve (deterministic).
    pub labels_per_zone: RunHistogram,
    /// Pareto front size per zone solve (deterministic).
    pub front_size: RunHistogram,
    /// End-to-end wall time per serve-mode job, nanoseconds (empty for
    /// single-run reports). Environment-dependent — emptied by
    /// [`RunReport::normalized`].
    pub job_wall_ns: RunHistogram,
}

impl RunHistograms {
    /// Merges another set in, distribution by distribution.
    pub fn merge(&mut self, other: &Self) {
        self.zone_solve_ns.merge(&other.zone_solve_ns);
        self.labels_per_zone.merge(&other.labels_per_zone);
        self.front_size.merge(&other.front_size);
        self.job_wall_ns.merge(&other.job_wall_ns);
    }

    /// `true` when no distribution holds any observation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.zone_solve_ns.count == 0
            && self.labels_per_zone.count == 0
            && self.front_size.count == 0
            && self.job_wall_ns.count == 0
    }

    /// The distributions paired with their stable report names.
    #[must_use]
    pub fn named(&self) -> [(&'static str, &RunHistogram); 4] {
        [
            ("zone_solve_ns", &self.zone_solve_ns),
            ("labels_per_zone", &self.labels_per_zone),
            ("front_size", &self.front_size),
            ("job_wall_ns", &self.job_wall_ns),
        ]
    }
}

/// One node's share of the total rail current at the attributed peak
/// instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contribution {
    /// Node id in the clock tree.
    pub node: usize,
    /// The node's cell name at the attributed assignment.
    pub cell: String,
    /// `"sink"` for leaf buffers/inverters, `"nonleaf"` for the fixed
    /// internal levels.
    pub kind: String,
    /// The node's sampled current at the peak instant, milliamps.
    pub amps_ma: f64,
}

/// The peak-attribution record: the argmax sample of the evaluated total
/// IDD/ISS waveform, decomposed into per-node contributions.
///
/// The decomposition is exact by construction — `peak_ma` is defined as
/// the sum of `contributions[].amps_ma` in stored order, and the vendored
/// JSON writer round-trips `f64` exactly, so re-summing a decoded report
/// reproduces `peak_ma` bit-for-bit ([`RunReport::validate`] enforces a
/// 1e-9 tolerance to stay robust against hand-edited reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeakAttribution {
    /// Power-mode index the peak occurred in.
    pub mode: usize,
    /// The peak rail: `"vdd"` or `"gnd"`.
    pub rail: String,
    /// The clock edge driving the peak: `"rise"` or `"fall"`.
    pub edge: String,
    /// The argmax sample time, picoseconds.
    pub time_ps: f64,
    /// The attributed peak current, milliamps (= Σ contributions).
    pub peak_ma: f64,
    /// Per-node contributions at the peak instant, largest first.
    pub contributions: Vec<Contribution>,
}

impl PeakAttribution {
    /// The contributions' sum in stored order (must equal `peak_ma`).
    #[must_use]
    pub fn contribution_sum(&self) -> f64 {
        self.contributions.iter().map(|c| c.amps_ma).sum()
    }
}

/// The structured, machine-readable account of one optimization run.
///
/// Everything except the wall-time fields (`stages[].total_ns`,
/// `zones[].wall_ns`) and `threads` is identical across worker counts for
/// an unbudgeted run; [`RunReport::normalized`] strips exactly those
/// fields for differential comparisons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version of this report ([`RunReport::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Worker threads the run used.
    pub threads: usize,
    /// Numeric kernel family the run dispatched to ("vector"/"scalar";
    /// empty in reports written before the field existed). Stripped by
    /// [`RunReport::normalized`] — both families are bit-identical, so
    /// normalized reports must compare equal across them.
    #[serde(default)]
    pub kernel: String,
    /// Run-wide counter aggregates.
    pub counters: RunCounters,
    /// Per-stage span timings (stages with zero spans are omitted).
    pub stages: Vec<StageTiming>,
    /// Per-zone solver metrics.
    pub zones: Vec<ZoneMetrics>,
    /// Zones whose sampling plan degenerated to a dummy time.
    pub degenerate_zones: usize,
    /// Final degradation-ladder rung (0 = full fidelity).
    pub ladder_rung: usize,
    /// Peak attribution of the winning assignment (absent in reports
    /// written before the field existed, and in runs that skipped the
    /// explain pass). Additive schema field — still schema v1.
    #[serde(default)]
    pub attribution: Option<PeakAttribution>,
    /// Latency/size distributions. Additive schema field — reports
    /// written before it existed decode to the empty default.
    #[serde(default)]
    pub histograms: RunHistograms,
}

impl RunReport {
    /// Version stamped into (and required from) serialized reports.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Checks the report's internal consistency: the schema version is
    /// supported and every global counter equals the sum of its per-zone
    /// rows.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != Self::SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {} (expected {})",
                self.schema_version,
                Self::SCHEMA_VERSION
            ));
        }
        let sums: [(&str, u64, u64); 8] = [
            (
                "labels_created",
                self.counters.labels_created,
                self.zones.iter().map(|z| z.labels_created).sum(),
            ),
            (
                "labels_pruned",
                self.counters.labels_pruned,
                self.zones.iter().map(|z| z.labels_pruned).sum(),
            ),
            (
                "solver_work",
                self.counters.solver_work,
                self.zones.iter().map(|z| z.solver_work).sum(),
            ),
            (
                "pareto_paths",
                self.counters.pareto_paths,
                self.zones.iter().map(|z| z.pareto_paths).sum(),
            ),
            (
                "zone_solves",
                self.counters.zone_solves,
                self.zones.iter().map(|z| z.solves).sum(),
            ),
            (
                "exhausted_solves",
                self.counters.exhausted_solves,
                self.zones.iter().map(|z| z.exhausted_solves).sum(),
            ),
            (
                "dominance_checks",
                self.counters.dominance_checks,
                self.zones.iter().map(|z| z.dominance_checks).sum(),
            ),
            (
                "dominance_skipped",
                self.counters.dominance_skipped,
                self.zones.iter().map(|z| z.dominance_skipped).sum(),
            ),
        ];
        for (name, global, zone_sum) in sums {
            if global != zone_sum {
                return Err(format!(
                    "counter {name} = {global} but its per-zone rows sum to {zone_sum}"
                ));
            }
        }
        if self.counters.arena_unique_weights > self.counters.arena_arcs {
            return Err(format!(
                "arena_unique_weights {} exceeds arena_arcs {}",
                self.counters.arena_unique_weights, self.counters.arena_arcs
            ));
        }
        if self.counters.exhausted_solves > self.counters.zone_solves {
            return Err(format!(
                "exhausted_solves {} exceeds zone_solves {}",
                self.counters.exhausted_solves, self.counters.zone_solves
            ));
        }
        if let Some(attr) = &self.attribution {
            if attr.rail != "vdd" && attr.rail != "gnd" {
                return Err(format!("attribution rail '{}' is not vdd/gnd", attr.rail));
            }
            if attr.edge != "rise" && attr.edge != "fall" {
                return Err(format!("attribution edge '{}' is not rise/fall", attr.edge));
            }
            for c in &attr.contributions {
                if c.kind != "sink" && c.kind != "nonleaf" {
                    return Err(format!(
                        "attribution contribution kind '{}' is not sink/nonleaf",
                        c.kind
                    ));
                }
            }
            let sum = attr.contribution_sum();
            if (sum - attr.peak_ma).abs() > 1e-9 {
                return Err(format!(
                    "attribution contributions sum to {sum} mA but peak_ma is {} (|Δ| > 1e-9)",
                    attr.peak_ma
                ));
            }
        }
        for (name, h) in self.histograms.named() {
            h.validate(name)?;
        }
        let h = &self.histograms;
        // Cross-checks against the counters, guarded on count > 0 so a
        // normalized (emptied) or legacy (absent) histogram still passes.
        if h.zone_solve_ns.count > 0 && h.zone_solve_ns.count != self.counters.zone_solves {
            return Err(format!(
                "zone_solve_ns histogram holds {} samples but zone_solves is {}",
                h.zone_solve_ns.count, self.counters.zone_solves
            ));
        }
        if h.labels_per_zone.count > 0 {
            if h.labels_per_zone.count != self.counters.zone_solves {
                return Err(format!(
                    "labels_per_zone histogram holds {} samples but zone_solves is {}",
                    h.labels_per_zone.count, self.counters.zone_solves
                ));
            }
            if h.labels_per_zone.sum != self.counters.labels_created {
                return Err(format!(
                    "labels_per_zone histogram sums to {} but labels_created is {}",
                    h.labels_per_zone.sum, self.counters.labels_created
                ));
            }
        }
        if h.front_size.count > 0 {
            if h.front_size.count != self.counters.zone_solves {
                return Err(format!(
                    "front_size histogram holds {} samples but zone_solves is {}",
                    h.front_size.count, self.counters.zone_solves
                ));
            }
            if h.front_size.sum != self.counters.pareto_paths {
                return Err(format!(
                    "front_size histogram sums to {} but pareto_paths is {}",
                    h.front_size.sum, self.counters.pareto_paths
                ));
            }
        }
        Ok(())
    }

    /// A copy with every run-environment field zeroed (`threads`, the
    /// `kernel` name, stage `total_ns`, zone `wall_ns`): two unbudgeted
    /// runs of the same problem must produce equal normalized reports
    /// regardless of worker count or kernel family.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut out = self.clone();
        out.threads = 0;
        out.kernel = String::new();
        // Streaming-archive traffic and the RSS gauge depend on worker
        // interleaving and the process environment, not on the problem:
        // a streaming and a materialized run of the same instance must
        // compare equal once normalized.
        out.counters.zones_spilled = 0;
        out.counters.zone_recomputes = 0;
        out.counters.peak_rss_bytes = 0;
        out.counters.solve_rss_bytes = 0;
        for s in &mut out.stages {
            s.total_ns = 0;
        }
        for z in &mut out.zones {
            z.wall_ns = 0;
        }
        // Wall-clock distributions vary run to run; the label/front-size
        // distributions are deterministic and stay.
        out.histograms.zone_solve_ns = RunHistogram::default();
        out.histograms.job_wall_ns = RunHistogram::default();
        out
    }

    /// Parses a report back from its JSON serialization (the format
    /// `--metrics-out` writes). Unknown fields are rejected so a report
    /// that decodes is structurally exactly this schema.
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        decode::report(&value)
    }
}

/// Hand-rolled decoding of the report's JSON [`serde::Value`] tree — the
/// vendored serde stack has no typed deserializer.
mod decode {
    use super::{
        Contribution, HistogramBucket, PeakAttribution, RunCounters, RunHistogram, RunHistograms,
        RunReport, StageTiming, ZoneMetrics,
    };
    use serde::Value;

    fn fields<'a>(
        v: &'a Value,
        expected: &'static [&'static str],
        what: &str,
    ) -> Result<&'a [(String, Value)], String> {
        let Value::Map(entries) = v else {
            return Err(format!("{what}: expected a JSON object"));
        };
        for (k, _) in entries {
            if !expected.contains(&k.as_str()) {
                return Err(format!("{what}: unknown field '{k}'"));
            }
        }
        Ok(entries)
    }

    fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    fn u64_field(entries: &[(String, Value)], key: &str) -> Result<u64, String> {
        match get(entries, key)? {
            Value::UInt(u) => Ok(*u),
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(format!(
                "field '{key}': expected an unsigned integer, got {other:?}"
            )),
        }
    }

    /// Like [`u64_field`] but defaults to 0 when the field is absent —
    /// for additive schema fields that older reports predate.
    fn opt_u64_field(entries: &[(String, Value)], key: &str) -> Result<u64, String> {
        if entries.iter().any(|(k, _)| k == key) {
            u64_field(entries, key)
        } else {
            Ok(0)
        }
    }

    /// Like [`str_field`] but defaults to "" when the field is absent.
    fn opt_str_field(entries: &[(String, Value)], key: &str) -> Result<String, String> {
        if entries.iter().any(|(k, _)| k == key) {
            str_field(entries, key)
        } else {
            Ok(String::new())
        }
    }

    fn usize_field(entries: &[(String, Value)], key: &str) -> Result<usize, String> {
        usize::try_from(u64_field(entries, key)?)
            .map_err(|_| format!("field '{key}': value does not fit usize"))
    }

    fn str_field(entries: &[(String, Value)], key: &str) -> Result<String, String> {
        match get(entries, key)? {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("field '{key}': expected a string, got {other:?}")),
        }
    }

    fn seq_field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a [Value], String> {
        match get(entries, key)? {
            Value::Seq(items) => Ok(items),
            other => Err(format!("field '{key}': expected an array, got {other:?}")),
        }
    }

    fn f64_field(entries: &[(String, Value)], key: &str) -> Result<f64, String> {
        match get(entries, key)? {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(format!("field '{key}': expected a number, got {other:?}")),
        }
    }

    pub(super) fn report(v: &Value) -> Result<RunReport, String> {
        let entries = fields(
            v,
            &[
                "schema_version",
                "threads",
                "kernel",
                "counters",
                "stages",
                "zones",
                "degenerate_zones",
                "ladder_rung",
                "attribution",
                "histograms",
            ],
            "report",
        )?;
        let schema_version = u64_field(entries, "schema_version")?;
        let schema_version = u32::try_from(schema_version)
            .map_err(|_| format!("schema_version {schema_version} does not fit u32"))?;
        Ok(RunReport {
            schema_version,
            threads: usize_field(entries, "threads")?,
            kernel: opt_str_field(entries, "kernel")?,
            counters: counters(get(entries, "counters")?)?,
            stages: seq_field(entries, "stages")?
                .iter()
                .map(stage_timing)
                .collect::<Result<_, _>>()?,
            zones: seq_field(entries, "zones")?
                .iter()
                .map(zone_metrics)
                .collect::<Result<_, _>>()?,
            degenerate_zones: usize_field(entries, "degenerate_zones")?,
            ladder_rung: usize_field(entries, "ladder_rung")?,
            attribution: attribution(entries)?,
            histograms: histograms(entries)?,
        })
    }

    /// Additive v1 field: absent (legacy reports) decodes to the empty
    /// default, mirroring [`attribution`].
    fn histograms(entries: &[(String, Value)]) -> Result<RunHistograms, String> {
        let Some((_, v)) = entries.iter().find(|(k, _)| k == "histograms") else {
            return Ok(RunHistograms::default());
        };
        let entries = fields(
            v,
            &[
                "zone_solve_ns",
                "labels_per_zone",
                "front_size",
                "job_wall_ns",
            ],
            "histograms",
        )?;
        Ok(RunHistograms {
            zone_solve_ns: histogram(get(entries, "zone_solve_ns")?)?,
            labels_per_zone: histogram(get(entries, "labels_per_zone")?)?,
            front_size: histogram(get(entries, "front_size")?)?,
            job_wall_ns: histogram(get(entries, "job_wall_ns")?)?,
        })
    }

    fn histogram(v: &Value) -> Result<RunHistogram, String> {
        let entries = fields(
            v,
            &["count", "sum", "min", "max", "buckets", "p50", "p90", "p99"],
            "histogram",
        )?;
        Ok(RunHistogram {
            count: u64_field(entries, "count")?,
            sum: u64_field(entries, "sum")?,
            min: u64_field(entries, "min")?,
            max: u64_field(entries, "max")?,
            buckets: seq_field(entries, "buckets")?
                .iter()
                .map(histogram_bucket)
                .collect::<Result<_, _>>()?,
            p50: u64_field(entries, "p50")?,
            p90: u64_field(entries, "p90")?,
            p99: u64_field(entries, "p99")?,
        })
    }

    fn histogram_bucket(v: &Value) -> Result<HistogramBucket, String> {
        let entries = fields(v, &["index", "count"], "histogram bucket")?;
        let index = u64_field(entries, "index")?;
        Ok(HistogramBucket {
            index: u32::try_from(index)
                .map_err(|_| format!("histogram bucket index {index} does not fit u32"))?,
            count: u64_field(entries, "count")?,
        })
    }

    /// Additive v1 field: absent (legacy reports) and explicit `null`
    /// both decode to `None`.
    fn attribution(entries: &[(String, Value)]) -> Result<Option<PeakAttribution>, String> {
        let Some((_, v)) = entries.iter().find(|(k, _)| k == "attribution") else {
            return Ok(None);
        };
        if matches!(v, Value::Null) {
            return Ok(None);
        }
        let entries = fields(
            v,
            &[
                "mode",
                "rail",
                "edge",
                "time_ps",
                "peak_ma",
                "contributions",
            ],
            "attribution",
        )?;
        Ok(Some(PeakAttribution {
            mode: usize_field(entries, "mode")?,
            rail: str_field(entries, "rail")?,
            edge: str_field(entries, "edge")?,
            time_ps: f64_field(entries, "time_ps")?,
            peak_ma: f64_field(entries, "peak_ma")?,
            contributions: seq_field(entries, "contributions")?
                .iter()
                .map(contribution)
                .collect::<Result<_, _>>()?,
        }))
    }

    fn contribution(v: &Value) -> Result<Contribution, String> {
        let entries = fields(v, &["node", "cell", "kind", "amps_ma"], "contribution")?;
        Ok(Contribution {
            node: usize_field(entries, "node")?,
            cell: str_field(entries, "cell")?,
            kind: str_field(entries, "kind")?,
            amps_ma: f64_field(entries, "amps_ma")?,
        })
    }

    fn counters(v: &Value) -> Result<RunCounters, String> {
        let entries = fields(
            v,
            &[
                "labels_created",
                "labels_pruned",
                "solver_work",
                "pareto_paths",
                "zone_solves",
                "exhausted_solves",
                "arena_arcs",
                "arena_unique_weights",
                "rung_transitions",
                "budget_units",
                "dominance_checks",
                "dominance_skipped",
                "zone_faults",
                "zone_salvages",
                "zones_reused",
                "zones_spilled",
                "zone_recomputes",
                "peak_rss_bytes",
                "solve_rss_bytes",
            ],
            "counters",
        )?;
        Ok(RunCounters {
            labels_created: u64_field(entries, "labels_created")?,
            labels_pruned: u64_field(entries, "labels_pruned")?,
            solver_work: u64_field(entries, "solver_work")?,
            pareto_paths: u64_field(entries, "pareto_paths")?,
            zone_solves: u64_field(entries, "zone_solves")?,
            exhausted_solves: u64_field(entries, "exhausted_solves")?,
            arena_arcs: u64_field(entries, "arena_arcs")?,
            arena_unique_weights: u64_field(entries, "arena_unique_weights")?,
            rung_transitions: u64_field(entries, "rung_transitions")?,
            budget_units: u64_field(entries, "budget_units")?,
            dominance_checks: opt_u64_field(entries, "dominance_checks")?,
            dominance_skipped: opt_u64_field(entries, "dominance_skipped")?,
            zone_faults: opt_u64_field(entries, "zone_faults")?,
            zone_salvages: opt_u64_field(entries, "zone_salvages")?,
            zones_reused: opt_u64_field(entries, "zones_reused")?,
            zones_spilled: opt_u64_field(entries, "zones_spilled")?,
            zone_recomputes: opt_u64_field(entries, "zone_recomputes")?,
            peak_rss_bytes: opt_u64_field(entries, "peak_rss_bytes")?,
            solve_rss_bytes: opt_u64_field(entries, "solve_rss_bytes")?,
        })
    }

    fn stage_timing(v: &Value) -> Result<StageTiming, String> {
        let entries = fields(v, &["stage", "count", "total_ns"], "stage timing")?;
        Ok(StageTiming {
            stage: str_field(entries, "stage")?,
            count: u64_field(entries, "count")?,
            total_ns: u64_field(entries, "total_ns")?,
        })
    }

    fn zone_metrics(v: &Value) -> Result<ZoneMetrics, String> {
        let entries = fields(
            v,
            &[
                "zone",
                "solves",
                "labels_created",
                "labels_pruned",
                "solver_work",
                "pareto_paths",
                "exhausted_solves",
                "dominance_checks",
                "dominance_skipped",
                "wall_ns",
                "worst_rung",
            ],
            "zone metrics",
        )?;
        Ok(ZoneMetrics {
            zone: usize_field(entries, "zone")?,
            solves: u64_field(entries, "solves")?,
            labels_created: u64_field(entries, "labels_created")?,
            labels_pruned: u64_field(entries, "labels_pruned")?,
            solver_work: u64_field(entries, "solver_work")?,
            pareto_paths: u64_field(entries, "pareto_paths")?,
            exhausted_solves: u64_field(entries, "exhausted_solves")?,
            dominance_checks: opt_u64_field(entries, "dominance_checks")?,
            dominance_skipped: opt_u64_field(entries, "dominance_skipped")?,
            wall_ns: u64_field(entries, "wall_ns")?,
            worst_rung: opt_u64_field(entries, "worst_rung")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_record(labels: u64) -> ZoneSolveRecord {
        ZoneSolveRecord {
            stats: SolveStats {
                labels_created: labels,
                labels_pruned: labels / 2,
                work: labels * 3,
                front_size: 2,
                dominance_checks: labels * 4,
                dominance_skipped: labels,
            },
            exhausted: false,
            arena_arcs: 10,
            arena_unique_weights: 4,
            wall_ns: 1_000,
        }
    }

    #[test]
    fn disabled_registry_records_nothing_and_reports_none() {
        let r = MetricsRegistry::disabled();
        assert!(!r.is_enabled());
        r.ensure_zones(4);
        r.record_zone_solve(0, &sample_record(5));
        r.record_rung_transition();
        drop(r.span(Stage::Zoning));
        assert!(r.report(&ReportContext::default()).is_none());
    }

    #[test]
    fn global_counters_equal_zone_sums_by_construction() {
        let r = MetricsRegistry::enabled(false);
        r.ensure_zones(3);
        r.record_zone_solve(0, &sample_record(5));
        r.record_zone_solve(1, &sample_record(7));
        r.record_zone_solve(1, &sample_record(2));
        let report = r.report(&ReportContext::default()).expect("enabled");
        report.validate().expect("self-consistent");
        assert_eq!(report.counters.labels_created, 14);
        assert_eq!(report.counters.zone_solves, 3);
        assert_eq!(report.zones[1].solves, 2);
        assert_eq!(report.zones[2].solves, 0);
        assert!((report.counters.intern_hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn unsized_zone_table_grows_on_demand() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(5, &sample_record(1));
        let report = r.report(&ReportContext::default()).expect("enabled");
        assert_eq!(report.zones.len(), 6);
        assert_eq!(report.zones[5].solves, 1);
        report.validate().expect("self-consistent");
    }

    #[test]
    fn spans_accumulate_wall_time() {
        let r = MetricsRegistry::enabled(false);
        {
            let _g = r.span(Stage::Characterization);
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _g = r.span(Stage::Characterization);
        }
        let report = r.report(&ReportContext::default()).expect("enabled");
        let t = report
            .stages
            .iter()
            .find(|s| s.stage == "characterization")
            .expect("stage present");
        assert_eq!(t.count, 2);
        assert!(t.total_ns >= 2_000_000, "slept 2 ms, got {} ns", t.total_ns);
        assert!(
            !report.stages.iter().any(|s| s.stage == "monte_carlo"),
            "unused stages are omitted"
        );
    }

    #[test]
    fn aggregation_is_worker_count_independent() {
        // The same 64 records, pushed from 1 thread and from 8, must
        // produce identical normalized reports.
        let run = |threads: usize| {
            let r = MetricsRegistry::enabled(false);
            r.ensure_zones(4);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let r = r.clone();
                    scope.spawn(move || {
                        for i in 0..(64 / threads) {
                            r.record_zone_solve((t + i) % 4, &sample_record(3));
                        }
                    });
                }
            });
            r.report(&ReportContext::default()).expect("enabled")
        };
        let seq = run(1);
        let par = run(8);
        seq.validate().expect("seq self-consistent");
        par.validate().expect("par self-consistent");
        assert_eq!(seq.counters, par.counters);
        assert_eq!(seq.normalized().zones, par.normalized().zones);
    }

    #[test]
    fn report_roundtrips_through_json_and_validates() {
        let r = MetricsRegistry::enabled(false);
        r.ensure_zones(2);
        r.record_zone_solve(0, &sample_record(4));
        r.record_rung_transition();
        let report = r
            .report(&ReportContext {
                threads: 4,
                degenerate_zones: 1,
                ladder_rung: 2,
                budget_units: 99,
                kernel: "vector",
            })
            .expect("enabled");
        let json = serde_json::to_string(&report).expect("serialize");
        let back = RunReport::from_json(&json).expect("deserialize");
        assert_eq!(back, report);
        back.validate().expect("valid after roundtrip");
        assert_eq!(back.ladder_rung, 2);
        assert_eq!(back.counters.rung_transitions, 1);
        assert_eq!(back.counters.budget_units, 99);
        assert_eq!(back.kernel, "vector");
        assert_eq!(back.normalized().kernel, "", "normalization strips kernel");
    }

    #[test]
    fn decode_defaults_fields_older_reports_lack() {
        // A report serialized before the kernel/dominance fields existed
        // must still decode, with those fields defaulted.
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(4));
        let report = r
            .report(&ReportContext {
                kernel: "vector",
                ..ReportContext::default()
            })
            .expect("enabled");
        let json = serde_json::to_string(&report).expect("serialize");
        let legacy = json
            .replace("\"kernel\":\"vector\",", "")
            .replace(",\"dominance_checks\":16,\"dominance_skipped\":4", "")
            .replace(
                ",\"zone_faults\":0,\"zone_salvages\":0,\"zones_reused\":0",
                "",
            );
        assert_ne!(legacy, json, "fixture must actually strip the fields");
        let back = RunReport::from_json(&legacy).expect("legacy decodes");
        assert_eq!(back.kernel, "");
        assert_eq!(back.counters.dominance_checks, 0);
        assert_eq!(back.counters.dominance_skipped, 0);
        assert_eq!(back.counters.zone_faults, 0);
        assert_eq!(back.counters.zones_reused, 0);
        back.validate().expect("defaults stay self-consistent");
    }

    #[test]
    fn streaming_counters_report_and_normalize_away() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_spill();
        r.record_zone_spill();
        r.record_zone_recompute();
        r.sample_rss();
        let report = r.report(&ReportContext::default()).expect("enabled");
        assert_eq!(report.counters.zones_spilled, 2);
        assert_eq!(report.counters.zone_recomputes, 1);
        if current_rss_bytes().is_some() {
            assert!(report.counters.peak_rss_bytes > 0, "gauge took the sample");
        }
        let n = report.normalized();
        assert_eq!(n.counters.zones_spilled, 0);
        assert_eq!(n.counters.zone_recomputes, 0);
        assert_eq!(n.counters.peak_rss_bytes, 0);
        // Round-trip keeps the raw values.
        let json = serde_json::to_string(&report).expect("serialize");
        let back = RunReport::from_json(&json).expect("decode");
        assert_eq!(back.counters.zones_spilled, 2);
        assert_eq!(back.counters.zone_recomputes, 1);
    }

    #[test]
    fn rss_probe_reports_plausible_footprint() {
        // On Linux the probe must see this very test's resident pages.
        if let Some(rss) = current_rss_bytes() {
            assert!(rss > 1 << 20, "a live process holds over a MiB: {rss}");
        }
    }

    fn sample_attribution() -> PeakAttribution {
        PeakAttribution {
            mode: 0,
            rail: "vdd".to_owned(),
            edge: "rise".to_owned(),
            time_ps: 38.5,
            peak_ma: 0.0,
            contributions: vec![
                Contribution {
                    node: 3,
                    cell: "buf_x4".to_owned(),
                    kind: "sink".to_owned(),
                    amps_ma: 7.25,
                },
                Contribution {
                    node: 1,
                    cell: "buf_x8".to_owned(),
                    kind: "nonleaf".to_owned(),
                    amps_ma: 0.1 + 0.2, // deliberately non-representable sum
                },
            ],
        }
    }

    #[test]
    fn attribution_roundtrips_and_validates() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(4));
        let mut report = r.report(&ReportContext::default()).expect("enabled");
        let mut attr = sample_attribution();
        attr.peak_ma = attr.contribution_sum();
        report.attribution = Some(attr);
        report.validate().expect("sum matches by construction");
        let json = serde_json::to_string(&report).expect("serialize");
        let back = RunReport::from_json(&json).expect("deserialize");
        assert_eq!(back, report);
        // Exact f64 JSON roundtrip: the decoded contributions re-sum
        // bit-identically, so validation still passes post-decode.
        back.validate().expect("valid after roundtrip");
    }

    #[test]
    fn legacy_reports_without_attribution_still_decode() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(4));
        let report = r.report(&ReportContext::default()).expect("enabled");
        let json = serde_json::to_string(&report).expect("serialize");
        let legacy = json.replace(",\"attribution\":null", "");
        assert_ne!(legacy, json, "fixture must actually strip the field");
        let back = RunReport::from_json(&legacy).expect("legacy decodes");
        assert_eq!(back.attribution, None);
        back.validate().expect("legacy report stays valid");
    }

    #[test]
    fn validate_rejects_attribution_sum_mismatch() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(4));
        let mut report = r.report(&ReportContext::default()).expect("enabled");
        let mut attr = sample_attribution();
        attr.peak_ma = attr.contribution_sum() + 1e-6;
        report.attribution = Some(attr);
        let err = report.validate().expect_err("sum off by 1e-6");
        assert!(err.contains("attribution"), "{err}");

        let mut bad_rail = sample_attribution();
        bad_rail.peak_ma = bad_rail.contribution_sum();
        bad_rail.rail = "vss".to_owned();
        report = r.report(&ReportContext::default()).expect("enabled");
        report.attribution = Some(bad_rail);
        assert!(report.validate().is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_reports() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(4));
        let mut report = r.report(&ReportContext::default()).expect("enabled");
        report.counters.labels_created += 1;
        let err = report.validate().expect_err("tampered counter");
        assert!(err.contains("labels_created"), "{err}");
        let mut wrong_version = r.report(&ReportContext::default()).expect("enabled");
        wrong_version.schema_version = 99;
        assert!(wrong_version.validate().is_err());
    }

    #[test]
    fn bucket_layout_is_exact_at_the_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..=63usize {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound stays in its bucket");
            assert_eq!(bucket_index(hi + 1), i + 1, "next value moves up");
            assert_eq!(hi, (1u64 << i) - 1);
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histograms_record_merge_and_quantile() {
        let mut h = RunHistogram::default();
        for v in [0u64, 1, 1, 7, 100, 100_000] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 100_109);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100_000);
        h.validate("test").expect("self-consistent");
        // Rank 3 of 6 at q=0.5 is the second `1` → bucket 1's bound.
        assert_eq!(h.p50, 1);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
        assert_eq!(h.quantile(1.0), bucket_upper_bound(bucket_index(100_000)));

        let mut other = RunHistogram::default();
        other.observe(3);
        other.observe(1 << 40);
        let mut ab = h.clone();
        ab.merge(&other);
        let mut ba = other.clone();
        ba.merge(&h);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.count, 8);
        assert_eq!(ab.max, 1 << 40);
        ab.validate("merged").expect("merged stays consistent");
    }

    #[test]
    fn empty_histogram_merges_as_identity() {
        let mut h = RunHistogram::default();
        h.observe(42);
        let snapshot = h.clone();
        h.merge(&RunHistogram::default());
        assert_eq!(h, snapshot);
        let mut empty = RunHistogram::default();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
        assert_eq!(RunHistogram::default().quantile(0.5), 0);
        RunHistogram::default().validate("empty").expect("valid");
    }

    #[test]
    fn zone_solves_fill_the_report_histograms() {
        let r = MetricsRegistry::enabled(false);
        r.ensure_zones(2);
        r.record_zone_solve(0, &sample_record(5));
        r.record_zone_solve(1, &sample_record(9));
        let report = r.report(&ReportContext::default()).expect("enabled");
        report.validate().expect("cross-checks hold");
        let h = &report.histograms;
        assert_eq!(h.zone_solve_ns.count, 2);
        assert_eq!(h.zone_solve_ns.sum, 2_000);
        assert_eq!(h.labels_per_zone.count, 2);
        assert_eq!(h.labels_per_zone.sum, 14);
        assert_eq!(h.front_size.sum, 4);
        assert_eq!(h.job_wall_ns.count, 0, "single runs record no jobs");
        assert!(!h.is_empty());
    }

    #[test]
    fn histograms_roundtrip_and_validate_rejects_tampering() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(5));
        r.record_job_wall_ns(1_234_567);
        let report = r.report(&ReportContext::default()).expect("enabled");
        let json = serde_json::to_string(&report).expect("serialize");
        let back = RunReport::from_json(&json).expect("decode");
        assert_eq!(back, report);
        back.validate().expect("valid after roundtrip");
        assert_eq!(back.histograms.job_wall_ns.count, 1);

        let mut tampered = report.clone();
        tampered.histograms.labels_per_zone.sum += 1;
        assert!(tampered.validate().is_err(), "sum cross-check trips");
        let mut wrong_q = report;
        wrong_q.histograms.zone_solve_ns.p50 += 1;
        assert!(wrong_q.validate().is_err(), "quantile check trips");
    }

    #[test]
    fn legacy_reports_without_histograms_still_decode() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(4));
        let report = r.report(&ReportContext::default()).expect("enabled");
        let json = serde_json::to_string(&report).expect("serialize");
        let start = json.find(",\"histograms\":").expect("field present");
        let mut legacy = json[..start].to_owned();
        legacy.push('}');
        assert_ne!(legacy, json, "fixture must actually strip the field");
        let back = RunReport::from_json(&legacy).expect("legacy decodes");
        assert!(back.histograms.is_empty());
        back.validate().expect("legacy report stays valid");
    }

    #[test]
    fn daemon_absorbs_job_histograms() {
        let job = {
            let r = MetricsRegistry::enabled(false);
            r.record_zone_solve(0, &sample_record(5));
            r.report(&ReportContext::default()).expect("enabled")
        };
        let daemon = MetricsRegistry::enabled(false);
        daemon.absorb_histograms(&job.histograms);
        daemon.absorb_histograms(&job.histograms);
        daemon.record_job_wall_ns(10);
        let h = daemon.histograms().expect("enabled");
        assert_eq!(h.zone_solve_ns.count, 2);
        assert_eq!(h.labels_per_zone.sum, 10);
        assert_eq!(h.job_wall_ns.count, 1);
        h.zone_solve_ns.validate("absorbed").expect("consistent");
    }

    #[test]
    fn normalization_empties_wall_clock_histograms_only() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(5));
        r.record_job_wall_ns(99);
        let report = r.report(&ReportContext::default()).expect("enabled");
        let n = report.normalized();
        assert_eq!(n.histograms.zone_solve_ns, RunHistogram::default());
        assert_eq!(n.histograms.job_wall_ns, RunHistogram::default());
        assert_eq!(
            n.histograms.labels_per_zone,
            report.histograms.labels_per_zone
        );
        assert_eq!(n.histograms.front_size, report.histograms.front_size);
        n.validate().expect("normalized report stays valid");
    }

    #[test]
    fn progress_ticker_emits_and_finishes() {
        let events: Arc<Mutex<Vec<Progress>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_events = Arc::clone(&events);
        let tracker = ProgressTracker::enabled(Duration::from_millis(5), move |p| {
            sink_events
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(p.clone());
        });
        let registry = MetricsRegistry::enabled(false);
        {
            let _guard = tracker.begin(4, &registry);
            tracker.zone_done();
            tracker.zone_done();
            tracker.set_rung(2);
            tracker.set_rung(1);
            std::thread::sleep(Duration::from_millis(25));
        }
        let events = events.lock().unwrap_or_else(PoisonError::into_inner);
        let last = events.last().expect("final event always emitted");
        assert!(last.done);
        assert_eq!(last.zones_done, 2);
        assert_eq!(last.zones_total, 4);
        assert_eq!(last.rung, 2, "rung keeps the max");
        assert!(
            events.iter().filter(|p| !p.done).count() >= 1,
            "the ticker fired at least once in 25 ms: {events:?}"
        );
        if current_rss_bytes().is_some() {
            let report = registry.report(&ReportContext::default()).expect("enabled");
            assert!(report.counters.peak_rss_bytes > 0, "ticks sample RSS");
            assert!(last.rss_bytes > 0);
        }
    }

    #[test]
    fn disabled_progress_tracker_is_inert() {
        let tracker = ProgressTracker::disabled();
        assert!(!tracker.is_enabled());
        let guard = tracker.begin(10, &MetricsRegistry::disabled());
        tracker.zone_done();
        tracker.set_rung(3);
        drop(guard);
        // Restarting resets the counters for the next solve.
        let events: Arc<Mutex<Vec<Progress>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_events = Arc::clone(&events);
        let t = ProgressTracker::enabled(Duration::from_secs(3600), move |p| {
            sink_events
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(p.clone());
        });
        let r = MetricsRegistry::disabled();
        {
            let _g = t.begin(2, &r);
            t.zone_done();
        }
        {
            let _g = t.begin(7, &r);
        }
        let events = events.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(events.len(), 2, "one final event per solve");
        assert_eq!(events[0].zones_done, 1);
        assert_eq!(events[1].zones_done, 0, "begin resets the counter");
        assert_eq!(events[1].zones_total, 7);
    }

    #[test]
    fn normalization_strips_timing_but_keeps_counters() {
        let r = MetricsRegistry::enabled(false);
        r.record_zone_solve(0, &sample_record(4));
        let report = r
            .report(&ReportContext {
                threads: 8,
                ..ReportContext::default()
            })
            .expect("enabled");
        let n = report.normalized();
        assert_eq!(n.threads, 0);
        assert!(n.zones.iter().all(|z| z.wall_ns == 0));
        assert_eq!(n.counters, report.counters);
    }
}
