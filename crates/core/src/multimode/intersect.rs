//! Feasible interval intersections across power modes (Fig. 11,
//! Table IV).

use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use crate::intervals::IntervalSet;
use crate::noise_table::NoiseTable;
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Picoseconds;

/// One feasible intersection: a per-mode window plus, per sink, the
/// options allowed in **all** modes simultaneously.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibleIntersection {
    /// `(t_lo, t_hi)` per power mode.
    pub windows: Vec<(Picoseconds, Picoseconds)>,
    /// `allowed[sink][..]` — option indices feasible in every mode.
    pub allowed: Vec<Vec<usize>>,
}

impl FeasibleIntersection {
    /// The degree of freedom (Section VI): total allowed candidates over
    /// all sinks. Larger tends to mean lower achievable noise (Fig. 14).
    #[must_use]
    pub fn degree_of_freedom(&self) -> usize {
        self.allowed.iter().map(Vec::len).sum()
    }
}

/// The set of feasible intersections, sorted by decreasing degree of
/// freedom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntersectionSet {
    intersections: Vec<FeasibleIntersection>,
}

impl IntersectionSet {
    /// Generates feasible intersections from the per-mode noise tables.
    ///
    /// The exact product over modes is exponential
    /// (`O((|L|·|B∪I|)^(M+1)`), so a beam search is used: per-mode
    /// interval sets are intersected mode by mode, keeping the
    /// `beam` highest-degree-of-freedom partial intersections — the
    /// degree-of-freedom pruning of Section VI.
    ///
    /// # Errors
    ///
    /// Returns [`WaveMinError::NoFeasibleInterval`] when any mode has no
    /// feasible interval at all or every intersection is infeasible.
    pub fn generate(
        design: &Design,
        config: &WaveMinConfig,
        tables: &[NoiseTable],
        beam: usize,
    ) -> Result<Self, WaveMinError> {
        let _ = design;
        let kappa = config.skew_bound;
        let beam = beam.max(1);
        let mut partial: Vec<FeasibleIntersection> = Vec::new();

        for (mode, table) in tables.iter().enumerate() {
            // Per-mode interval sets stay uncapped here: the degree-of-
            // freedom cap would happily drop the only intervals that are
            // jointly feasible across modes; the beam below does the
            // pruning instead.
            let set = IntervalSet::generate(table, kappa, None);
            if set.is_empty() {
                return Err(WaveMinError::NoFeasibleInterval);
            }
            if mode == 0 {
                partial = set
                    .intervals()
                    .iter()
                    .map(|iv| FeasibleIntersection {
                        windows: vec![(iv.t_lo, iv.t_hi)],
                        allowed: iv.allowed.clone(),
                    })
                    .collect();
            } else {
                let mut next = Vec::new();
                for p in &partial {
                    for iv in set.intervals() {
                        let mut allowed = Vec::with_capacity(p.allowed.len());
                        let mut feasible = true;
                        for (sa, sb) in p.allowed.iter().zip(&iv.allowed) {
                            let inter: Vec<usize> =
                                sa.iter().copied().filter(|o| sb.contains(o)).collect();
                            if inter.is_empty() {
                                feasible = false;
                                break;
                            }
                            allowed.push(inter);
                        }
                        if feasible {
                            let mut windows = p.windows.clone();
                            windows.push((iv.t_lo, iv.t_hi));
                            next.push(FeasibleIntersection { windows, allowed });
                        }
                    }
                }
                next.sort_by_key(FeasibleIntersection::degree_of_freedom);
                next.reverse();
                next.dedup_by(|a, b| a.allowed == b.allowed);
                next.truncate(beam);
                partial = next;
            }
            if partial.is_empty() {
                return Err(WaveMinError::NoFeasibleInterval);
            }
        }

        partial.sort_by_key(FeasibleIntersection::degree_of_freedom);
        partial.reverse();
        Ok(Self {
            intersections: partial,
        })
    }

    /// The intersections, best degree of freedom first.
    #[must_use]
    pub fn intersections(&self) -> &[FeasibleIntersection] {
        &self.intersections
    }

    /// Number of feasible intersections kept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intersections.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intersections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn tables(design: &Design, cfg: &WaveMinConfig) -> Vec<NoiseTable> {
        (0..design.mode_count())
            .map(|m| NoiseTable::build(design, cfg, m).unwrap())
            .collect()
    }

    #[test]
    fn single_mode_intersections_match_intervals() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let cfg = WaveMinConfig::default();
        let t = tables(&d, &cfg);
        let set = IntersectionSet::generate(&d, &cfg, &t, 16).unwrap();
        assert!(!set.is_empty());
        for x in set.intersections() {
            assert_eq!(x.windows.len(), 1);
            assert!(x.allowed.iter().all(|a| !a.is_empty()));
        }
    }

    #[test]
    fn mild_multimode_still_feasible() {
        // With the generous 110 ps bound used by Table VII-style runs,
        // sizing alone can absorb 0.9/1.1 V arrival differences.
        let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 2);
        let cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(110.0));
        let t = tables(&d, &cfg);
        let set = IntersectionSet::generate(&d, &cfg, &t, 16).unwrap();
        assert!(!set.is_empty());
        for x in set.intersections() {
            assert_eq!(x.windows.len(), 2);
        }
    }

    #[test]
    fn harsh_multimode_is_infeasible() {
        // A 0.7 V island slows its sinks far beyond a 5 ps bound.
        let d = Design::from_benchmark_multimode_levels(
            &Benchmark::s15850(),
            3,
            4,
            3,
            wavemin_cells::units::Volts::new(0.7),
            wavemin_cells::units::Volts::new(1.1),
        );
        let cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(5.0));
        let t = tables(&d, &cfg);
        assert_eq!(
            IntersectionSet::generate(&d, &cfg, &t, 16).unwrap_err(),
            WaveMinError::NoFeasibleInterval
        );
    }

    #[test]
    fn dof_ordering_and_beam() {
        let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 2);
        let cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(110.0));
        let t = tables(&d, &cfg);
        let set = IntersectionSet::generate(&d, &cfg, &t, 4).unwrap();
        assert!(set.len() <= 4);
        let dofs: Vec<usize> = set
            .intersections()
            .iter()
            .map(FeasibleIntersection::degree_of_freedom)
            .collect();
        assert!(dofs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn intersection_allowed_is_subset_of_each_mode() {
        let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 2);
        let cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(110.0));
        let t = tables(&d, &cfg);
        let set = IntersectionSet::generate(&d, &cfg, &t, 8).unwrap();
        for x in set.intersections() {
            for (mode, &(lo, hi)) in x.windows.iter().enumerate() {
                for (si, opts) in x.allowed.iter().enumerate() {
                    for &o in opts {
                        let opt = &t[mode].sinks[si].options[o];
                        assert!(
                            opt.delay_code_for(lo, hi).is_some(),
                            "option {o} of sink {si} infeasible in mode {mode}"
                        );
                    }
                }
            }
        }
    }
}
