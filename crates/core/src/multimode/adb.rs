//! Adjustable delay buffer insertion: the stand-in for the optimal
//! embedder of Kim et al. [17].
//!
//! When sizing alone cannot satisfy the skew bound in every power mode,
//! some buffers must become ADBs whose delay is retuned per mode. The
//! greedy embedder here repairs *early* sinks (the ones that arrive more
//! than κ before the mode's latest sink): each violating leaf is converted
//! to the same-drive ADB and given per-mode delay codes centering it in
//! the feasible window; when a leaf's deficit exceeds the ADB range, its
//! ancestors are converted too so that the budget accumulates along the
//! path.

use crate::design::Design;
use crate::error::WaveMinError;
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Picoseconds;
use wavemin_cells::CellKind;
use wavemin_clocktree::NodeId;

/// The result of ADB insertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdbPlan {
    /// Nodes converted to ADBs (leaves and internals).
    pub adb_nodes: Vec<NodeId>,
    /// Repair iterations used.
    pub iterations: usize,
    /// Worst remaining skew over all modes after insertion.
    pub final_skew: Picoseconds,
}

impl AdbPlan {
    /// Number of ADBs inserted.
    #[must_use]
    pub fn count(&self) -> usize {
        self.adb_nodes.len()
    }
}

const MAX_ITERATIONS: usize = 60;

/// Inserts ADBs (and their per-mode delay codes) until every mode's skew
/// is within `kappa`.
///
/// # Errors
///
/// Returns [`WaveMinError::AdbInsertionFailed`] when the violations cannot
/// be repaired within the adjustable range (even using ancestors), and
/// propagates timing failures.
pub fn insert_adbs(design: &mut Design, kappa: Picoseconds) -> Result<AdbPlan, WaveMinError> {
    let mut adb_nodes: Vec<NodeId> = Vec::new();
    for iteration in 0..MAX_ITERATIONS {
        let mut worst_violation = Picoseconds::ZERO;
        let mut fixed_any = false;

        for mode in 0..design.mode_count() {
            let timing = design.timing(mode)?;
            let leaves = design.tree.leaves();
            let latest = leaves
                .iter()
                .map(|l| timing.output_arrival[l.0].value())
                .fold(f64::NEG_INFINITY, f64::max);
            let floor = latest - kappa.value();
            // Overshoot slightly past the window edge to avoid boundary
            // flapping across iterations.
            let margin = (kappa.value() * 0.1).min(5.0);
            let mut deficit: Vec<f64> = vec![0.0; design.tree.len()];
            let mut any = false;
            for &leaf in &leaves {
                let d = floor - timing.output_arrival[leaf.0].value();
                if d > 1e-9 {
                    deficit[leaf.0] = d + margin;
                    worst_violation = worst_violation.max(Picoseconds::new(d));
                    any = true;
                }
            }
            if !any {
                continue;
            }
            // Subtree phase (the [17] insight): one ADB at an internal
            // node repairs its whole subtree. The committed delay is the
            // *largest* common shift that fixes every early descendant
            // without pushing any of them past the current latest sink —
            // so sub-κ arrival spreads inside a subtree do not force
            // per-leaf ADBs, keeping the count minimal and the leaves
            // free for polarity assignment.
            let mut added = vec![0.0_f64; design.tree.len()];
            let order = design.tree.topological_order();
            for &node in &order {
                if node == design.tree.root() || design.tree.node(node).is_leaf() {
                    continue;
                }
                let subtree = leaf_descendants(design, node);
                if subtree.is_empty() {
                    continue;
                }
                let eff = |l: &NodeId| timing.output_arrival[l.0].value() + added[l.0];
                let min_eff = subtree.iter().map(eff).fold(f64::INFINITY, f64::min);
                let max_eff = subtree.iter().map(eff).fold(f64::NEG_INFINITY, f64::max);
                let needed = floor - min_eff + margin;
                if needed <= 1e-9 {
                    continue;
                }
                let headroom = (latest - max_eff).max(0.0);
                let wanted = needed.min(headroom);
                if wanted <= 1e-9 {
                    continue;
                }
                let committed = commit_delay(design, node, mode, wanted, &mut adb_nodes)?;
                if committed > 0.0 {
                    fixed_any = true;
                    for l in &subtree {
                        added[l.0] += committed;
                        deficit[l.0] = (deficit[l.0] - committed).max(0.0);
                    }
                }
            }
            // Leaf phase: individual stragglers the common shifts could
            // not cover.
            for &leaf in &leaves {
                if deficit[leaf.0] > 1e-9 {
                    fixed_any |= repair_path(design, leaf, mode, deficit[leaf.0], &mut adb_nodes)?;
                }
            }
        }

        if worst_violation == Picoseconds::ZERO {
            return Ok(AdbPlan {
                adb_nodes,
                iterations: iteration,
                final_skew: design.max_skew()?,
            });
        }
        if !fixed_any {
            return Err(WaveMinError::AdbInsertionFailed(format!(
                "residual violation of {worst_violation} with all path budgets exhausted"
            )));
        }
    }
    let final_skew = design.max_skew()?;
    if final_skew.value() <= kappa.value() + 1e-6 {
        Ok(AdbPlan {
            adb_nodes,
            iterations: MAX_ITERATIONS,
            final_skew,
        })
    } else {
        Err(WaveMinError::AdbInsertionFailed(format!(
            "did not converge: final skew {final_skew} exceeds bound {kappa}"
        )))
    }
}

/// The leaf descendants of a node.
fn leaf_descendants(design: &Design, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        let n = design.tree.node(id);
        if n.is_leaf() {
            out.push(id);
        }
        stack.extend(n.children().iter().copied());
    }
    out
}

/// Converts `node` to an ADB if needed and commits up to `wanted` ps of
/// mode-`mode` delay within its remaining budget. Returns the committed
/// amount (0.0 when the node cannot hold more delay or is an inverter).
fn commit_delay(
    design: &mut Design,
    node: NodeId,
    mode: usize,
    wanted: f64,
    adb_nodes: &mut Vec<NodeId>,
) -> Result<f64, WaveMinError> {
    let cell_name = design.tree.node(node).cell.clone();
    let spec = design
        .lib
        .get(&cell_name)
        .ok_or_else(|| WaveMinError::MissingCell(cell_name.clone()))?;
    let spec = if spec.kind() == CellKind::Buffer {
        let adb_name = nearest_adb_name(design, spec.drive())?;
        design.tree.set_cell(node, &adb_name);
        if !adb_nodes.contains(&node) {
            adb_nodes.push(node);
        }
        design
            .lib
            .get(&adb_name)
            .ok_or(WaveMinError::MissingCell(adb_name))?
    } else if spec.kind() == CellKind::Adb {
        spec
    } else {
        return Ok(0.0);
    };
    let range = spec.delay_range().value();
    let steps = spec.delay_steps().max(1);
    let step = range / steps as f64;
    let current = design.mode_adjust[mode]
        .extra_delay
        .get(node.0)
        .copied()
        .unwrap_or(Picoseconds::ZERO)
        .value();
    let budget = range - current;
    if budget <= 1e-9 {
        return Ok(0.0);
    }
    let add = ((wanted.min(budget) / step).ceil() * step).min(budget);
    if add <= 1e-9 {
        return Ok(0.0);
    }
    design.mode_adjust[mode].set_extra_delay(node, Picoseconds::new(current + add));
    Ok(add)
}

/// Adds `target` ps of mode-`mode` delay along `leaf`'s path, converting
/// cells to ADBs as needed. Returns `true` when any additional delay was
/// committed.
fn repair_path(
    design: &mut Design,
    leaf: NodeId,
    mode: usize,
    target: f64,
    adb_nodes: &mut Vec<NodeId>,
) -> Result<bool, WaveMinError> {
    let mut remaining = target;
    let mut committed = false;
    let mut cursor = Some(leaf);
    while let Some(node) = cursor {
        if remaining <= 1e-9 {
            break;
        }
        if node == design.tree.root() {
            break;
        }
        let cell_name = design.tree.node(node).cell.clone();
        let spec = design
            .lib
            .get(&cell_name)
            .ok_or_else(|| WaveMinError::MissingCell(cell_name.clone()))?;
        // Convert plain buffers to the same-drive ADB; inverters stay (a
        // converted inverter would flip its subtree's polarity).
        let spec = if spec.kind() == CellKind::Buffer {
            let adb_name = nearest_adb_name(design, spec.drive())?;
            design.tree.set_cell(node, &adb_name);
            if !adb_nodes.contains(&node) {
                adb_nodes.push(node);
            }
            design
                .lib
                .get(&adb_name)
                .ok_or(WaveMinError::MissingCell(adb_name))?
        } else if spec.kind() == CellKind::Adb {
            spec
        } else {
            cursor = design.tree.node(node).parent();
            continue;
        };
        let range = spec.delay_range().value();
        let steps = spec.delay_steps().max(1);
        let step = range / steps as f64;
        let current = design.mode_adjust[mode]
            .extra_delay
            .get(node.0)
            .copied()
            .unwrap_or(Picoseconds::ZERO)
            .value();
        let budget = range - current;
        if budget > 1e-9 {
            let add = remaining.min(budget);
            let add = (add / step).ceil() * step;
            let add = add.min(budget);
            if add > 1e-9 {
                design.mode_adjust[mode].set_extra_delay(node, Picoseconds::new(current + add));
                remaining -= add;
                committed = true;
            }
        }
        cursor = design.tree.node(node).parent();
    }
    Ok(committed)
}

/// The smallest available ADB drive ≥ the buffer's drive.
fn nearest_adb_name(design: &Design, drive: u32) -> Result<String, WaveMinError> {
    for candidate in [4u32, 8, 16, 32] {
        if candidate >= drive {
            let name = format!("ADB_X{candidate}");
            if design.lib.get(&name).is_some() {
                return Ok(name);
            }
        }
    }
    Err(WaveMinError::MissingCell(format!(
        "no ADB with drive >= {drive}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use wavemin_cells::units::Volts;

    fn skewed_design() -> Design {
        // 0.9 V islands stretch arrivals to ~30 ps across modes, beyond
        // a 20 ps bound but within the path ADB budget.
        Design::from_benchmark_multimode_levels(
            &Benchmark::s15850(),
            3,
            4,
            4,
            Volts::new(0.9),
            Volts::new(1.1),
        )
    }

    #[test]
    fn insertion_repairs_all_modes() {
        let mut d = skewed_design();
        let kappa = Picoseconds::new(20.0);
        assert!(d.max_skew().unwrap() > kappa, "precondition: violated");
        let plan = insert_adbs(&mut d, kappa).unwrap();
        assert!(plan.count() > 0, "some ADBs must be inserted");
        assert!(
            d.max_skew().unwrap().value() <= kappa.value() + 1e-6,
            "skew {} after insertion",
            d.max_skew().unwrap()
        );
    }

    #[test]
    fn already_feasible_design_needs_no_adbs() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let plan = insert_adbs(&mut d, Picoseconds::new(20.0)).unwrap();
        assert_eq!(plan.count(), 0);
        assert_eq!(plan.iterations, 0);
    }

    #[test]
    fn adb_cells_are_installed_in_tree() {
        let mut d = skewed_design();
        let plan = insert_adbs(&mut d, Picoseconds::new(20.0)).unwrap();
        for &node in &plan.adb_nodes {
            let cell = &d.tree.node(node).cell;
            assert!(cell.starts_with("ADB_X"), "node holds {cell}");
        }
    }

    #[test]
    fn codes_are_mode_specific_and_quantized() {
        let mut d = skewed_design();
        let plan = insert_adbs(&mut d, Picoseconds::new(20.0)).unwrap();
        assert!(plan.count() > 0);
        // Mode 0 (all-high) needed no repair: its codes stay zero.
        let any_nonzero_other = (1..d.mode_count()).any(|m| {
            d.mode_adjust[m]
                .extra_delay
                .iter()
                .any(|&e| e > Picoseconds::ZERO)
        });
        assert!(any_nonzero_other);
        // Every code lies on the 2.5 ps step grid within [0, 30].
        for m in 0..d.mode_count() {
            for &e in &d.mode_adjust[m].extra_delay {
                let v = e.value();
                assert!((0.0..=30.0 + 1e-9).contains(&v));
                let rem = (v / 2.5).fract();
                assert!(!(1e-6..=1.0 - 1e-6).contains(&rem), "code {v} off-grid");
            }
        }
    }

    #[test]
    fn impossible_bound_fails_cleanly() {
        let mut d = Design::from_benchmark_multimode_levels(
            &Benchmark::s15850(),
            3,
            4,
            4,
            Volts::new(0.6),
            Volts::new(1.1),
        );
        let err = insert_adbs(&mut d, Picoseconds::new(0.5)).unwrap_err();
        assert!(matches!(err, WaveMinError::AdbInsertionFailed(_)));
    }
}
