//! Polarity assignment for multiple power mode designs (Section VI).
//!
//! A multi-mode design's sink arrival times differ per mode (voltage
//! islands speed up or slow down), so the skew bound must hold in *every*
//! mode. The flow (Fig. 13):
//!
//! 1. compute per-mode feasible intervals and intersect them
//!    ([`intersect`]); if a feasible intersection exists, solve the MOSP
//!    problem with per-mode noise vectors concatenated into one weight;
//! 2. otherwise insert adjustable delay buffers to restore feasibility
//!    ([`adb`] — the stand-in for the embedder of Kim et al. [17]), then
//!    re-run with leaf ADBs allowed to become the proposed adjustable
//!    delay inverters (ADIs).

pub mod adb;
pub mod clkwavemin_m;
pub mod intersect;

pub use adb::{insert_adbs, AdbPlan};
pub use clkwavemin_m::ClkWaveMinM;
pub use intersect::{FeasibleIntersection, IntersectionSet};
