//! ClkWaveMin-M: the full multi-mode optimization flow (Fig. 13).

use crate::algo::clkwavemin::{solve_zone_mosp_generic, MospLadder};
use crate::algo::{finish_outcome, Outcome, ZoneProblem};
use crate::assignment::Assignment;
use crate::config::WaveMinConfig;
use crate::design::Design;
use crate::error::WaveMinError;
use crate::multimode::adb::insert_adbs;
use crate::multimode::intersect::{FeasibleIntersection, IntersectionSet};
use crate::noise_table::NoiseTable;
use crate::observe::{MetricsRegistry, ReportContext, Stage};
use wavemin_cells::units::Picoseconds;

/// The multi-power-mode optimizer.
///
/// Flow: try polarity assignment + sizing alone (per-mode feasible
/// interval intersection, per-mode noise vectors concatenated into the
/// MOSP weights); if no feasible intersection exists, insert ADBs first
/// (leaf ADBs may then be re-assigned to the proposed ADIs), and optimize
/// the ADB-embedded tree. The `Outcome`'s *before* figures describe the
/// state right before the final polarity optimization — i.e. the
/// "ADB-embedded-only" baseline of Table VII when ADBs were needed.
///
/// # Example
///
/// ```
/// use wavemin::prelude::*;
/// use wavemin_cells::units::Picoseconds;
///
/// let design = Design::from_benchmark_multimode(&Benchmark::s15850(), 5, 4, 2);
/// let cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(90.0));
/// let out = ClkWaveMinM::new(cfg.clone()).run(&design)?;
/// assert!(out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9);
/// # Ok::<(), WaveMinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClkWaveMinM {
    config: WaveMinConfig,
    beam: usize,
}

impl ClkWaveMinM {
    /// Creates the optimizer with the given configuration and the default
    /// intersection beam width.
    #[must_use]
    pub fn new(config: WaveMinConfig) -> Self {
        Self { config, beam: 24 }
    }

    /// Overrides the degree-of-freedom beam width used while intersecting
    /// per-mode interval sets.
    #[must_use]
    pub fn with_beam(mut self, beam: usize) -> Self {
        self.beam = beam.max(1);
        self
    }

    /// Runs the flow on a multi-mode design.
    ///
    /// # Errors
    ///
    /// [`WaveMinError::AdbInsertionFailed`] when even ADBs cannot meet the
    /// bound; timing/solver errors otherwise.
    pub fn run(&self, design: &Design) -> Result<Outcome, WaveMinError> {
        self.config.validate()?;
        design.validate()?;
        // One ladder (and one shared deadline) governs the whole flow, so
        // escalations persist across the margin retries below — and one
        // registry keeps accumulating across them (zone ids are stable
        // between retries).
        let registry = MetricsRegistry::from_config(&self.config);
        let budget = self.config.budget();
        let ladder = MospLadder::new(&self.config, budget.clone(), registry.clone());
        let mut outcome = self.run_ladder(design, &ladder)?;
        outcome.degradation = ladder.degradation();
        outcome.faulted_zones = ladder.faulted_zones();
        outcome.report = registry.report(&ReportContext {
            threads: self.config.effective_threads(),
            degenerate_zones: outcome.degenerate_zones,
            ladder_rung: ladder.current_rung(),
            budget_units: budget.work_done(),
            kernel: wavemin_mosp::kernels::active().name(),
        });
        Ok(outcome)
    }

    fn run_ladder(&self, design: &Design, ladder: &MospLadder) -> Result<Outcome, WaveMinError> {
        // Estimation error (sibling-load feedback, slew drift, quantized
        // delay codes, per-mode voltage scaling) can exceed the default
        // headroom on multi-mode designs, so the optimization window is
        // tightened progressively until the exact skew check passes.
        let wm = self.config.window_margin;
        let margins = [wm, (wm - 0.15).max(0.3), (wm - 0.3).max(0.25)];
        let threads = self.config.effective_threads();

        // Phase 1: polarity assignment + sizing alone. The margin only
        // tightens the intersection windows, never the characterization,
        // so the per-mode noise tables and zone problems are built once
        // and shared across all margin retries — the session philosophy
        // applied inside one run.
        let mode_data = self.build_mode_data(design, threads, &ladder.registry)?;
        for &margin in &margins {
            match self.optimize(design, &mode_data, margin, ladder) {
                Ok(outcome) => return Ok(outcome),
                Err(WaveMinError::NoFeasibleInterval) => {}
                Err(e) => return Err(e),
            }
        }
        drop(mode_data);
        // Phase 2: embed ADBs, then re-optimize with ADB/ADI candidates.
        // Repair to the tightened bound so the matching optimization
        // window stays feasible. Each embedded clone is a different
        // design, so its mode data is rebuilt.
        let mut last_err = WaveMinError::NoFeasibleInterval;
        for &margin in &margins {
            let mut embedded = design.clone();
            match insert_adbs(&mut embedded, self.config.skew_bound * margin) {
                Ok(_) => {}
                Err(e) => {
                    last_err = e;
                    continue;
                }
            }
            let embedded_data = self.build_mode_data(&embedded, threads, &ladder.registry)?;
            match self.optimize(&embedded, &embedded_data, margin, ladder) {
                Ok(outcome) => return Ok(outcome),
                Err(WaveMinError::NoFeasibleInterval) => {
                    last_err = WaveMinError::NoFeasibleInterval;
                }
                Err(e) => return Err(e),
            }
        }
        // Trivial solution: the ADB-embedded tree itself (feasible when
        // any insertion above succeeded).
        let mut embedded = design.clone();
        match insert_adbs(&mut embedded, self.config.skew_bound * margins[0]) {
            Ok(_) => finish_outcome(
                &embedded,
                &embedded,
                Assignment::new(),
                f64::NAN,
                0,
                std::time::Duration::ZERO,
            ),
            Err(_) => Err(last_err),
        }
    }

    /// Solves every feasible intersection of a design and returns
    /// `(degree of freedom, min-max cost)` pairs — the data behind the
    /// paper's Fig. 14 (degree-of-freedom pruning justification).
    ///
    /// # Errors
    ///
    /// Propagates preprocessing/solver failures; returns
    /// [`WaveMinError::NoFeasibleInterval`] when nothing intersects.
    pub fn intersection_costs(&self, design: &Design) -> Result<Vec<(usize, f64)>, WaveMinError> {
        let threads = self.config.effective_threads();
        // (figure helper keeps the configured margin and has no budget)
        let ladder = MospLadder::unbudgeted(&self.config);
        let (tables, zones) = self.build_mode_data(design, threads, &ladder.registry)?;
        let mut tight = self.config.clone();
        tight.skew_bound = self.config.skew_bound * self.config.window_margin;
        let set = IntersectionSet::generate(design, &tight, &tables, self.beam)?;
        let solved = crate::parallel::map_ordered(
            set.intersections(),
            threads,
            |_, intersection| match self.solve_intersection(
                design,
                &tables,
                &zones,
                intersection,
                &ladder,
            ) {
                Ok((cost, _)) => Ok(Some((intersection.degree_of_freedom(), cost))),
                Err(WaveMinError::NoFeasibleInterval) => Ok(None),
                Err(e) => Err(e),
            },
        );
        let mut out = Vec::new();
        for result in solved {
            if let Some(pair) = result? {
                out.push(pair);
            }
        }
        Ok(out)
    }

    /// Builds the per-mode noise tables and zone problems, fanning the
    /// independent modes out over the worker pool.
    #[allow(clippy::type_complexity)]
    fn build_mode_data(
        &self,
        design: &Design,
        threads: usize,
        registry: &MetricsRegistry,
    ) -> Result<(Vec<NoiseTable>, Vec<Vec<ZoneProblem>>), WaveMinError> {
        let mode_ids: Vec<usize> = (0..design.mode_count()).collect();
        let tables: Vec<NoiseTable> = {
            let _span = registry.span(Stage::Characterization);
            crate::parallel::map_ordered(&mode_ids, threads, |_, &m| {
                NoiseTable::build(design, &self.config, m)
            })
            .into_iter()
            .collect::<Result<_, _>>()?
        };
        let _span = registry.span(Stage::Zoning);
        let zones: Vec<Vec<ZoneProblem>> =
            crate::parallel::map_ordered(&mode_ids, threads, |_, &m| {
                ZoneProblem::build_all(design, &self.config, &tables[m])
            });
        if let Some(per_mode) = zones.first() {
            registry.ensure_zones(per_mode.len());
        }
        Ok((tables, zones))
    }

    /// One optimization pass over a (possibly ADB-embedded) design with
    /// the given window margin. `mode_data` must be the output of
    /// [`Self::build_mode_data`] for this exact design; passing it in lets
    /// margin retries share one characterization.
    fn optimize(
        &self,
        design: &Design,
        mode_data: &(Vec<NoiseTable>, Vec<Vec<ZoneProblem>>),
        margin: f64,
        ladder: &MospLadder,
    ) -> Result<Outcome, WaveMinError> {
        let start = std::time::Instant::now();
        let threads = self.config.effective_threads();
        let (tables, zones) = mode_data;
        // Reserve sibling-load headroom like the single-mode flow.
        let mut tight = self.config.clone();
        tight.skew_bound = self.config.skew_bound * margin;
        let set = IntersectionSet::generate(design, &tight, tables, self.beam)?;
        let degenerate_zones = zones
            .iter()
            .flatten()
            .filter(|z| z.plan.is_degenerate())
            .count();

        // Intersections are independent of each other (each chains its own
        // per-mode accumulated background), so they fan out over the
        // worker pool; input-order collection keeps the ranking identical
        // to a sequential run.
        let solved =
            crate::parallel::map_ordered(set.intersections(), threads, |_, intersection| {
                let _span = ladder.registry.span(Stage::Intersection);
                match self.solve_intersection(design, tables, zones, intersection, ladder) {
                    Ok(pair) => Ok(Some(pair)),
                    Err(WaveMinError::NoFeasibleInterval) => Ok(None),
                    Err(e) => Err(e),
                }
            });
        let mut ranked: Vec<(f64, Assignment)> = Vec::new();
        // Like the single-mode flow, an intersection lost to an
        // unsalvageable zone fault only fails the run when nothing else
        // survives to rank.
        let mut fault: Option<WaveMinError> = None;
        for result in solved {
            match result {
                Ok(Some(pair)) => ranked.push(pair),
                Ok(None) => {}
                Err(e @ WaveMinError::ZoneFault { .. }) => {
                    if fault.is_none() {
                        fault = Some(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if ranked.is_empty() {
            return Err(fault.unwrap_or(WaveMinError::NoFeasibleInterval));
        }
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        let runtime = start.elapsed();

        let _validation_span = ladder.registry.span(Stage::Validation);
        for (cost, assignment) in &ranked {
            let mut candidate = design.clone();
            assignment.apply_to(&mut candidate);
            let skew = candidate.max_skew()?;
            if std::env::var_os("WAVEMIN_DEBUG").is_some() {
                eprintln!("mm candidate cost {cost:.1} -> exact skew {skew}");
            }
            if skew.value() <= self.config.skew_bound.value() + 1e-9 {
                let mut out = finish_outcome(
                    design,
                    &candidate,
                    assignment.clone(),
                    *cost,
                    set.len(),
                    runtime,
                )?;
                out.degenerate_zones = degenerate_zones;
                return Ok(out);
            }
        }
        Err(WaveMinError::NoFeasibleInterval)
    }

    /// Solves every zone inside one intersection; weights concatenate the
    /// per-mode noise vectors (Fig. 12).
    fn solve_intersection(
        &self,
        design: &Design,
        tables: &[NoiseTable],
        zones: &[Vec<ZoneProblem>],
        intersection: &FeasibleIntersection,
        ladder: &MospLadder,
    ) -> Result<(f64, Assignment), WaveMinError> {
        let _ = design;
        let modes = tables.len();
        let zone_count = zones[0].len();
        let mut assignment = Assignment::new();
        let mut cost = 0.0_f64;
        // Accumulated noise of already-assigned zones, per mode (the
        // zones-one-by-one accumulation of the single-mode flow).
        let mut accumulated = vec![crate::noise_table::BackgroundAccumulator::zero(); modes];
        // Largest zones first.
        let mut zone_ids: Vec<usize> = (0..zone_count).collect();
        zone_ids.sort_by_key(|&z| std::cmp::Reverse(zones[0][z].sinks.len()));

        for zi in zone_ids {
            let zone0 = &zones[0][zi];
            let rows = zone0.sinks.len();
            let allowed: Vec<&[usize]> = zone0
                .sinks
                .iter()
                .map(|&si| intersection.allowed[si].as_slice())
                .collect();
            // Concatenated background (static non-leaf + accumulated
            // assigned zones, per mode).
            let mut background = Vec::new();
            for m in 0..modes {
                let mut bg = zones[m][zi].background.clone();
                zones[m][zi]
                    .plan
                    .accumulate_background_into(&mut bg, &accumulated[m]);
                background.extend_from_slice(&bg);
            }

            let option_data = |local: usize, opt: usize| {
                let mut codes = Vec::with_capacity(modes);
                let mut vector = Vec::new();
                for m in 0..modes {
                    let si = zones[m][zi].sinks[local];
                    let o = &tables[m].sinks[si].options[opt];
                    let (lo, hi) = intersection.windows[m];
                    let code = o.delay_code_for(lo, hi)?;
                    codes.push(code);
                    vector.extend(zones[m][zi].option_vector(&tables[m], local, opt, code));
                }
                Some((codes, vector))
            };

            // Same containment as the single-mode framework: a panicking
            // (or injected-fault) zone worker is caught, retried once on
            // the injection-free greedy rung, and only fails the
            // intersection when the salvage also dies.
            let attempt = |salvage: bool| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    solve_zone_mosp_generic::<Vec<Picoseconds>>(
                        ladder,
                        zi,
                        rows,
                        option_data,
                        &allowed,
                        &background,
                        salvage,
                    )
                }))
            };
            let (choices, zone_cost) = match attempt(false) {
                Ok(Ok(pair)) => pair,
                Ok(Err(WaveMinError::ZoneFault { payload, .. })) => {
                    salvage_mm_zone(ladder, zi, &payload, &attempt)?
                }
                Ok(Err(e)) => return Err(e),
                Err(p) => {
                    let payload = crate::parallel::panic_payload(p.as_ref());
                    salvage_mm_zone(ladder, zi, &payload, &attempt)?
                }
            };
            cost = cost.max(zone_cost);
            for (local, (opt, codes)) in choices.iter().enumerate() {
                let si = zone0.sinks[local];
                let entry = &tables[0].sinks[si];
                let option = &entry.options[*opt];
                assignment.set(entry.node, option.cell.clone());
                for m in 0..modes {
                    let o = &tables[m].sinks[zones[m][zi].sinks[local]].options[*opt];
                    let code = codes.get(m).copied().unwrap_or(Picoseconds::ZERO);
                    accumulated[m].push(&o.waves.shifted(code));
                }
                if option.is_adjustable() {
                    // Always record adjustable codes (zero overwrites any
                    // stale insertion-phase code).
                    for (m, &code) in codes.iter().enumerate() {
                        assignment.set_delay_code(m, entry.node, code);
                    }
                }
            }
        }
        Ok((cost, assignment))
    }
}

/// One multimode zone solution: per-sink `(option, per-mode delay codes)`
/// choices plus the zone's min–max cost.
type MmZoneSolution = (Vec<(usize, Vec<Picoseconds>)>, f64);

/// The multimode salvage retry: records the fault against the ladder and
/// the registry, re-attempts the zone on the injection-free greedy rung,
/// and wraps an unrecoverable failure in [`WaveMinError::ZoneFault`].
fn salvage_mm_zone<F>(
    ladder: &MospLadder,
    zone: usize,
    payload: &str,
    attempt: &F,
) -> Result<MmZoneSolution, WaveMinError>
where
    F: Fn(bool) -> std::thread::Result<Result<MmZoneSolution, WaveMinError>>,
{
    ladder.note_zone_fault(zone);
    ladder.registry.record_zone_fault();
    match attempt(true) {
        Ok(Ok(pair)) => {
            ladder.note_zone_salvaged(zone);
            ladder.registry.record_zone_salvage();
            Ok(pair)
        }
        Ok(Err(e)) => Err(WaveMinError::ZoneFault {
            zone,
            payload: format!("{payload}; salvage failed: {e}"),
        }),
        Err(p) => Err(WaveMinError::ZoneFault {
            zone,
            payload: format!(
                "{payload}; salvage panicked: {}",
                crate::parallel::panic_payload(p.as_ref())
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use wavemin_cells::units::Volts;

    #[test]
    fn mild_design_needs_no_adbs() {
        let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 5, 4, 2);
        let cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(110.0));
        let out = ClkWaveMinM::new(cfg).run(&d).unwrap();
        assert_eq!(out.adb_count, 0);
        assert_eq!(out.adi_count, 0);
        assert!(out.peak_after.value() <= out.peak_before.value() + 1e-9);
    }

    #[test]
    fn harsh_design_gets_adbs_and_meets_skew() {
        let d = Design::from_benchmark_multimode_levels(
            &Benchmark::s15850(),
            3,
            4,
            4,
            Volts::new(0.9),
            Volts::new(1.1),
        );
        let kappa = Picoseconds::new(20.0);
        assert!(d.max_skew().unwrap() > kappa);
        let cfg = WaveMinConfig::default().with_skew_bound(kappa);
        let out = ClkWaveMinM::new(cfg).run(&d).unwrap();
        assert!(out.adb_count > 0, "ADBs must be embedded");
        assert!(
            out.skew_after.value() <= kappa.value() * 1.05 + 1e-9,
            "skew {} vs bound {kappa}",
            out.skew_after
        );
    }

    #[test]
    fn every_mode_respects_the_bound_after_optimization() {
        let d = Design::from_benchmark_multimode_levels(
            &Benchmark::s15850(),
            3,
            4,
            4,
            Volts::new(0.9),
            Volts::new(1.1),
        );
        let kappa = Picoseconds::new(22.0);
        let cfg = WaveMinConfig::default().with_skew_bound(kappa);
        let out = ClkWaveMinM::new(cfg).run(&d).unwrap();
        let mut optimized = d.clone();
        out.assignment.apply_to(&mut optimized);
        // Reconstruct the embedded ADB codes: skew_after already checked
        // the worst mode; verify per mode explicitly through the outcome.
        assert!(out.skew_after.value() <= kappa.value() * 1.05 + 1e-9);
    }
}
