//! Self-contained interactive HTML run reports.
//!
//! [`render_html`] turns one [`RunReport`] (plus optional waveform and
//! tree SVGs and a Chrome trace) into a single HTML file with **zero
//! external references**: styles and scripts are inline, the full
//! report JSON rides along in a `<script type="application/json">`
//! block for machine consumption, and the interactive bits — sorting
//! the peak-attribution table, zooming the zone-solve timeline — are a
//! few dozen lines of dependency-free JavaScript. The file can be
//! attached to a CI run, mailed around, or opened from disk years
//! later and still work.
//!
//! Sections, in order: run summary cards, the latency/size histograms
//! ([`crate::observe::RunHistograms`]) as server-side SVG bar charts
//! with quantile captions, the exact peak-attribution table (the
//! rendered total is the `f64` round-trip of `peak_ma`, so re-summing
//! the rows reproduces the report's value), the overlaid waveform
//! chart, the clock-tree rendering, and a zone-solve timeline
//! reconstructed client-side from the embedded Chrome trace's
//! `zone_solve` complete spans.

use std::fmt::Write as _;

use crate::observe::{bucket_upper_bound, RunHistogram, RunReport};

/// Everything the generator may embed. Only `report` is mandatory;
/// absent extras simply drop their section.
#[derive(Debug, Clone, Copy)]
pub struct ReportInputs<'a> {
    /// Page title (HTML-escaped).
    pub title: &'a str,
    /// The run report to render and embed.
    pub report: &'a RunReport,
    /// Overlaid rail-current waveform chart (from
    /// [`wavemin_clocktree::svg::render_waveforms`]).
    pub waveform_svg: Option<&'a str>,
    /// Clock-tree rendering (from [`wavemin_clocktree::svg::render`]).
    pub tree_svg: Option<&'a str>,
    /// Chrome trace JSON (from [`crate::trace::TraceJournal::chrome_trace`]);
    /// drives the interactive zone-solve timeline.
    pub trace_json: Option<&'a str>,
}

/// Escapes text for HTML element and attribute content.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Makes a JSON document safe to embed inside a `<script>` block:
/// `<` only occurs inside JSON strings, where the `\u003c` escape is
/// equivalent, so the replacement never changes the decoded value but
/// does make `</script>` (and `<!--`) unrepresentable.
fn embed_json(json: &str) -> String {
    json.replace('<', "\\u003c")
}

/// Human-scaled count: `1234567` → `"1.23M"`.
fn human(v: u64) -> String {
    let vf = v as f64;
    if vf >= 1e9 {
        format!("{:.2}G", vf / 1e9)
    } else if vf >= 1e6 {
        format!("{:.2}M", vf / 1e6)
    } else if vf >= 1e3 {
        format!("{:.2}k", vf / 1e3)
    } else {
        v.to_string()
    }
}

/// Renders one histogram as an inline SVG bar chart over its occupied
/// bucket range, one bar per log2 bucket, with a tooltip per bar.
fn histogram_svg(h: &RunHistogram) -> String {
    if h.count == 0 {
        return "<p class=\"empty\">no observations</p>".to_string();
    }
    let lo = h.buckets.first().map_or(0, |b| b.index);
    let hi = h.buckets.last().map_or(0, |b| b.index);
    let n = (hi - lo + 1) as usize;
    let peak = h.buckets.iter().map(|b| b.count).max().unwrap_or(1).max(1);
    let (w, chart_h, pad) = (720.0_f64, 120.0_f64, 4.0_f64);
    let bar_w = (w / n as f64 - pad).max(2.0);
    let mut svg = format!(
        "<svg viewBox=\"0 0 {w} {total}\" width=\"{w}\" height=\"{total}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">",
        total = chart_h + 22.0
    );
    for (slot, index) in (lo..=hi).enumerate() {
        let count = h
            .buckets
            .iter()
            .find(|b| b.index == index)
            .map_or(0, |b| b.count);
        let frac = count as f64 / peak as f64;
        let bh = (chart_h * frac).max(if count > 0 { 2.0 } else { 0.0 });
        let x = slot as f64 * (w / n as f64) + pad / 2.0;
        let y = chart_h - bh;
        let _ = write!(
            svg,
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{bh:.1}\" \
             fill=\"#4477aa\"><title>&#8804; {ub}: {count}</title></rect>",
            ub = bucket_upper_bound(index as usize),
        );
        if n <= 24 || slot % (n / 12).max(1) == 0 {
            let _ = write!(
                svg,
                "<text x=\"{cx:.1}\" y=\"{ty:.1}\" font-size=\"9\" \
                 text-anchor=\"middle\" fill=\"#666\">{label}</text>",
                cx = x + bar_w / 2.0,
                ty = chart_h + 14.0,
                label = human(bucket_upper_bound(index as usize)),
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// One histogram block: header, quantile caption, bar chart.
fn histogram_section(name: &str, h: &RunHistogram) -> String {
    let mean = if h.count == 0 {
        0
    } else {
        h.sum / h.count.max(1)
    };
    format!(
        "<div class=\"hist\"><h3>{name}</h3>\
         <p class=\"caption\">n={count} &#183; min={min} &#183; mean&#8776;{mean} &#183; \
         max={max} &#183; p50&#8804;{p50} &#183; p90&#8804;{p90} &#183; p99&#8804;{p99}</p>\
         {chart}</div>",
        name = esc(name),
        count = human(h.count),
        min = human(h.min),
        mean = human(mean),
        max = human(h.max),
        p50 = human(h.p50),
        p90 = human(h.p90),
        p99 = human(h.p99),
        chart = histogram_svg(h),
    )
}

/// The summary cards across the top of the page.
fn summary_cards(report: &RunReport) -> String {
    let c = &report.counters;
    let cards: &[(&str, String)] = &[
        ("zone solves", human(c.zone_solves)),
        ("zones reused", human(c.zones_reused)),
        ("labels created", human(c.labels_created)),
        ("solver work", human(c.solver_work)),
        ("pareto paths", human(c.pareto_paths)),
        ("ladder rung", report.ladder_rung.to_string()),
        ("threads", report.threads.to_string()),
        (
            "kernel",
            if report.kernel.is_empty() {
                "?".to_string()
            } else {
                report.kernel.clone()
            },
        ),
    ];
    let mut out = String::from("<div class=\"cards\">");
    for (label, value) in cards {
        let _ = write!(
            out,
            "<div class=\"card\"><div class=\"v\">{}</div><div class=\"l\">{}</div></div>",
            esc(value),
            esc(label)
        );
    }
    out.push_str("</div>");
    out
}

/// The peak-attribution table. Every row carries machine-precision
/// values in `data-v` attributes (used by the sorter); the visible
/// total is the shortest-round-trip rendering of `peak_ma`, so parsing
/// it back yields the report's value exactly.
fn attribution_section(report: &RunReport) -> String {
    let Some(attr) = report.attribution.as_ref() else {
        return String::new();
    };
    let mut out = format!(
        "<section><h2>Peak attribution</h2>\
         <p class=\"caption\">mode {mode} &#183; rail {rail} &#183; edge {edge} &#183; \
         t={time_ps} ps &#183; peak {peak_ma} mA across {n} nodes</p>\
         <table id=\"attr\"><thead><tr>\
         <th data-col=\"0\" data-num=\"1\">node</th>\
         <th data-col=\"1\">cell</th>\
         <th data-col=\"2\">kind</th>\
         <th data-col=\"3\" data-num=\"1\">mA at peak</th>\
         </tr></thead><tbody>",
        mode = attr.mode,
        rail = esc(&attr.rail),
        edge = esc(&attr.edge),
        time_ps = attr.time_ps,
        peak_ma = attr.peak_ma,
        n = attr.contributions.len(),
    );
    for c in &attr.contributions {
        let _ = write!(
            out,
            "<tr><td data-v=\"{node}\">{node}</td><td data-v=\"{cell}\">{cell}</td>\
             <td data-v=\"{kind}\">{kind}</td><td data-v=\"{ma}\">{ma}</td></tr>",
            node = c.node,
            cell = esc(&c.cell),
            kind = esc(&c.kind),
            ma = c.amps_ma,
        );
    }
    let _ = write!(
        out,
        "</tbody><tfoot><tr><td colspan=\"3\">total</td>\
         <td id=\"attr-total\" data-v=\"{peak}\">{peak}</td></tr></tfoot></table></section>",
        peak = attr.peak_ma
    );
    out
}

const STYLE: &str = "\
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:820px;color:#222;padding:0 1rem}\
h1{font-size:1.5rem}h2{font-size:1.15rem;margin-top:2rem;border-bottom:1px solid #ddd}\
h3{font-size:1rem;margin:0.8rem 0 0.2rem}\
.cards{display:flex;flex-wrap:wrap;gap:.6rem;margin:1rem 0}\
.card{border:1px solid #ddd;border-radius:6px;padding:.5rem .9rem;min-width:6rem;text-align:center}\
.card .v{font-size:1.2rem;font-weight:600}.card .l{font-size:.75rem;color:#666}\
.caption{color:#666;font-size:.85rem;margin:.2rem 0}\
table{border-collapse:collapse;width:100%}th,td{border:1px solid #ddd;padding:.25rem .5rem;text-align:left}\
th{cursor:pointer;background:#f5f5f5;user-select:none}th:hover{background:#e8e8e8}\
tfoot td{font-weight:600;background:#fafafa}\
.empty{color:#999;font-style:italic}\
#tl-rows{position:relative;overflow-x:auto;border:1px solid #ddd;padding:.4rem 0;background:#fafafa}\
.tl-row{position:relative;height:16px;margin:2px 0}\
.tl-span{position:absolute;height:14px;background:#66aa55;border-radius:2px;min-width:1px}\
.tl-controls{margin:.4rem 0}.tl-controls button{margin-right:.3rem}\
svg{max-width:100%;height:auto}";

const SCRIPT: &str = "\
(function(){\
var tbl=document.getElementById('attr');\
if(tbl){var dir={};tbl.tHead.addEventListener('click',function(e){\
var th=e.target.closest('th');if(!th)return;\
var col=+th.dataset.col,num=!!th.dataset.num;dir[col]=-(dir[col]||-1);var d=dir[col];\
var body=tbl.tBodies[0];var rows=Array.prototype.slice.call(body.rows);\
rows.sort(function(a,b){var x=a.cells[col].dataset.v,y=b.cells[col].dataset.v;\
if(num){return d*(parseFloat(x)-parseFloat(y));}return d*x.localeCompare(y);});\
rows.forEach(function(r){body.appendChild(r);});});}\
var tr=document.getElementById('trace-data');\
if(tr){var spans=[];try{\
(JSON.parse(tr.textContent).traceEvents||[]).forEach(function(ev){\
if(ev.ph==='X'&&ev.name==='zone_solve'){spans.push(ev);}});\
}catch(e){spans=[];}\
var rows=document.getElementById('tl-rows'),info=document.getElementById('tl-info');\
if(rows&&spans.length){var zoom=1;\
var t0=Infinity,t1=0;spans.forEach(function(s){t0=Math.min(t0,s.ts);t1=Math.max(t1,s.ts+s.dur);});\
var tids=[];spans.forEach(function(s){if(tids.indexOf(s.tid)<0)tids.push(s.tid);});tids.sort();\
var draw=function(){rows.innerHTML='';\
var scale=zoom*780/Math.max(1,t1-t0);\
tids.forEach(function(tid){var row=document.createElement('div');row.className='tl-row';\
row.style.width=((t1-t0)*scale)+'px';\
spans.forEach(function(s){if(s.tid!==tid)return;\
var d=document.createElement('div');d.className='tl-span';\
d.style.left=((s.ts-t0)*scale)+'px';d.style.width=Math.max(1,s.dur*scale)+'px';\
d.title='zone '+(s.args&&s.args.zone)+': '+s.dur+' \\u00b5s';row.appendChild(d);});\
rows.appendChild(row);});\
info.textContent=spans.length+' zone solves over '+((t1-t0)/1000).toFixed(1)+' ms, zoom '+zoom.toFixed(1)+'\\u00d7';};\
document.getElementById('tl-zin').addEventListener('click',function(){zoom*=1.5;draw();});\
document.getElementById('tl-zout').addEventListener('click',function(){zoom/=1.5;draw();});\
draw();}else if(rows){rows.innerHTML='<p class=\"empty\">no zone-solve spans in trace</p>';}}\
})();";

/// Renders the full report page. The output references nothing outside
/// itself — no external stylesheets, scripts, fonts, or images.
#[must_use]
pub fn render_html(inputs: &ReportInputs<'_>) -> String {
    let report = inputs.report;
    let mut out = String::with_capacity(64 << 10);
    let _ = write!(
        out,
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">\
         <title>{title}</title><style>{STYLE}</style></head><body>\
         <h1>{title}</h1>\
         <p class=\"caption\">wavemin run report &#183; schema v{schema}</p>",
        title = esc(inputs.title),
        schema = report.schema_version,
    );
    out.push_str(&summary_cards(report));

    if !report.histograms.is_empty() {
        out.push_str("<section><h2>Distributions</h2>");
        for (name, hist) in report.histograms.named() {
            if hist.count > 0 {
                out.push_str(&histogram_section(name, hist));
            }
        }
        out.push_str("</section>");
    }

    out.push_str(&attribution_section(report));

    if let Some(svg) = inputs.waveform_svg {
        let _ = write!(out, "<section><h2>Rail currents</h2>{svg}</section>");
    }
    if let Some(svg) = inputs.tree_svg {
        let _ = write!(
            out,
            "<section><h2>Clock tree</h2><details><summary>show tree</summary>{svg}</details></section>"
        );
    }
    if let Some(trace) = inputs.trace_json {
        let _ = write!(
            out,
            "<section><h2>Zone-solve timeline</h2>\
             <div class=\"tl-controls\"><button id=\"tl-zin\">zoom in</button>\
             <button id=\"tl-zout\">zoom out</button> <span id=\"tl-info\"></span></div>\
             <div id=\"tl-rows\"></div>\
             <script type=\"application/json\" id=\"trace-data\">{}</script></section>",
            embed_json(trace)
        );
    }

    let report_json = serde_json::to_string(report).unwrap_or_else(|_| "{}".to_string());
    let _ = write!(
        out,
        "<section><h2>Raw report</h2>\
         <p class=\"caption\">the full machine-readable run report is embedded below</p>\
         <script type=\"application/json\" id=\"run-report\">{}</script></section>",
        embed_json(&report_json)
    );
    let _ = write!(out, "<script>{SCRIPT}</script></body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{Contribution, MetricsRegistry, PeakAttribution, ReportContext};

    fn sample_report() -> RunReport {
        let r = MetricsRegistry::enabled(false);
        r.ensure_zones(2);
        for labels in [5_u64, 9, 40] {
            r.record_zone_solve(
                (labels % 2) as usize,
                &crate::observe::ZoneSolveRecord {
                    stats: wavemin_mosp::SolveStats {
                        labels_created: labels,
                        labels_pruned: labels / 2,
                        work: labels * 3,
                        front_size: 2,
                        dominance_checks: labels * 4,
                        dominance_skipped: labels,
                    },
                    exhausted: false,
                    arena_arcs: 10,
                    arena_unique_weights: 4,
                    wall_ns: 1_000 * labels,
                },
            );
        }
        let mut report = r.report(&ReportContext::default()).expect("enabled");
        report.attribution = Some(PeakAttribution {
            mode: 0,
            rail: "vdd".to_string(),
            edge: "rise".to_string(),
            time_ps: 103.25,
            peak_ma: 0.1 + 0.2 + 0.30000000000000004,
            contributions: vec![
                Contribution {
                    node: 7,
                    cell: "BUF_X8".to_string(),
                    kind: "sink".to_string(),
                    amps_ma: 0.30000000000000004,
                },
                Contribution {
                    node: 3,
                    cell: "INV_X4 <weird> \"name\"".to_string(),
                    kind: "sink".to_string(),
                    amps_ma: 0.2,
                },
                Contribution {
                    node: 1,
                    cell: "BUF_X16".to_string(),
                    kind: "nonleaf".to_string(),
                    amps_ma: 0.1,
                },
            ],
        });
        report
    }

    #[test]
    fn report_is_self_contained() {
        let report = sample_report();
        let html = render_html(&ReportInputs {
            title: "s15850 run",
            report: &report,
            waveform_svg: Some("<svg xmlns=\"http://www.w3.org/2000/svg\"></svg>"),
            tree_svg: None,
            trace_json: Some(
                r#"{"traceEvents":[{"ph":"X","name":"zone_solve","tid":0,"ts":1,"dur":5,"args":{"zone":0}}]}"#,
            ),
        });
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>"));
        // No external references: every URL-ish string must be the SVG
        // namespace (an identifier, never fetched).
        for needle in ["http://", "https://"] {
            for (i, _) in html.match_indices(needle) {
                let ctx = &html[i.saturating_sub(40)..(i + 40).min(html.len())];
                assert!(
                    ctx.contains("www.w3.org"),
                    "external reference in report: ...{ctx}..."
                );
            }
        }
        assert!(!html.contains("href="), "no external links");
        assert!(!html.contains("src="), "no external resources");
    }

    #[test]
    fn embedded_report_json_round_trips() {
        let report = sample_report();
        let html = render_html(&ReportInputs {
            title: "t",
            report: &report,
            waveform_svg: None,
            tree_svg: None,
            trace_json: None,
        });
        let start = html
            .find("<script type=\"application/json\" id=\"run-report\">")
            .expect("embedded report");
        let rest = &html[start..];
        let open = rest.find('>').expect("tag end") + 1;
        let close = rest.find("</script>").expect("close tag");
        let json = &rest[open..close];
        assert!(
            !json.contains('<'),
            "embedded JSON must not contain a raw '<'"
        );
        let back = RunReport::from_json(json).expect("decode embedded report");
        assert_eq!(back, report, "embedding must be lossless");
    }

    #[test]
    fn attribution_total_matches_the_report_exactly() {
        let report = sample_report();
        let html = render_html(&ReportInputs {
            title: "t",
            report: &report,
            waveform_svg: None,
            tree_svg: None,
            trace_json: None,
        });
        let marker = "id=\"attr-total\" data-v=\"";
        let start = html.find(marker).expect("total cell") + marker.len();
        let end = start + html[start..].find('"').expect("attr end");
        let total: f64 = html[start..end].parse().expect("parse total");
        let peak = report.attribution.as_ref().expect("attribution").peak_ma;
        assert!(
            (total - peak).abs() < 1e-9,
            "rendered total {total} vs report {peak}"
        );
        assert_eq!(
            total.to_bits(),
            peak.to_bits(),
            "shortest round-trip rendering is exact"
        );
        // Cell names with HTML metacharacters are escaped in the table.
        assert!(html.contains("INV_X4 &lt;weird&gt; &quot;name&quot;"));
        assert!(!html.contains("INV_X4 <weird>"));
    }

    #[test]
    fn histograms_render_with_quantile_captions() {
        let report = sample_report();
        let html = render_html(&ReportInputs {
            title: "t",
            report: &report,
            waveform_svg: None,
            tree_svg: None,
            trace_json: None,
        });
        assert!(html.contains("<h3>zone_solve_ns</h3>"), "histogram section");
        assert!(html.contains("p99&#8804;"), "quantile caption");
        assert!(
            !html.contains("<h3>job_wall_ns</h3>"),
            "empty histograms are skipped"
        );
    }
}
