//! The crate-wide error type.

use std::fmt;
use wavemin_clocktree::prelude::TimingError;
use wavemin_clocktree::tree::TreeError;
use wavemin_mosp::MospError;

/// Errors surfaced by WaveMin optimizations.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveMinError {
    /// Timing analysis of the clock tree failed.
    Timing(TimingError),
    /// The MOSP solver failed.
    Mosp(MospError),
    /// No feasible time interval exists: no assignment can satisfy the
    /// skew bound (single mode), or no feasible interval intersection
    /// exists across modes.
    NoFeasibleInterval,
    /// ADB insertion could not resolve the multi-mode skew violations
    /// within the adjustable delay range.
    AdbInsertionFailed(String),
    /// A required cell (e.g. a same-drive ADB/ADI) is missing from the
    /// library.
    MissingCell(String),
    /// A configuration value is out of range.
    InvalidConfig(&'static str),
    /// Upfront validation found the clock tree structurally broken
    /// (orphan nodes, broken links, disconnected subtrees, unknown cells).
    InvalidTree(TreeError),
    /// Upfront validation found a NaN or infinite numeric input; the
    /// message names the offending field and node.
    NonFiniteInput(String),
    /// Upfront validation found a physically negative quantity (cap,
    /// wirelength, voltage...); the message names the field and node.
    NegativeInput(String),
    /// The design has no sinks to assign.
    EmptySinks,
    /// Two sinks are exact duplicates (same location and load), which the
    /// zone partition and skew analysis cannot distinguish.
    DuplicateSinks(String),
    /// A zone worker panicked (or was fault-injected) and its salvage
    /// retry also failed; the run could not contain the fault.
    ZoneFault {
        /// The zone whose solve faulted.
        zone: usize,
        /// The panic payload (or injected-fault description).
        payload: String,
    },
    /// The checkpoint journal could not be written, read, or validated;
    /// the message names the file and the reason.
    Checkpoint(String),
    /// The streaming pipeline's minimal working set (process baseline
    /// plus one hot zone and its archived copy) does not fit the
    /// configured memory budget.
    MemoryBudget {
        /// The configured `--memory-budget-mb` value.
        budget_mb: usize,
        /// The smallest budget (MB) this run could start under.
        required_mb: usize,
    },
    /// An SDF file could not be parsed or does not describe a clock tree.
    Sdf(crate::io::sdf::SdfError),
}

impl fmt::Display for WaveMinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveMinError::Timing(e) => write!(f, "timing analysis failed: {e}"),
            WaveMinError::Mosp(e) => write!(f, "MOSP solve failed: {e}"),
            WaveMinError::NoFeasibleInterval => {
                write!(f, "no feasible time interval satisfies the skew bound")
            }
            WaveMinError::AdbInsertionFailed(why) => {
                write!(f, "ADB insertion failed: {why}")
            }
            WaveMinError::MissingCell(c) => write!(f, "cell '{c}' missing from library"),
            WaveMinError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            WaveMinError::InvalidTree(e) => write!(f, "invalid clock tree: {e}"),
            WaveMinError::NonFiniteInput(what) => {
                write!(f, "non-finite input: {what}")
            }
            WaveMinError::NegativeInput(what) => {
                write!(f, "negative input: {what}")
            }
            WaveMinError::EmptySinks => {
                write!(f, "the design has no sinks: nothing to assign")
            }
            WaveMinError::DuplicateSinks(what) => {
                write!(f, "duplicate sinks: {what}")
            }
            WaveMinError::ZoneFault { zone, payload } => {
                write!(f, "zone {zone} solve faulted and salvage failed: {payload}")
            }
            WaveMinError::Checkpoint(what) => {
                write!(f, "checkpoint journal error: {what}")
            }
            WaveMinError::MemoryBudget {
                budget_mb,
                required_mb,
            } => {
                write!(
                    f,
                    "memory budget {budget_mb} MB is below the minimal working \
                     set (about {required_mb} MB needed)"
                )
            }
            WaveMinError::Sdf(e) => write!(f, "SDF import error: {e}"),
        }
    }
}

impl std::error::Error for WaveMinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WaveMinError::Timing(e) => Some(e),
            WaveMinError::Mosp(e) => Some(e),
            WaveMinError::InvalidTree(e) => Some(e),
            WaveMinError::Sdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for WaveMinError {
    fn from(e: TreeError) -> Self {
        WaveMinError::InvalidTree(e)
    }
}

impl From<TimingError> for WaveMinError {
    fn from(e: TimingError) -> Self {
        WaveMinError::Timing(e)
    }
}

impl From<MospError> for WaveMinError {
    fn from(e: MospError) -> Self {
        WaveMinError::Mosp(e)
    }
}

impl From<crate::io::sdf::SdfError> for WaveMinError {
    fn from(e: crate::io::sdf::SdfError) -> Self {
        WaveMinError::Sdf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(WaveMinError::NoFeasibleInterval
            .to_string()
            .contains("skew"));
        assert!(WaveMinError::MissingCell("ADB_X8".into())
            .to_string()
            .contains("ADB_X8"));
        let e = WaveMinError::from(MospError::Cyclic);
        assert!(e.to_string().contains("MOSP"));
    }

    #[test]
    fn fault_and_checkpoint_displays_name_the_cause() {
        let e = WaveMinError::ZoneFault {
            zone: 7,
            payload: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("zone 7"));
        assert!(e.to_string().contains("index out of bounds"));
        let c = WaveMinError::Checkpoint("fingerprint mismatch".into());
        assert!(c.to_string().contains("fingerprint mismatch"));
    }

    #[test]
    fn memory_budget_display_names_both_sides() {
        use std::error::Error;
        let e = WaveMinError::MemoryBudget {
            budget_mb: 4,
            required_mb: 128,
        };
        let msg = e.to_string();
        assert!(msg.contains("4 MB"), "{msg}");
        assert!(msg.contains("128 MB"), "{msg}");
        assert!(e.source().is_none());
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e = WaveMinError::from(MospError::NoPath);
        assert!(e.source().is_some());
        assert!(WaveMinError::NoFeasibleInterval.source().is_none());
    }
}
