//! The crate-wide error type.

use std::fmt;
use wavemin_clocktree::prelude::TimingError;
use wavemin_mosp::MospError;

/// Errors surfaced by WaveMin optimizations.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveMinError {
    /// Timing analysis of the clock tree failed.
    Timing(TimingError),
    /// The MOSP solver failed.
    Mosp(MospError),
    /// No feasible time interval exists: no assignment can satisfy the
    /// skew bound (single mode), or no feasible interval intersection
    /// exists across modes.
    NoFeasibleInterval,
    /// ADB insertion could not resolve the multi-mode skew violations
    /// within the adjustable delay range.
    AdbInsertionFailed(String),
    /// A required cell (e.g. a same-drive ADB/ADI) is missing from the
    /// library.
    MissingCell(String),
    /// A configuration value is out of range.
    InvalidConfig(&'static str),
}

impl fmt::Display for WaveMinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveMinError::Timing(e) => write!(f, "timing analysis failed: {e}"),
            WaveMinError::Mosp(e) => write!(f, "MOSP solve failed: {e}"),
            WaveMinError::NoFeasibleInterval => {
                write!(f, "no feasible time interval satisfies the skew bound")
            }
            WaveMinError::AdbInsertionFailed(why) => {
                write!(f, "ADB insertion failed: {why}")
            }
            WaveMinError::MissingCell(c) => write!(f, "cell '{c}' missing from library"),
            WaveMinError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for WaveMinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WaveMinError::Timing(e) => Some(e),
            WaveMinError::Mosp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TimingError> for WaveMinError {
    fn from(e: TimingError) -> Self {
        WaveMinError::Timing(e)
    }
}

impl From<MospError> for WaveMinError {
    fn from(e: MospError) -> Self {
        WaveMinError::Mosp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(WaveMinError::NoFeasibleInterval.to_string().contains("skew"));
        assert!(WaveMinError::MissingCell("ADB_X8".into())
            .to_string()
            .contains("ADB_X8"));
        let e = WaveMinError::from(MospError::Cyclic);
        assert!(e.to_string().contains("MOSP"));
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e = WaveMinError::from(MospError::NoPath);
        assert!(e.source().is_some());
        assert!(WaveMinError::NoFeasibleInterval.source().is_none());
    }
}
