//! The design under optimization: tree + libraries + power intent.

use crate::error::WaveMinError;
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Picoseconds;
use wavemin_cells::units::Volts;
use wavemin_cells::{CellLibrary, Characterizer};
use wavemin_clocktree::prelude::*;
use wavemin_clocktree::timing::TimingAdjust;

/// Everything a WaveMin optimization consumes: the synthesized clock tree,
/// the cell library and characterizer, the wire model, the power intent
/// (domains + modes) and the per-mode adjustable-delay settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Design {
    /// The buffered clock tree.
    pub tree: ClockTree,
    /// The cell library (must contain every cell the tree references).
    pub lib: CellLibrary,
    /// The analytic characterizer (SPICE substitute).
    pub chr: Characterizer,
    /// Interconnect parasitics.
    pub wire: WireModel,
    /// Voltage islands and power modes.
    pub power: PowerDesign,
    /// Per-mode timing adjustments (ADB/ADI delay codes), indexed by mode.
    pub mode_adjust: Vec<TimingAdjust>,
}

impl Design {
    /// Wraps an existing tree with default models and the given power
    /// intent.
    #[must_use]
    pub fn new(tree: ClockTree, lib: CellLibrary, power: PowerDesign) -> Self {
        let modes = power.mode_count();
        Self {
            tree,
            lib,
            chr: Characterizer::default(),
            wire: WireModel::default(),
            power,
            mode_adjust: vec![TimingAdjust::identity(); modes],
        }
    }

    /// Synthesizes a single-power-mode design from a benchmark circuit.
    ///
    /// Leaves are buffered with `BUF_X8` so that the paper's candidate set
    /// `{BUF_X8, BUF_X16, INV_X8, INV_X16}` includes the initial cell.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails (the default library covers all cells).
    #[must_use]
    pub fn from_benchmark(bench: &Benchmark, seed: u64) -> Self {
        let lib = CellLibrary::nangate45();
        let chr = Characterizer::default();
        let mut b = bench.clone();
        let tree = Self::synthesize_x8(&mut b, &lib, &chr, seed);
        let mut d = Self::new(tree, lib, PowerDesign::uniform(Volts::new(1.1)));
        d.chr = chr;
        d
    }

    /// Synthesizes a multi-power-mode design: the die is split into
    /// `n_domains` voltage islands driven by `n_modes` power modes at
    /// 0.9 V / 1.1 V (Section VII-E setup).
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails or `n_domains`/`n_modes` is zero.
    #[must_use]
    pub fn from_benchmark_multimode(
        bench: &Benchmark,
        seed: u64,
        n_domains: usize,
        n_modes: usize,
    ) -> Self {
        Self::from_benchmark_multimode_levels(
            bench,
            seed,
            n_domains,
            n_modes,
            Volts::new(0.9),
            Volts::new(1.1),
        )
    }

    /// [`Self::from_benchmark_multimode`] with explicit low/high supply
    /// levels for the voltage islands.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails or `n_domains`/`n_modes` is zero.
    #[must_use]
    pub fn from_benchmark_multimode_levels(
        bench: &Benchmark,
        seed: u64,
        n_domains: usize,
        n_modes: usize,
        low: Volts,
        high: Volts,
    ) -> Self {
        let lib = CellLibrary::nangate45();
        let chr = Characterizer::default();
        let mut b = bench.clone();
        let tree = Self::synthesize_x8(&mut b, &lib, &chr, seed);
        let power = PowerDesign::random_with_levels(
            wavemin_cells::units::Microns::new(bench.die_side_um as f64),
            n_domains,
            n_modes,
            seed,
            low,
            high,
        );
        let mut d = Self::new(tree, lib, power);
        d.chr = chr;
        d
    }

    // Helper of the `from_benchmark*` constructors, whose documented
    // contract is to panic if synthesis fails (it cannot with the bundled
    // library).
    #[allow(clippy::expect_used)]
    fn synthesize_x8(
        bench: &mut Benchmark,
        lib: &CellLibrary,
        chr: &Characterizer,
        seed: u64,
    ) -> ClockTree {
        let options = SynthesisOptions {
            leaf_cell: "BUF_X8".to_owned(),
            arity: bench.arity,
            ..SynthesisOptions::default()
        };
        bench
            .synthesize_with_options(lib, chr, seed, options)
            .expect("default library covers synthesis cells")
    }

    /// Number of power modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.power.mode_count()
    }

    /// Timing analysis in one power mode (applies that mode's ADB codes).
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis failures.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn timing(&self, mode: usize) -> Result<Timing, WaveMinError> {
        let supply = self.power.supply_for(&self.tree, mode);
        Ok(Timing::analyze(
            &self.tree,
            &self.lib,
            &self.chr,
            self.wire,
            &supply,
            Some(&self.mode_adjust[mode]),
        )?)
    }

    /// Clock skew in one power mode.
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis failures.
    pub fn skew(&self, mode: usize) -> Result<Picoseconds, WaveMinError> {
        Ok(self.timing(mode)?.skew(&self.tree))
    }

    /// The worst clock skew over all power modes.
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis failures.
    pub fn max_skew(&self) -> Result<Picoseconds, WaveMinError> {
        let mut worst = Picoseconds::ZERO;
        for m in 0..self.mode_count() {
            worst = worst.max(self.skew(m)?);
        }
        Ok(worst)
    }

    /// The sink set `L` (arena order).
    #[must_use]
    pub fn leaves(&self) -> Vec<NodeId> {
        self.tree.leaves()
    }

    /// Upfront input validation, run before any optimization: structural
    /// tree invariants (connectivity, parent/child links, known cells), a
    /// non-empty duplicate-free sink set, finite/nonnegative numeric
    /// fields everywhere (locations, wirelengths, caps, trims, supplies,
    /// wire parasitics, cell parameters), and finite characterized
    /// current waveforms per referenced cell × supply.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`WaveMinError`] naming the
    /// offending node/cell/field.
    pub fn validate(&self) -> Result<(), WaveMinError> {
        self.tree.validate(|c| self.lib.get(c).is_some())?;
        if self.tree.leaves().is_empty() {
            return Err(WaveMinError::EmptySinks);
        }

        let finite = |v: f64, what: &dyn Fn() -> String| -> Result<(), WaveMinError> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(WaveMinError::NonFiniteInput(what()))
            }
        };
        let nonneg = |v: f64, what: &dyn Fn() -> String| -> Result<(), WaveMinError> {
            finite(v, what)?;
            if v >= 0.0 {
                Ok(())
            } else {
                Err(WaveMinError::NegativeInput(what()))
            }
        };

        // Per-node numerics + duplicate-sink detection.
        let mut seen_sinks = std::collections::HashSet::new();
        for (id, node) in self.tree.iter() {
            finite(node.location.x.value(), &|| {
                format!("x location of node {id}")
            })?;
            finite(node.location.y.value(), &|| {
                format!("y location of node {id}")
            })?;
            nonneg(node.wire_to_parent.value(), &|| {
                format!("wire length into node {id}")
            })?;
            nonneg(node.sink_cap.value(), &|| format!("sink cap of node {id}"))?;
            finite(node.delay_trim.value(), &|| {
                format!("delay trim of node {id}")
            })?;
            if node.is_leaf() {
                let key = (
                    node.location.x.value().to_bits(),
                    node.location.y.value().to_bits(),
                );
                if !seen_sinks.insert(key) {
                    return Err(WaveMinError::DuplicateSinks(format!(
                        "sink {id} duplicates another sink at {:?}",
                        node.location
                    )));
                }
            }
        }

        // Interconnect model.
        nonneg(self.wire.r_per_um.value(), &|| {
            "wire resistance per um".into()
        })?;
        nonneg(self.wire.c_per_um.value(), &|| {
            "wire capacitance per um".into()
        })?;

        // Power intent: every supply must be finite and positive.
        if self.mode_adjust.len() != self.mode_count() {
            return Err(WaveMinError::InvalidConfig(
                "mode_adjust must hold one entry per power mode",
            ));
        }
        let mut supplies: Vec<Volts> = Vec::new();
        for mode in 0..self.mode_count() {
            match self.power.supply_for(&self.tree, mode) {
                SupplyAssignment::Uniform(v) => supplies.push(v),
                SupplyAssignment::PerNode(vs) => supplies.extend(vs),
            }
        }
        supplies.sort_by(|a, b| a.value().total_cmp(&b.value()));
        supplies.dedup();
        for v in &supplies {
            finite(v.value(), &|| format!("supply voltage {v:?}"))?;
            if v.value() <= 0.0 {
                return Err(WaveMinError::NegativeInput(format!(
                    "supply voltage {v:?} must be positive"
                )));
            }
        }

        // Referenced cells: finite positive electrical parameters, and
        // finite characterized waveform samples at each used supply.
        let mut cells: Vec<&str> = self.tree.iter().map(|(_, n)| n.cell.as_str()).collect();
        cells.sort_unstable();
        cells.dedup();
        for name in cells {
            let cell = self
                .lib
                .get(name)
                .ok_or_else(|| WaveMinError::MissingCell(name.to_owned()))?;
            nonneg(cell.r_out().value(), &|| format!("r_out of cell '{name}'"))?;
            nonneg(cell.c_in().value(), &|| format!("c_in of cell '{name}'"))?;
            nonneg(cell.c_par().value(), &|| format!("c_par of cell '{name}'"))?;
            nonneg(cell.t_intrinsic().value(), &|| {
                format!("t_intrinsic of cell '{name}'")
            })?;
            for vdd in &supplies {
                let profile = self.chr.characterize(
                    cell,
                    wavemin_cells::units::Femtofarads::new(10.0),
                    Picoseconds::new(20.0),
                    *vdd,
                );
                finite(profile.t_d_rise.value(), &|| {
                    format!("rise delay of cell '{name}' at {vdd:?}")
                })?;
                finite(profile.t_d_fall.value(), &|| {
                    format!("fall delay of cell '{name}' at {vdd:?}")
                })?;
                for wave in [
                    &profile.idd_rise,
                    &profile.iss_rise,
                    &profile.idd_fall,
                    &profile.iss_fall,
                ] {
                    for (t, i) in wave.breakpoints() {
                        finite(t.value() + i.value(), &|| {
                            format!("waveform sample of cell '{name}' at {vdd:?}")
                        })?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavemin_cells::units::{Femtofarads, Microns, Ohms};

    #[test]
    fn from_benchmark_counts_match() {
        let bench = Benchmark::s15850();
        let d = Design::from_benchmark(&bench, 1);
        assert_eq!(d.tree.len(), bench.total_nodes);
        assert_eq!(d.leaves().len(), bench.leaf_count);
        assert_eq!(d.mode_count(), 1);
    }

    #[test]
    fn single_mode_design_is_balanced() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let skew = d.skew(0).unwrap();
        assert!(skew.value() < 10.0, "skew {skew}");
    }

    #[test]
    fn leaves_start_as_buf_x8() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        for id in d.leaves() {
            assert_eq!(d.tree.node(id).cell, "BUF_X8");
        }
    }

    #[test]
    fn multimode_design_has_modes_and_violations() {
        let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 4);
        assert_eq!(d.mode_count(), 4);
        // Mode 0 is all-high: tight skew. Other modes are mixed-voltage
        // and generally skewed.
        assert!(d.skew(0).unwrap().value() < 10.0);
        assert!(d.max_skew().unwrap() >= d.skew(0).unwrap());
    }

    #[test]
    fn benchmark_design_validates_clean() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        d.validate().unwrap();
        let m = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 2);
        m.validate().unwrap();
    }

    fn assert_rejects(d: &Design, needle: &str) {
        let err = d.validate().expect_err(needle).to_string();
        assert!(
            err.contains(needle),
            "error {err:?} should mention {needle:?}"
        );
    }

    #[test]
    fn validate_rejects_empty_sink_set() {
        let lib = CellLibrary::nangate45();
        let tree = ClockTree::new(Point::new(0.0, 0.0), "BUF_X8");
        let d = Design::new(tree, lib, PowerDesign::uniform(Volts::new(1.1)));
        assert!(matches!(d.validate(), Err(WaveMinError::EmptySinks)));
    }

    #[test]
    fn validate_rejects_unknown_cell() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaf = d.leaves()[0];
        d.tree.set_cell(leaf, "NOT_A_CELL");
        assert_rejects(&d, "invalid clock tree");
    }

    #[test]
    fn validate_rejects_nan_location() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaf = d.leaves()[0];
        d.tree.node_mut(leaf).location.x = Microns::new(f64::NAN);
        assert_rejects(&d, "x location");
    }

    #[test]
    fn validate_rejects_negative_wirelength() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaf = d.leaves()[0];
        d.tree.node_mut(leaf).wire_to_parent = Microns::new(-1.0);
        assert_rejects(&d, "wire length");
    }

    #[test]
    fn validate_rejects_negative_sink_cap() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaf = d.leaves()[0];
        d.tree.node_mut(leaf).sink_cap = Femtofarads::new(-3.0);
        assert_rejects(&d, "sink cap");
    }

    #[test]
    fn validate_rejects_nonfinite_delay_trim() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaf = d.leaves()[0];
        d.tree.node_mut(leaf).delay_trim = Picoseconds::new(f64::INFINITY);
        assert_rejects(&d, "delay trim");
    }

    #[test]
    fn validate_rejects_duplicate_sinks() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let leaves = d.leaves();
        let spot = d.tree.node(leaves[0]).location;
        d.tree.node_mut(leaves[1]).location = spot;
        assert_rejects(&d, "duplicate sinks");
    }

    #[test]
    fn validate_rejects_bad_wire_model() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        d.wire.r_per_um = Ohms::new(f64::NAN);
        assert_rejects(&d, "wire resistance");
    }

    #[test]
    fn validate_rejects_nonpositive_supply() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        d.power = PowerDesign::uniform(Volts::new(0.0));
        assert_rejects(&d, "supply voltage");
    }

    #[test]
    fn validate_rejects_mode_adjust_mismatch() {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), 1);
        d.mode_adjust.push(TimingAdjust::identity());
        assert_rejects(&d, "mode_adjust");
    }

    #[test]
    fn mode_adjust_is_per_mode() {
        let mut d = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 2);
        let leaf = d.leaves()[0];
        d.mode_adjust[1].set_extra_delay(leaf, Picoseconds::new(15.0));
        let t0 = d.timing(0).unwrap();
        let t1 = d.timing(1).unwrap();
        // Mode 1's arrival at that leaf includes the extra delay.
        let base_gap = t1.output_arrival[leaf.0] - t0.output_arrival[leaf.0];
        assert!(base_gap.value() >= 15.0 - 1e-9);
    }
}
