//! The design under optimization: tree + libraries + power intent.

use crate::error::WaveMinError;
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Picoseconds;
use wavemin_cells::units::Volts;
use wavemin_cells::{CellLibrary, Characterizer};
use wavemin_clocktree::prelude::*;
use wavemin_clocktree::timing::TimingAdjust;

/// Everything a WaveMin optimization consumes: the synthesized clock tree,
/// the cell library and characterizer, the wire model, the power intent
/// (domains + modes) and the per-mode adjustable-delay settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Design {
    /// The buffered clock tree.
    pub tree: ClockTree,
    /// The cell library (must contain every cell the tree references).
    pub lib: CellLibrary,
    /// The analytic characterizer (SPICE substitute).
    pub chr: Characterizer,
    /// Interconnect parasitics.
    pub wire: WireModel,
    /// Voltage islands and power modes.
    pub power: PowerDesign,
    /// Per-mode timing adjustments (ADB/ADI delay codes), indexed by mode.
    pub mode_adjust: Vec<TimingAdjust>,
}

impl Design {
    /// Wraps an existing tree with default models and the given power
    /// intent.
    #[must_use]
    pub fn new(tree: ClockTree, lib: CellLibrary, power: PowerDesign) -> Self {
        let modes = power.mode_count();
        Self {
            tree,
            lib,
            chr: Characterizer::default(),
            wire: WireModel::default(),
            power,
            mode_adjust: vec![TimingAdjust::identity(); modes],
        }
    }

    /// Synthesizes a single-power-mode design from a benchmark circuit.
    ///
    /// Leaves are buffered with `BUF_X8` so that the paper's candidate set
    /// `{BUF_X8, BUF_X16, INV_X8, INV_X16}` includes the initial cell.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails (the default library covers all cells).
    #[must_use]
    pub fn from_benchmark(bench: &Benchmark, seed: u64) -> Self {
        let lib = CellLibrary::nangate45();
        let chr = Characterizer::default();
        let mut b = bench.clone();
        let tree = Self::synthesize_x8(&mut b, &lib, &chr, seed);
        let mut d = Self::new(tree, lib, PowerDesign::uniform(Volts::new(1.1)));
        d.chr = chr;
        d
    }

    /// Synthesizes a multi-power-mode design: the die is split into
    /// `n_domains` voltage islands driven by `n_modes` power modes at
    /// 0.9 V / 1.1 V (Section VII-E setup).
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails or `n_domains`/`n_modes` is zero.
    #[must_use]
    pub fn from_benchmark_multimode(
        bench: &Benchmark,
        seed: u64,
        n_domains: usize,
        n_modes: usize,
    ) -> Self {
        Self::from_benchmark_multimode_levels(
            bench,
            seed,
            n_domains,
            n_modes,
            Volts::new(0.9),
            Volts::new(1.1),
        )
    }

    /// [`Self::from_benchmark_multimode`] with explicit low/high supply
    /// levels for the voltage islands.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails or `n_domains`/`n_modes` is zero.
    #[must_use]
    pub fn from_benchmark_multimode_levels(
        bench: &Benchmark,
        seed: u64,
        n_domains: usize,
        n_modes: usize,
        low: Volts,
        high: Volts,
    ) -> Self {
        let lib = CellLibrary::nangate45();
        let chr = Characterizer::default();
        let mut b = bench.clone();
        let tree = Self::synthesize_x8(&mut b, &lib, &chr, seed);
        let power = PowerDesign::random_with_levels(
            wavemin_cells::units::Microns::new(bench.die_side_um as f64),
            n_domains,
            n_modes,
            seed,
            low,
            high,
        );
        let mut d = Self::new(tree, lib, power);
        d.chr = chr;
        d
    }

    fn synthesize_x8(
        bench: &mut Benchmark,
        lib: &CellLibrary,
        chr: &Characterizer,
        seed: u64,
    ) -> ClockTree {
        let options = SynthesisOptions {
            leaf_cell: "BUF_X8".to_owned(),
            arity: bench.arity,
            ..SynthesisOptions::default()
        };
        bench
            .synthesize_with_options(lib, chr, seed, options)
            .expect("default library covers synthesis cells")
    }

    /// Number of power modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.power.mode_count()
    }

    /// Timing analysis in one power mode (applies that mode's ADB codes).
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis failures.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn timing(&self, mode: usize) -> Result<Timing, WaveMinError> {
        let supply = self.power.supply_for(&self.tree, mode);
        Ok(Timing::analyze(
            &self.tree,
            &self.lib,
            &self.chr,
            self.wire,
            &supply,
            Some(&self.mode_adjust[mode]),
        )?)
    }

    /// Clock skew in one power mode.
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis failures.
    pub fn skew(&self, mode: usize) -> Result<Picoseconds, WaveMinError> {
        Ok(self.timing(mode)?.skew(&self.tree))
    }

    /// The worst clock skew over all power modes.
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis failures.
    pub fn max_skew(&self) -> Result<Picoseconds, WaveMinError> {
        let mut worst = Picoseconds::ZERO;
        for m in 0..self.mode_count() {
            worst = worst.max(self.skew(m)?);
        }
        Ok(worst)
    }

    /// The sink set `L` (arena order).
    #[must_use]
    pub fn leaves(&self) -> Vec<NodeId> {
        self.tree.leaves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_benchmark_counts_match() {
        let bench = Benchmark::s15850();
        let d = Design::from_benchmark(&bench, 1);
        assert_eq!(d.tree.len(), bench.total_nodes);
        assert_eq!(d.leaves().len(), bench.leaf_count);
        assert_eq!(d.mode_count(), 1);
    }

    #[test]
    fn single_mode_design_is_balanced() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        let skew = d.skew(0).unwrap();
        assert!(skew.value() < 10.0, "skew {skew}");
    }

    #[test]
    fn leaves_start_as_buf_x8() {
        let d = Design::from_benchmark(&Benchmark::s15850(), 1);
        for id in d.leaves() {
            assert_eq!(d.tree.node(id).cell, "BUF_X8");
        }
    }

    #[test]
    fn multimode_design_has_modes_and_violations() {
        let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 4);
        assert_eq!(d.mode_count(), 4);
        // Mode 0 is all-high: tight skew. Other modes are mixed-voltage
        // and generally skewed.
        assert!(d.skew(0).unwrap().value() < 10.0);
        assert!(d.max_skew().unwrap() >= d.skew(0).unwrap());
    }

    #[test]
    fn mode_adjust_is_per_mode() {
        let mut d = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 2);
        let leaf = d.leaves()[0];
        d.mode_adjust[1].set_extra_delay(leaf, Picoseconds::new(15.0));
        let t0 = d.timing(0).unwrap();
        let t1 = d.timing(1).unwrap();
        // Mode 1's arrival at that leaf includes the extra delay.
        let base_gap = t1.output_arrival[leaf.0] - t0.output_arrival[leaf.0];
        assert!(base_gap.value() >= 15.0 - 1e-9);
    }
}
