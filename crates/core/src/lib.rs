//! # WaveMin — fine-grained clock buffer polarity assignment with sizing
//!
//! A from-scratch reproduction of *"WaveMin: a fine-grained clock buffer
//! polarity assignment combined with buffer sizing"* (Joo & Kim, DAC 2011;
//! journal version TCAD 2014).
//!
//! Clock buffers draw a current spike from VDD at the rising clock edge and
//! dump one into ground at the falling edge; inverters do the opposite.
//! Replacing some *leaf* clock buffers with inverters (and resizing them)
//! spreads the clock tree's switching current across both rails and across
//! time, lowering the peak current and the resulting power/ground noise.
//! WaveMin scores candidate assignments against **sampled current
//! waveforms** (not just four peak numbers), accounts for arrival-time
//! differences between sinks and for the fixed non-leaf buffers' background
//! noise, and supports designs with multiple power modes.
//!
//! ## Algorithms
//!
//! | paper name | here | description |
//! |---|---|---|
//! | ClkWaveMin | [`algo::ClkWaveMin`] | MOSP formulation per zone/interval, Warburton ε-approximation |
//! | ClkWaveMin-f | [`algo::ClkWaveMinFast`] | greedy least-noise-worsening-first |
//! | ClkPeakMin [27] | [`algo::ClkPeakMin`] | baseline: balance the two rails' summed peaks |
//! | Nieh et al. [22] | [`algo::NiehOppositePhase`] | baseline: invert half the tree |
//! | Samanta et al. [23] | [`algo::SamantaBalanced`] | baseline: spatially balanced halves, delay-unaware |
//! | ClkWaveMin-M | [`multimode::ClkWaveMinM`] | interval intersection + ADB/ADI flow for multiple power modes |
//!
//! ## Quickstart
//!
//! ```
//! use wavemin::prelude::*;
//!
//! let design = Design::from_benchmark(&Benchmark::s15850(), 42);
//! let config = WaveMinConfig::default();
//! let outcome = ClkWaveMin::new(config.clone()).run(&design).expect("optimization");
//! // The optimized assignment respects the skew bound (up to the small
//! // sibling-load allowance of Observation 4)...
//! assert!(outcome.skew_after.value() <= config.skew_bound.value() * 1.05 + 1e-6);
//! // ...and never increases the estimated peak current.
//! assert!(outcome.peak_after.value() <= outcome.peak_before.value() + 1e-9);
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod assignment;
pub mod checkpoint;
pub mod config;
pub mod design;
pub mod error;
pub mod eval;
pub mod fault;
pub mod intervals;
pub mod io;
pub mod montecarlo;
pub mod multimode;
pub mod noise_table;
pub mod observe;
pub(crate) mod parallel;
pub mod report;
pub mod reportgen;
pub mod sampling;
#[cfg(unix)]
pub mod serve;
pub mod session;
pub mod shardrun;
pub mod trace;

/// Convenient re-exports of the main types.
pub mod prelude {
    pub use crate::algo::Outcome;
    pub use crate::algo::{
        ClkPeakMin, ClkWaveMin, ClkWaveMinFast, Degradation, DegradationStep, DynamicOutcome,
        DynamicPolarity, ExhaustiveSearch, NiehOppositePhase, NonLeafPolarity, SamantaBalanced,
        YieldAwareWaveMin, YieldOutcome,
    };
    pub use crate::assignment::Assignment;
    pub use crate::checkpoint::{CacheStats, ZoneCache};
    pub use crate::config::{SolverKind, WaveMinConfig};
    pub use crate::design::Design;
    pub use crate::error::WaveMinError;
    pub use crate::eval::{NoiseEvaluator, NoiseReport};
    pub use crate::fault::FaultPlan;
    pub use crate::intervals::{FeasibleInterval, IntervalSet};
    pub use crate::io::{export_sdf, import_sdf, ImportedDesign};
    pub use crate::montecarlo::{MonteCarlo, MonteCarloStats};
    pub use crate::multimode::{AdbPlan, ClkWaveMinM};
    pub use crate::noise_table::{EventWaveforms, NoiseTable};
    pub use crate::observe::{
        Contribution, MetricsRegistry, PeakAttribution, Progress, ProgressTracker, RunHistogram,
        RunHistograms, RunReport, Stage,
    };
    pub use crate::sampling::SamplePlan;
    pub use crate::session::{CharacterizedDesign, SolveOptions};
    pub use crate::shardrun::{optimize_sharded, ShardedOutcome};
    pub use crate::trace::{TraceHandle, TraceJournal};
    pub use wavemin_cells::{CellKind, CellLibrary, Characterizer, Polarity};
    pub use wavemin_clocktree::prelude::*;
    pub use wavemin_mosp::{Budget, Exhaustion};
}

pub use prelude::*;
