//! The fine-grained noise evaluator: accumulated current waveforms, peak
//! current and power-grid noise.
//!
//! This is the reproduction's stand-in for the paper's verification HSPICE
//! runs: it characterizes **every** node (leaves and non-leaves) under its
//! actual load, slew and supply, shifts the signatures by the real arrival
//! times, accumulates them per rail and clock-edge event, and reports the
//! worst instantaneous total current plus the IR-drop noise the currents
//! induce on the power grid.

use crate::design::Design;
use crate::error::WaveMinError;
use crate::noise_table::EventWaveforms;
use serde::{Deserialize, Serialize};
use wavemin_cells::characterize::{ClockEdge, Rail};
use wavemin_cells::units::{MicroAmps, Microns, MilliAmps, Millivolts, Picoseconds};
use wavemin_clocktree::variation::Variation;
use wavemin_pgrid::{GridOptions, PowerGrid};

/// The evaluator's output for one power mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseReport {
    /// Worst instantaneous total current over all rails and events.
    pub peak: MilliAmps,
    /// When and where the peak occurs.
    pub peak_rail: Rail,
    /// The source event during which the peak occurs.
    pub peak_event: ClockEdge,
    /// The time of the peak.
    pub peak_time: Picoseconds,
    /// Worst VDD-rail IR drop on the power grid.
    pub vdd_noise: Millivolts,
    /// Worst ground-rail bounce on the power grid.
    pub gnd_noise: Millivolts,
    /// The clock skew of the evaluated mode.
    pub skew: Picoseconds,
}

/// Evaluates a design's accumulated noise (see the module docs).
#[derive(Debug, Clone)]
pub struct NoiseEvaluator<'a> {
    design: &'a Design,
    grid_options: GridOptions,
}

impl<'a> NoiseEvaluator<'a> {
    /// Creates an evaluator with the default power-grid model.
    #[must_use]
    pub fn new(design: &'a Design) -> Self {
        Self {
            design,
            grid_options: GridOptions::default(),
        }
    }

    /// Overrides the power-grid model.
    #[must_use]
    pub fn with_grid_options(mut self, options: GridOptions) -> Self {
        self.grid_options = options;
        self
    }

    /// Evaluates one power mode on the design's current state.
    ///
    /// # Errors
    ///
    /// Propagates timing/characterization failures.
    pub fn evaluate(&self, mode: usize) -> Result<NoiseReport, WaveMinError> {
        self.evaluate_inner(mode, None)
    }

    /// Evaluates one power mode under a sampled process variation.
    ///
    /// # Errors
    ///
    /// Propagates timing/characterization failures.
    pub fn evaluate_with_variation(
        &self,
        mode: usize,
        variation: &Variation,
    ) -> Result<NoiseReport, WaveMinError> {
        self.evaluate_inner(mode, Some(variation))
    }

    /// Per-node event waveforms plus the total, for one mode (used by the
    /// waveform-dump example and the figure binaries).
    ///
    /// # Errors
    ///
    /// Propagates timing/characterization failures.
    pub fn waveforms(
        &self,
        mode: usize,
    ) -> Result<(Vec<EventWaveforms>, EventWaveforms), WaveMinError> {
        let per_node = self.node_waveforms(mode, None)?;
        let total = EventWaveforms::sum(per_node.iter());
        Ok((per_node, total))
    }

    /// Decomposes one mode's peak into per-node contributions: finds the
    /// argmax sample of the total waveform over the four (rail, event)
    /// slots, then samples every node's shifted waveform at that instant.
    ///
    /// The returned record's `peak_ma` is *defined as* the sum of the
    /// contributions in stored order, so the decomposition is exact by
    /// construction (the per-node sample sum and the pooled total agree
    /// to float accumulation order, ~1e-6 relative — see the
    /// `waveforms_sum_to_total` test — and the attribution reports the
    /// decomposed figure). Contributions are sorted largest-first with
    /// node id as the deterministic tie-break.
    ///
    /// # Errors
    ///
    /// Propagates timing/characterization failures.
    pub fn attribution(
        &self,
        mode: usize,
    ) -> Result<crate::observe::PeakAttribution, WaveMinError> {
        use wavemin_clocktree::NodeKind;

        let (per_node, total) = self.waveforms(mode)?;

        let mut peak = MicroAmps::ZERO;
        let mut peak_rail = Rail::Vdd;
        let mut peak_event = ClockEdge::Rise;
        let mut peak_time = Picoseconds::ZERO;
        for (rail, event) in EventWaveforms::SLOTS {
            let w = total.get(rail, event);
            let p = w.peak();
            if p > peak {
                peak = p;
                peak_rail = rail;
                peak_event = event;
                peak_time = w.peak_time().unwrap_or(Picoseconds::ZERO);
            }
        }

        let mut contributions: Vec<crate::observe::Contribution> = self
            .design
            .tree
            .iter()
            .map(|(id, node)| {
                let amps = per_node[id.0].get(peak_rail, peak_event).sample(peak_time);
                crate::observe::Contribution {
                    node: id.0,
                    cell: node.cell.clone(),
                    kind: if node.kind == NodeKind::Leaf {
                        "sink"
                    } else {
                        "nonleaf"
                    }
                    .to_owned(),
                    amps_ma: amps.to_milliamps().value(),
                }
            })
            .collect();
        contributions.sort_by(|a, b| {
            b.amps_ma
                .partial_cmp(&a.amps_ma)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
        let peak_ma = contributions.iter().map(|c| c.amps_ma).sum();

        Ok(crate::observe::PeakAttribution {
            mode,
            rail: match peak_rail {
                Rail::Vdd => "vdd",
                Rail::Gnd => "gnd",
            }
            .to_owned(),
            edge: match peak_event {
                ClockEdge::Rise => "rise",
                ClockEdge::Fall => "fall",
            }
            .to_owned(),
            time_ps: peak_time.value(),
            peak_ma,
            contributions,
        })
    }

    fn evaluate_inner(
        &self,
        mode: usize,
        variation: Option<&Variation>,
    ) -> Result<NoiseReport, WaveMinError> {
        let design = self.design;
        let tree = &design.tree;

        // Timing under variation (if any) for the skew figure.
        let supply = design.power.supply_for(tree, mode);
        let adjust = match variation {
            Some(v) => {
                let mut combined = v.timing.clone();
                // ADB codes add on top of variation.
                let base = &design.mode_adjust[mode];
                for (i, &d) in base.extra_delay.iter().enumerate() {
                    if d > Picoseconds::ZERO {
                        let mut cur = combined
                            .extra_delay
                            .get(i)
                            .copied()
                            .unwrap_or(Picoseconds::ZERO);
                        cur += d;
                        combined.set_extra_delay(wavemin_clocktree::NodeId(i), cur);
                    }
                }
                combined
            }
            None => design.mode_adjust[mode].clone(),
        };
        let timing = wavemin_clocktree::Timing::analyze(
            tree,
            &design.lib,
            &design.chr,
            design.wire,
            &supply,
            Some(&adjust),
        )?;
        let skew = timing.skew(tree);

        let per_node = self.node_waveforms(mode, variation)?;
        let total = EventWaveforms::sum(per_node.iter());

        // Worst instantaneous current over the four slots.
        let mut peak = MicroAmps::ZERO;
        let mut peak_rail = Rail::Vdd;
        let mut peak_event = ClockEdge::Rise;
        let mut peak_time = Picoseconds::ZERO;
        for (rail, event) in EventWaveforms::SLOTS {
            let w = total.get(rail, event);
            let p = w.peak();
            if p > peak {
                peak = p;
                peak_rail = rail;
                peak_event = event;
                peak_time = w.peak_time().unwrap_or(Picoseconds::ZERO);
            }
        }

        // Power-grid noise: inject each node's instantaneous current at
        // the worst instant of each rail (per event, take the worse).
        let die = die_side(design);
        let grid = PowerGrid::over_die(die, self.grid_options);
        let mut vdd_noise = Millivolts::ZERO;
        let mut gnd_noise = Millivolts::ZERO;
        for (rail, event) in EventWaveforms::SLOTS {
            let w = total.get(rail, event);
            let Some(t_star) = w.peak_time() else {
                continue;
            };
            let injections: Vec<((f64, f64), MicroAmps)> = tree
                .iter()
                .map(|(id, node)| {
                    let i = per_node[id.0].get(rail, event).sample(t_star);
                    ((node.location.x.value(), node.location.y.value()), i)
                })
                .collect();
            let drop = grid.ir_drop(&injections);
            match rail {
                Rail::Vdd => vdd_noise = vdd_noise.max(drop),
                Rail::Gnd => gnd_noise = gnd_noise.max(drop),
            }
        }

        Ok(NoiseReport {
            peak: peak.to_milliamps(),
            peak_rail,
            peak_event,
            peak_time,
            vdd_noise,
            gnd_noise,
            skew,
        })
    }

    /// Characterizes every node under its actual operating point and
    /// shifts the signature to absolute time.
    fn node_waveforms(
        &self,
        mode: usize,
        variation: Option<&Variation>,
    ) -> Result<Vec<EventWaveforms>, WaveMinError> {
        let design = self.design;
        let tree = &design.tree;
        let supply = design.power.supply_for(tree, mode);
        let timing = wavemin_clocktree::Timing::analyze(
            tree,
            &design.lib,
            &design.chr,
            design.wire,
            &supply,
            Some(&design.mode_adjust[mode]),
        )?;
        let mut out = Vec::with_capacity(tree.len());
        for (id, node) in tree.iter() {
            let cell = design
                .lib
                .get(&node.cell)
                .ok_or_else(|| WaveMinError::MissingCell(node.cell.clone()))?;
            let profile = design.chr.characterize(
                cell,
                timing.load[id.0],
                timing.input_slew[id.0],
                supply.at(id),
            );
            let extra = design.mode_adjust[mode]
                .extra_delay
                .get(id.0)
                .copied()
                .unwrap_or(Picoseconds::ZERO);
            let mut waves = EventWaveforms::from_profile(&profile, timing.input_edge[id.0])
                .shifted(timing.input_arrival[id.0] + extra);
            if let Some(v) = variation {
                waves = waves.scaled(v.current_mult.get(id.0).copied().unwrap_or(1.0));
            }
            out.push(waves);
        }
        Ok(out)
    }
}

/// The die side covering all node placements (for the power grid).
fn die_side(design: &Design) -> Microns {
    let mut side = 50.0_f64;
    for (_, node) in design.tree.iter() {
        side = side
            .max(node.location.x.value())
            .max(node.location.y.value());
    }
    Microns::new(side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wavemin_clocktree::variation::VariationModel;
    use wavemin_clocktree::Benchmark;

    fn design() -> Design {
        Design::from_benchmark(&Benchmark::s15850(), 1)
    }

    #[test]
    fn report_has_positive_noise_figures() {
        let d = design();
        let r = NoiseEvaluator::new(&d).evaluate(0).unwrap();
        assert!(r.peak.value() > 0.0);
        assert!(r.vdd_noise.value() > 0.0);
        assert!(r.gnd_noise.value() > 0.0);
        assert!(r.skew.value() < 10.0);
    }

    #[test]
    fn peak_magnitude_is_chip_scale() {
        // 22 buffering elements, each a few hundred µA: peak should be
        // on the order of single-digit mA (Table V lists 3 mA for s15850).
        let d = design();
        let r = NoiseEvaluator::new(&d).evaluate(0).unwrap();
        assert!(
            (0.2..60.0).contains(&r.peak.value()),
            "peak {} mA out of plausible range",
            r.peak
        );
    }

    #[test]
    fn all_buffer_tree_peaks_at_vdd_rise() {
        // Every cell is a buffer: the whole tree charges from VDD at the
        // rising edge, so that slot must hold the peak.
        let d = design();
        let r = NoiseEvaluator::new(&d).evaluate(0).unwrap();
        assert_eq!(r.peak_rail, Rail::Vdd);
        assert_eq!(r.peak_event, ClockEdge::Rise);
    }

    #[test]
    fn inverting_half_the_leaves_reduces_peak() {
        // The core premise of polarity assignment (Fig. 1).
        let mut d = design();
        let leaves = d.leaves();
        for (i, &leaf) in leaves.iter().enumerate() {
            if i % 2 == 0 {
                d.tree.set_cell(leaf, "INV_X8");
            }
        }
        let balanced = NoiseEvaluator::new(&d).evaluate(0).unwrap();
        let all_buf = NoiseEvaluator::new(&design()).evaluate(0).unwrap();
        assert!(
            balanced.peak.value() < all_buf.peak.value(),
            "balanced {} vs all-buffer {}",
            balanced.peak,
            all_buf.peak
        );
    }

    #[test]
    fn waveforms_sum_to_total() {
        let d = design();
        let (per_node, total) = NoiseEvaluator::new(&d).waveforms(0).unwrap();
        assert_eq!(per_node.len(), d.tree.len());
        let t = total.vdd_rise.peak_time().unwrap();
        let manual: f64 = per_node.iter().map(|w| w.vdd_rise.sample(t).value()).sum();
        assert!((manual - total.vdd_rise.sample(t).value()).abs() < 1e-6);
    }

    #[test]
    fn attribution_sums_to_its_peak_and_matches_the_report() {
        let d = design();
        let eval = NoiseEvaluator::new(&d);
        let report = eval.evaluate(0).unwrap();
        let attr = eval.attribution(0).unwrap();
        // Exact by construction: peak_ma is the stored-order sum.
        assert!((attr.contribution_sum() - attr.peak_ma).abs() <= 1e-9);
        // And it decomposes the same argmax instant the report found.
        assert_eq!(attr.rail, "vdd");
        assert_eq!(attr.edge, "rise");
        assert!((attr.time_ps - report.peak_time.value()).abs() < 1e-9);
        assert!(
            (attr.peak_ma - report.peak.value()).abs() < 1e-5,
            "attributed {} vs evaluated {}",
            attr.peak_ma,
            report.peak
        );
        assert_eq!(attr.contributions.len(), d.tree.len());
        assert!(attr
            .contributions
            .windows(2)
            .all(|w| w[0].amps_ma >= w[1].amps_ma));
        assert!(attr.contributions.iter().any(|c| c.kind == "sink"));
        assert!(attr.contributions.iter().any(|c| c.kind == "nonleaf"));
    }

    #[test]
    fn variation_changes_but_stays_close() {
        let d = design();
        let eval = NoiseEvaluator::new(&d);
        let base = eval.evaluate(0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let v = VariationModel::default().sample(&d.tree, &mut rng);
        let varied = eval.evaluate_with_variation(0, &v).unwrap();
        assert_ne!(base.peak, varied.peak);
        let ratio = varied.peak.value() / base.peak.value();
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn corner_pads_worsen_grid_noise() {
        use wavemin_pgrid::{GridOptions, PadPlacement};
        let d = design();
        let ring = NoiseEvaluator::new(&d).evaluate(0).unwrap();
        let corners = NoiseEvaluator::new(&d)
            .with_grid_options(GridOptions {
                pads: PadPlacement::Corners,
                ..GridOptions::default()
            })
            .evaluate(0)
            .unwrap();
        assert!(corners.vdd_noise > ring.vdd_noise);
        assert_eq!(corners.peak, ring.peak, "pads do not change currents");
    }

    #[test]
    fn evaluation_is_invariant_under_fanout_order() {
        let d = design();
        let mut canon = d.clone();
        canon.tree.canonicalize();
        let a = NoiseEvaluator::new(&d).evaluate(0).unwrap();
        let b = NoiseEvaluator::new(&canon).evaluate(0).unwrap();
        assert!((a.peak.value() - b.peak.value()).abs() < 1e-9);
        assert!((a.skew.value() - b.skew.value()).abs() < 1e-9);
    }

    #[test]
    fn adb_code_shifts_waveform_and_skew() {
        let mut d = design();
        let leaf = d.leaves()[0];
        d.mode_adjust[0].set_extra_delay(leaf, Picoseconds::new(10.0));
        let r = NoiseEvaluator::new(&d).evaluate(0).unwrap();
        assert!((r.skew.value() - 10.0).abs() < 2.0, "skew {}", r.skew);
    }
}
