//! Session-API and zone-cache integration tests: concurrent jobs must
//! dedup zone solves through the shared cache's in-flight reservations,
//! an ECO re-solve must splice clean zones while staying bit-identical
//! to a from-scratch solve of the edited design, and a salvaged zone's
//! greedy rung must show up in that zone's `worst_rung` — not leak into
//! the run's global ladder rung.

use std::sync::Arc;
use wavemin::prelude::*;
use wavemin_cells::units::Picoseconds;
use wavemin_testkit::configs::small_session as base_config;
use wavemin_testkit::designs::s15850;

fn characterize(design: Design) -> CharacterizedDesign {
    CharacterizedDesign::new(design, base_config()).expect("characterize")
}

#[test]
fn concurrent_jobs_share_the_cache_without_duplicate_solves() {
    let design = s15850(23);

    // Baseline: how many zone solves one cold run performs.
    let baseline = characterize(design.clone())
        .solve(&SolveOptions::default())
        .expect("baseline solve");
    let baseline_solves = baseline
        .report
        .as_ref()
        .expect("baseline report")
        .counters
        .zone_solves;
    assert!(baseline_solves > 0);

    // Two jobs race cold onto one shared cache. In-flight reservations
    // must make each (interval, zone) solve happen exactly once across
    // the pair: one job solves it, the other blocks and splices.
    let session = Arc::new(characterize(design));
    let cache = Arc::new(ZoneCache::new(64 << 20));
    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let session = Arc::clone(&session);
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    session
                        .solve_cached(&cache, &SolveOptions::default())
                        .expect("concurrent solve")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let total_solves: u64 = outcomes
        .iter()
        .map(|o| o.report.as_ref().expect("report").counters.zone_solves)
        .sum();
    let total_reused: u64 = outcomes
        .iter()
        .map(|o| o.report.as_ref().expect("report").counters.zones_reused)
        .sum();
    assert_eq!(
        total_solves, baseline_solves,
        "the pair must not duplicate any zone solve"
    );
    assert_eq!(
        total_reused, baseline_solves,
        "every solve one job performs is spliced by the other"
    );
    assert_eq!(
        outcomes[0].peak_after.value().to_bits(),
        outcomes[1].peak_after.value().to_bits(),
        "splices are bit-identical to solves"
    );
    assert_eq!(outcomes[0].assignment, outcomes[1].assignment);
    assert_eq!(
        outcomes[0].peak_after.value().to_bits(),
        baseline.peak_after.value().to_bits(),
        "cached solving must not change results"
    );
}

#[test]
fn eco_resolve_splices_clean_zones_and_matches_from_scratch() {
    let design = s15850(23);
    let cache = ZoneCache::new(64 << 20);
    let opts = SolveOptions::default();

    let session = characterize(design.clone());
    let cold = session.solve_cached(&cache, &opts).expect("cold solve");
    let cold_report = cold.report.as_ref().expect("cold report");
    assert_eq!(cold_report.counters.zones_reused, 0);

    // The ECO: a small local trim on a sink of the last-ordered zone,
    // leaving every other zone's content untouched.
    let probe = session.eco_probe_sink().expect("probe sink");
    let mut edited = design;
    edited.tree.node_mut(probe).delay_trim += Picoseconds::new(1.5);

    // Incremental: a fresh session over the edited design, same cache.
    let eco_session = characterize(edited.clone());
    let eco = eco_session.solve_cached(&cache, &opts).expect("eco solve");
    let eco_report = eco.report.as_ref().expect("eco report");
    assert!(
        eco_report.counters.zones_reused > 0,
        "a local edit must leave reusable zones (reused {}, solved {})",
        eco_report.counters.zones_reused,
        eco_report.counters.zone_solves
    );
    assert!(
        eco_report.counters.zone_solves < cold_report.counters.zone_solves,
        "an incremental re-solve must do less work than the cold solve"
    );

    // Ground truth: the edited design solved from scratch, no cache.
    let scratch = characterize(edited)
        .solve(&opts)
        .expect("from-scratch solve of the edited design");
    assert_eq!(
        eco.peak_after.value().to_bits(),
        scratch.peak_after.value().to_bits(),
        "splicing cached zones must be bit-identical to re-solving them"
    );
    assert_eq!(eco.assignment, scratch.assignment);
    assert_eq!(
        eco.skew_after.value().to_bits(),
        scratch.skew_after.value().to_bits()
    );
}

#[test]
fn salvaged_zones_report_their_greedy_rung_without_degrading_the_ladder() {
    // A rate-1.0 fault plan forces every zone through the salvage path,
    // which runs on the ladder's last (greedy) rung. The per-zone
    // worst_rung must record that; the *global* ladder rung must stay 0
    // because salvage never descends the shared ladder.
    let design = s15850(7);
    let mut cfg = base_config().with_fault_plan(Some(FaultPlan { seed: 1, rate: 1.0 }));
    cfg.max_intervals = Some(4);
    let out = ClkWaveMin::new(cfg).run(&design).expect("salvaged run");
    assert!(!out.faulted_zones.is_empty(), "rate 1.0 must fault zones");
    let report = out.report.as_ref().expect("report");
    assert_eq!(
        report.ladder_rung, 0,
        "salvage rungs must not leak into the global ladder position"
    );
    for &zone in &out.faulted_zones {
        let zm = &report.zones[zone];
        assert!(
            zm.worst_rung > 0,
            "faulted zone {zone} was salvaged on the greedy rung; its \
             worst_rung must record that (got {})",
            zm.worst_rung
        );
    }
    // An unfaulted control run keeps every zone at full fidelity.
    let clean = ClkWaveMin::new(base_config())
        .run(&design)
        .expect("clean run");
    let clean_report = clean.report.as_ref().expect("clean report");
    assert!(clean_report
        .zones
        .iter()
        .all(|z| z.worst_rung == 0 || z.solves == 0));
}
