//! Property-based tests for the run-report histograms: the log2 bucket
//! layout is exact at its boundaries, merging is associative and
//! commutative (the guarantee that makes worker-count-independent
//! aggregation sound), and quantiles are monotone in the query point.

use proptest::prelude::*;
use wavemin::observe::{bucket_index, bucket_upper_bound, RunHistogram, HISTOGRAM_BUCKETS};

fn hist_of(values: &[u64]) -> RunHistogram {
    let mut h = RunHistogram::default();
    for &v in values {
        h.observe(v);
    }
    h
}

fn merged(a: &RunHistogram, b: &RunHistogram) -> RunHistogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_boundaries_are_exact(v in 0u64..=u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i), "value above its bucket's bound");
        if i > 0 {
            prop_assert!(
                v > bucket_upper_bound(i - 1),
                "value {v} should overflow bucket {}",
                i - 1
            );
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..(1u64 << 40), 0..40),
        b in prop::collection::vec(0u64..(1u64 << 40), 0..40),
        c in prop::collection::vec(0u64..(1u64 << 40), 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha), "commutativity");
        prop_assert_eq!(
            merged(&merged(&ha, &hb), &hc),
            merged(&ha, &merged(&hb, &hc)),
            "associativity"
        );
        // Merging equals observing the concatenated stream directly.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(merged(&merged(&ha, &hb), &hc), hist_of(&all));
    }

    #[test]
    fn quantiles_are_monotone(
        values in prop::collection::vec(0u64..(1u64 << 40), 1..100),
        q1 in 0.0..=1.0f64,
        q2 in 0.0..=1.0f64,
    ) {
        let h = hist_of(&values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi), "quantile must be monotone");
        prop_assert!(h.p50 <= h.p90 && h.p90 <= h.p99, "stored quantiles ordered");
        // Every quantile answer is achievable: between the true min's
        // bucket bound and the true max's bucket bound.
        prop_assert!(h.quantile(1.0) == bucket_upper_bound(bucket_index(h.max)));
        prop_assert!(h.quantile(0.0) >= h.min.min(bucket_upper_bound(bucket_index(h.min))));
    }

    #[test]
    fn summary_fields_track_the_observed_stream(
        values in prop::collection::vec(0u64..u64::from(u32::MAX), 1..100),
    ) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.sum, values.iter().sum::<u64>());
        prop_assert_eq!(h.min, values.iter().copied().min().unwrap_or(0));
        prop_assert_eq!(h.max, values.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(h.count, h.buckets.iter().map(|b| b.count).sum::<u64>());
        // Buckets are strictly ascending with no empty entries.
        for w in h.buckets.windows(2) {
            prop_assert!(w[0].index < w[1].index);
        }
        prop_assert!(h.buckets.iter().all(|b| b.count > 0));
    }

    #[test]
    fn empty_is_the_merge_identity(values in prop::collection::vec(0u64..(1u64 << 40), 0..50)) {
        let h = hist_of(&values);
        let empty = RunHistogram::default();
        prop_assert_eq!(merged(&h, &empty), h.clone());
        prop_assert_eq!(merged(&empty, &h), h);
    }
}
