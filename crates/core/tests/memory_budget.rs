//! Memory-budget behaviour: an infeasible budget fails up front with a
//! typed error, and a budgeted scale run stays within its cap while
//! spilling archived zones (the `#[ignore]`d regression is driven
//! explicitly by the CI scale job).

use wavemin::prelude::*;

/// A budget below the process baseline cannot possibly run; the solver
/// must refuse with `WaveMinError::MemoryBudget` — naming both sides —
/// instead of thrashing or aborting.
#[test]
fn infeasible_budget_fails_with_typed_error() {
    let design = Design::from_benchmark(&Benchmark::s15850(), 1);
    let cfg = WaveMinConfig::default().with_memory_budget_mb(1);
    assert!(cfg.streaming_enabled(), "a budget implies streaming");
    match ClkWaveMin::new(cfg).run(&design) {
        Err(WaveMinError::MemoryBudget {
            budget_mb,
            required_mb,
        }) => {
            assert_eq!(budget_mb, 1);
            assert!(
                required_mb > budget_mb,
                "required {required_mb} MB must exceed the {budget_mb} MB budget"
            );
            let msg = WaveMinError::MemoryBudget {
                budget_mb,
                required_mb,
            }
            .to_string();
            assert!(msg.contains("memory budget"), "{msg}");
        }
        other => panic!("expected MemoryBudget error, got {other:?}"),
    }
}

/// The 100k-sink regression: a streaming run under a deliberately tight
/// budget must finish, keep its end-of-solve RSS within the budget, and
/// actually exercise the spill path (nonzero `zones_spilled`).
///
/// The budget is derived at runtime: a 1 MB probe run reports the
/// minimal working set via the typed error, and the real run gets that
/// plus a fixed archive allowance small enough to force eviction. The
/// budget governs the solve phase (zone residency + interval
/// accumulation); the final whole-design validation pass is measured
/// via `peak_rss_bytes` but sits outside the budgeted archive, so the
/// cap is asserted against `solve_rss_bytes`.
#[test]
#[ignore = "scale regression (~minutes): run explicitly or via the CI scale job"]
fn scale100k_stays_within_budget_and_spills() {
    let design = Design::from_benchmark(&Benchmark::scale("budget100k", 100_000), 9);
    let mut cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_threads(1)
        .with_metrics(true);
    cfg.max_intervals = Some(2);

    let probe = ClkWaveMin::new(cfg.clone().with_memory_budget_mb(1)).run(&design);
    let required_mb = match probe {
        Err(WaveMinError::MemoryBudget { required_mb, .. }) => required_mb,
        other => panic!("probe should report the minimal working set, got {other:?}"),
    };

    // ~16 MB of archive headroom: far below the full archive for 100k
    // sinks at 16 samples, so the LRU must evict. If allocator retention
    // from the probe shifted the baseline, widen once and retry.
    let mut budget_mb = required_mb + 16;
    let outcome = match ClkWaveMin::new(cfg.clone().with_memory_budget_mb(budget_mb)).run(&design) {
        Ok(out) => out,
        Err(WaveMinError::MemoryBudget { required_mb, .. }) => {
            budget_mb = required_mb + 16;
            ClkWaveMin::new(cfg.with_memory_budget_mb(budget_mb))
                .run(&design)
                .expect("budgeted run after baseline re-probe")
        }
        Err(other) => panic!("budgeted run failed: {other}"),
    };

    let report = outcome.report.expect("metrics were requested");
    report.validate().expect("report consistency");
    assert!(
        report.counters.zones_spilled > 0,
        "a {budget_mb} MB budget on 100k sinks must evict archived zones"
    );
    if outcome.intervals_tried > 1 {
        // A second interval revisits zones the first one's evictions
        // pushed out of the archive.
        assert!(
            report.counters.zone_recomputes > 0,
            "evicted zones revisited on later intervals must be recomputed"
        );
    }
    let budget_bytes = (budget_mb as u64) << 20;
    assert!(
        report.counters.solve_rss_bytes > 0,
        "the solve-phase RSS gauge must have been sampled"
    );
    assert!(
        report.counters.solve_rss_bytes <= budget_bytes,
        "end-of-solve RSS {} exceeds the {} byte budget",
        report.counters.solve_rss_bytes,
        budget_bytes
    );
    assert!(
        report.counters.peak_rss_bytes >= report.counters.solve_rss_bytes,
        "the peak gauge covers every checkpoint, including end-of-solve"
    );
    assert!(
        outcome.skew_after.value() <= WaveMinConfig::default().skew_bound.value() + 1e-9
            || outcome.assignment.is_empty(),
        "budgeted run must still satisfy the bound (or fall back to identity)"
    );
}
