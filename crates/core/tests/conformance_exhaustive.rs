//! Ground-truth conformance suite: on randomized tiny designs (≤ 8
//! sinks) the heuristic pipeline is checked against
//! [`ExhaustiveSearch`], which enumerates every assignment and keeps the
//! true evaluated optimum.
//!
//! Two design families with different claims:
//!
//! * **strict** — single branch, 3–6 sinks, one noise zone (huge
//!   `zone_pitch`), full optimization window and a dense sampling grid.
//!   Here the sampled min–max objective ranks assignments exactly like
//!   the continuous evaluator, so the exact Pareto solve must reproduce
//!   the exhaustive optimum peak bit-for-bit on every seed.
//! * **hard** — up to two branch buffers, 3–8 sinks, the default
//!   sampling density and window margin. The sampled model and the
//!   continuous evaluator now disagree on near-ties, so every solver —
//!   including the exact one — is held to a documented worst-case ratio
//!   instead of equality.
//!
//! Both families use two candidate cells (one buffer, one inverter — the
//! pure polarity problem) and a skew bound generous enough that every
//! assignment is feasible, keeping the exhaustive reference meaningful.

use wavemin::prelude::*;
use wavemin_testkit::configs::{polarity_hard as hard_config, polarity_strict as strict_config};
use wavemin_testkit::designs::random_polarity_design;

/// Designs checked per family; the strict equality claim covers 100
/// random designs as required by the conformance contract.
const SEEDS: u64 = 100;

/// Runs one solver over all seeds of a family and returns the worst
/// peak-to-optimum ratio observed (1.0 = always optimal).
fn worst_ratio(
    label: &str,
    design_for: impl Fn(u64) -> Design,
    config: impl Fn() -> WaveMinConfig,
    run: impl Fn(&Design, WaveMinConfig) -> Result<Outcome, WaveMinError>,
) -> f64 {
    let mut worst: f64 = 1.0;
    for seed in 0..SEEDS {
        let design = design_for(seed);
        let optimum = ExhaustiveSearch::new(config())
            .run(&design)
            .unwrap_or_else(|e| panic!("{label}: exhaustive failed on seed {seed}: {e}"));
        let heuristic = run(&design, config())
            .unwrap_or_else(|e| panic!("{label}: solver failed on seed {seed}: {e}"));
        let ratio = heuristic.peak_after.value() / optimum.peak_after.value();
        assert!(
            ratio >= 1.0 - 1e-9,
            "{label}: seed {seed} beat the exhaustive optimum (ratio {ratio}); \
             the reference search is broken"
        );
        if ratio > worst {
            worst = ratio;
        }
    }
    eprintln!("{label}: worst peak/optimum ratio over {SEEDS} seeds = {worst:.6}");
    worst
}

fn strict_design(seed: u64) -> Design {
    random_polarity_design(seed, 1, 6)
}

fn hard_design(seed: u64) -> Design {
    random_polarity_design(seed, 2, 8)
}

#[test]
fn exact_solver_matches_exhaustive_optimum() {
    let worst = worst_ratio("exact/strict", strict_design, strict_config, |d, cfg| {
        ClkWaveMin::new(cfg.with_solver(SolverKind::Exact { max_labels: None })).run(d)
    });
    assert!(
        worst <= 1.0 + 1e-9,
        "the exact Pareto solve must reproduce the exhaustive optimum \
         on the strict single-zone family (worst ratio {worst})"
    );
}

#[test]
fn warburton_solver_matches_optimum_on_strict_family() {
    // ε = 0.01 cannot misrank on a family where the sampled objective is
    // faithful: the approximation error is far below the cost separation.
    let worst = worst_ratio(
        "warburton/strict",
        strict_design,
        strict_config,
        |d, cfg| ClkWaveMin::new(cfg).run(d),
    );
    assert!(
        worst <= 1.0 + 1e-9,
        "ClkWaveMin (Warburton ε = 0.01) must match the optimum on the \
         strict family (worst ratio {worst})"
    );
}

#[test]
fn exact_solver_stays_within_model_gap_on_hard_family() {
    // On the hard family the residual is the sampled-model gap, not the
    // solver: calibrated worst case 1.033, documented bound 10 %.
    let worst = worst_ratio("exact/hard", hard_design, hard_config, |d, cfg| {
        ClkWaveMin::new(cfg.with_solver(SolverKind::Exact { max_labels: None })).run(d)
    });
    assert!(
        worst <= 1.10,
        "the exact solve drifted beyond the documented 10 % sampled-model \
         gap on the hard family (worst ratio {worst})"
    );
}

#[test]
fn warburton_solver_stays_within_documented_ratio() {
    // Calibrated worst case 1.033 (the sampled-model gap dominates the
    // ε-approximation error); documented bound 10 %.
    let worst = worst_ratio("warburton/hard", hard_design, hard_config, |d, cfg| {
        ClkWaveMin::new(cfg).run(d)
    });
    assert!(
        worst <= 1.10,
        "ClkWaveMin (Warburton ε = 0.01) drifted beyond its documented \
         10 % conformance bound (worst ratio {worst})"
    );
}

#[test]
fn greedy_ladder_rung_stays_within_documented_ratio() {
    // The last degradation rung (Exact with a one-label frontier) is the
    // quality floor budget exhaustion can reach: calibrated worst case
    // 1.069, documented bound 25 %.
    let worst = worst_ratio("greedy-rung/hard", hard_design, hard_config, |d, cfg| {
        ClkWaveMin::new(cfg.with_solver(SolverKind::Exact {
            max_labels: Some(1),
        }))
        .run(d)
    });
    assert!(
        worst <= 1.25,
        "the greedy ladder rung exceeded its documented 25 % conformance \
         bound (worst ratio {worst})"
    );
}

#[test]
fn fast_greedy_stays_within_documented_ratio() {
    // Calibrated worst case 1.078; documented bound 25 %.
    let worst = worst_ratio("fast/hard", hard_design, hard_config, |d, cfg| {
        ClkWaveMinFast::new(cfg).run(d)
    });
    assert!(
        worst <= 1.25,
        "ClkWaveMinFast exceeded its documented 25 % conformance bound \
         (worst ratio {worst})"
    );
}
