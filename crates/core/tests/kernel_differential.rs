//! End-to-end kernel differential test: a full optimization run must be
//! observationally identical whether the numeric kernels dispatch to the
//! vectorized or the scalar-reference family. The kernel selection is a
//! process-wide switch ([`wavemin_mosp::kernels::force`]), so everything
//! lives in ONE `#[test]` that flips it sequentially — splitting into
//! multiple tests would race the global on the parallel test runner.

use wavemin::prelude::*;
use wavemin_cells::units::Volts;
use wavemin_mosp::{kernels, Kernel};

/// Asserts two outcomes are observationally identical (runtime aside).
fn assert_outcomes_identical(vec_out: &Outcome, sc_out: &Outcome, label: &str) {
    assert_eq!(vec_out.assignment, sc_out.assignment, "{label}: assignment");
    assert_eq!(vec_out.peak_after, sc_out.peak_after, "{label}: peak");
    assert_eq!(
        vec_out.vdd_noise_after, sc_out.vdd_noise_after,
        "{label}: vdd"
    );
    assert_eq!(
        vec_out.gnd_noise_after, sc_out.gnd_noise_after,
        "{label}: gnd"
    );
    assert_eq!(vec_out.skew_after, sc_out.skew_after, "{label}: skew");
    assert!(
        vec_out.estimated_cost == sc_out.estimated_cost
            || (vec_out.estimated_cost.is_nan() && sc_out.estimated_cost.is_nan()),
        "{label}: cost {} vs {}",
        vec_out.estimated_cost,
        sc_out.estimated_cost
    );
    assert_eq!(
        vec_out.intervals_tried, sc_out.intervals_tried,
        "{label}: tried"
    );
    assert_eq!(
        vec_out.degenerate_zones, sc_out.degenerate_zones,
        "{label}: degenerate zones"
    );
    match (&vec_out.report, &sc_out.report) {
        (Some(v), Some(s)) => {
            v.validate().expect("vector report consistency");
            s.validate().expect("scalar report consistency");
            assert_eq!(
                v.normalized(),
                s.normalized(),
                "{label}: normalized reports must not depend on the kernel family"
            );
            assert_eq!(v.kernel, "vector", "{label}: vector run labels itself");
            assert_eq!(s.kernel, "scalar", "{label}: scalar run labels itself");
        }
        (None, None) => {}
        _ => panic!("{label}: one run produced a report and the other did not"),
    }
}

/// Runs `build` once per kernel family and checks the outcomes match.
fn differential<F: Fn() -> Outcome>(label: &str, build: F) {
    kernels::force(Some(Kernel::Vector));
    let vec_out = build();
    kernels::force(Some(Kernel::Scalar));
    let sc_out = build();
    kernels::force(None);
    assert_outcomes_identical(&vec_out, &sc_out, label);
}

#[test]
fn optimizers_are_kernel_family_independent() {
    // ClkWaveMin on two benchmarks, with metrics so the normalized
    // RunReport comparison also runs.
    for bench in [Benchmark::s15850(), Benchmark::s13207()] {
        let d = Design::from_benchmark(&bench, 7);
        let mut cfg = WaveMinConfig::default()
            .with_sample_count(16)
            .with_metrics(true);
        cfg.max_intervals = Some(6);
        differential(&bench.name, || {
            ClkWaveMin::new(cfg.clone())
                .run(&d)
                .expect("clkwavemin run")
        });
    }

    // The greedy fast variant (add_max / add_assign hot loop).
    let d = Design::from_benchmark(&Benchmark::s15850(), 11);
    let cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_metrics(true);
    differential("fast", || {
        ClkWaveMinFast::new(cfg.clone()).run(&d).expect("fast run")
    });

    // Multi-mode (intersection solves + per-mode characterization).
    let dm = Design::from_benchmark_multimode_levels(
        &Benchmark::s15850(),
        3,
        4,
        4,
        Volts::new(0.9),
        Volts::new(1.1),
    );
    let mcfg = WaveMinConfig::default()
        .with_skew_bound(wavemin_cells::units::Picoseconds::new(22.0))
        .with_sample_count(8)
        .with_metrics(true);
    differential("multimode", || {
        ClkWaveMinM::new(mcfg.clone())
            .run(&dm)
            .expect("multimode run")
    });
}
