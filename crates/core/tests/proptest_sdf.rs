//! Adversarial-input property tests for the SDF front-end: whatever the
//! bytes, `sdf::parse` and `import_sdf` must return `Ok`/`Err` — never
//! panic — and a `Design` must survive an export → import round trip
//! bit-for-bit. Mirrors `proptest_liberty.rs` on the cells side.

use std::collections::BTreeMap;

use proptest::prelude::*;
use wavemin::io::sdf;
use wavemin::prelude::*;
use wavemin_testkit::designs;

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255u8, 0..512usize)
}

/// A clean, well-formed SDF document to corrupt: the export of a small
/// randomized polarity tree.
fn clean_sdf(seed: u64) -> String {
    let design = designs::random_polarity_design(seed, 2, 6);
    wavemin::io::export_sdf(&design).expect("export")
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in arb_bytes()) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = sdf::parse(&text);
    }

    #[test]
    fn importer_never_panics_on_arbitrary_bytes(bytes in arb_bytes()) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = wavemin::io::import_sdf(&text, CellLibrary::nangate45());
    }

    #[test]
    fn importer_never_panics_on_corrupted_sdf(
        seed in 0u64..16,
        cut in 0.0..1.0f64,
        pos in 0.0..1.0f64,
        byte in 0u8..=255u8,
    ) {
        // Start from a well-formed export and corrupt it: truncate at an
        // arbitrary point and overwrite one byte. This keeps the input
        // close enough to valid SDF to reach the deeper lowering paths.
        let mut bytes = clean_sdf(seed).into_bytes();
        bytes.truncate((cut * bytes.len() as f64) as usize);
        if !bytes.is_empty() {
            let idx = ((pos * bytes.len() as f64) as usize).min(bytes.len() - 1);
            bytes[idx] = byte;
        }
        let text = String::from_utf8_lossy(&bytes);
        let _ = wavemin::io::import_sdf(&text, CellLibrary::nangate45());
    }

    #[test]
    fn every_proper_prefix_is_a_typed_error(
        seed in 0u64..16,
        at in 0.0..1.0f64,
    ) {
        // SDF is a complete-document format: unlike the checkpoint
        // journal (which forgives a trailing half-line), an interior OR
        // trailing truncation must surface as a typed error, never as a
        // silently shorter design.
        let clean = clean_sdf(seed);
        let doc = clean.trim_end();
        let mut cut = ((at * doc.len() as f64) as usize).clamp(1, doc.len() - 1);
        while cut > 0 && !doc.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut > 0 {
            prop_assert!(sdf::parse(&doc[..cut]).is_err());
        }
    }

    #[test]
    fn export_import_round_trips_bit_for_bit(seed in 0u64..32) {
        // Satellite 2: Design -> SDF -> Design preserves the topology
        // (by instance name) and every sink arrival exactly.
        let design = designs::random_polarity_design(seed, 2, 6);
        let before = design.timing(0).expect("timing");
        let text = wavemin::io::export_sdf(&design).expect("export");
        let imp = wavemin::io::import_sdf(&text, CellLibrary::nangate45())
            .expect("re-import");
        prop_assert_eq!(imp.design.tree.len(), design.tree.len());

        // Topology: child instance -> parent instance must match. The
        // exporter names node `id` as `n{id}`; the importer re-indexes.
        let mut want_edges = BTreeMap::new();
        for (id, node) in design.tree.iter() {
            if let Some(parent) = node.parent() {
                want_edges.insert(format!("n{}", id.0), format!("n{}", parent.0));
            }
        }
        let mut got_edges = BTreeMap::new();
        for (id, node) in imp.design.tree.iter() {
            if let Some(parent) = node.parent() {
                got_edges.insert(
                    imp.instances[id.0].clone(),
                    imp.instances[parent.0].clone(),
                );
            }
        }
        prop_assert_eq!(&got_edges, &want_edges);

        // Sink arrivals: both the SDF delay chain and the re-lowered
        // design's own timing reproduce the original bit-for-bit.
        let got: BTreeMap<&str, f64> = imp
            .sink_arrivals
            .iter()
            .map(|(n, a)| (n.as_str(), a.value()))
            .collect();
        let re_timing = imp.design.timing(0).expect("re-timing");
        let mut checked = 0usize;
        for (id, node) in design.tree.iter() {
            if !node.is_leaf() {
                continue;
            }
            let name = format!("n{}", id.0);
            let want = before.output_arrival[id.0].value();
            prop_assert_eq!(got[name.as_str()], want);
            let re_id = imp
                .instances
                .iter()
                .position(|n| *n == name)
                .expect("instance survives");
            prop_assert_eq!(re_timing.output_arrival[re_id].value(), want);
            checked += 1;
        }
        prop_assert_eq!(checked, design.tree.leaves().len());
    }
}
