//! Metamorphic properties of the [`NoiseEvaluator`]: transformations of
//! a design with a *known* effect on the evaluation, checked over
//! randomized inputs.
//!
//! 1. A global arrival shift (extra delay at the clock root) moves every
//!    node's waveform by the same amount, so the peak current, the grid
//!    noises and the skew are all unchanged.
//! 2. Flipping every sink's polarity (buffer ↔ inverter) swaps the
//!    IDD/ISS roles of the sink currents: a buffer charges its load from
//!    VDD on the source-rise event, the inverter discharges it into
//!    ground instead.
//! 3. Scaling every node's current uniformly (the Monte-Carlo
//!    `current_mult` channel with identity timing) scales the peak
//!    linearly and leaves the skew untouched.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wavemin::noise_table::EventWaveforms;
use wavemin::prelude::*;
use wavemin_cells::characterize::ClockEdge;
use wavemin_cells::units::{Femtofarads, Microns, Picoseconds, Volts};
use wavemin_clocktree::timing::TimingAdjust;
use wavemin_clocktree::variation::Variation;

/// A randomized little tree (two branch buffers, 4–8 buffer sinks).
fn random_design(seed: u64) -> Design {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tree = ClockTree::new(Point::new(0.0, 0.0), "BUF_X16");
    let sinks = rng.gen_range(4..=8usize);
    let mut parents = Vec::new();
    for b in 0..2 {
        parents.push(tree.add_internal(
            tree.root(),
            Point::new(rng.gen_range(25.0..40.0), 20.0 * b as f64 - 10.0),
            "BUF_X8",
            Microns::new(rng.gen_range(30.0..50.0)),
        ));
    }
    for s in 0..sinks {
        tree.add_leaf(
            parents[s % 2],
            Point::new(rng.gen_range(55.0..75.0), rng.gen_range(-20.0..20.0)),
            "BUF_X8",
            Microns::new(rng.gen_range(20.0..45.0)),
            Femtofarads::new(rng.gen_range(3.0..8.0)),
        );
    }
    Design::new(
        tree,
        CellLibrary::nangate45(),
        PowerDesign::uniform(Volts::new(1.1)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn global_arrival_shift_leaves_evaluation_unchanged(
        seed in 0u64..1000,
        shift in 1.0..200.0f64,
    ) {
        let base = random_design(seed);
        let mut shifted = base.clone();
        shifted.mode_adjust[0].set_extra_delay(shifted.tree.root(), Picoseconds::new(shift));

        let a = NoiseEvaluator::new(&base).evaluate(0).unwrap();
        let b = NoiseEvaluator::new(&shifted).evaluate(0).unwrap();
        prop_assert!((a.peak.value() - b.peak.value()).abs() < 1e-9,
            "peak {} vs {}", a.peak, b.peak);
        prop_assert!((a.vdd_noise.value() - b.vdd_noise.value()).abs() < 1e-9);
        prop_assert!((a.gnd_noise.value() - b.gnd_noise.value()).abs() < 1e-9);
        prop_assert!((a.skew.value() - b.skew.value()).abs() < 1e-9);
        // The peak happens at the same relative instant, `shift` later.
        prop_assert!(
            ((b.peak_time - a.peak_time).value() - shift).abs() < 1e-6,
            "peak time {} -> {} under a {shift} ps shift", a.peak_time, b.peak_time
        );
    }

    #[test]
    fn polarity_flip_swaps_idd_iss_roles(seed in 0u64..1000) {
        let base = random_design(seed);
        let mut flipped = base.clone();
        for &leaf in &flipped.leaves() {
            flipped.tree.set_cell(leaf, "INV_X8");
        }

        let (buf_waves, _) = NoiseEvaluator::new(&base).waveforms(0).unwrap();
        let (inv_waves, _) = NoiseEvaluator::new(&flipped).waveforms(0).unwrap();
        for &leaf in &base.leaves() {
            let b = &buf_waves[leaf.0];
            let i = &inv_waves[leaf.0];
            // Source-rise event: the buffer charges from VDD, the
            // inverter dumps the same transition into ground.
            prop_assert!(
                b.vdd_rise.peak() > b.gnd_rise.peak(),
                "buffer sink {leaf:?} must draw IDD on the rise event"
            );
            prop_assert!(
                i.gnd_rise.peak() > i.vdd_rise.peak(),
                "inverter sink {leaf:?} must draw ISS on the rise event"
            );
            // And mirrored on the source-fall event.
            prop_assert!(b.gnd_fall.peak() > b.vdd_fall.peak());
            prop_assert!(i.vdd_fall.peak() > i.gnd_fall.peak());
        }
    }

    #[test]
    fn input_edge_flip_swaps_event_slots_exactly(
        load in 2.0..30.0f64,
        slew in 5.0..60.0f64,
    ) {
        // The mechanism behind property 2, checked exactly: a polarity
        // flip upstream of a cell flips the input edge it sees, which
        // swaps its source-rise and source-fall event slots verbatim.
        let lib = CellLibrary::nangate45();
        let chr = Characterizer::default();
        for name in ["BUF_X8", "INV_X8", "BUF_X16", "INV_X16"] {
            let profile = chr.characterize(
                lib.get(name).unwrap(),
                Femtofarads::new(load),
                Picoseconds::new(slew),
                Volts::new(1.1),
            );
            let rise = EventWaveforms::from_profile(&profile, ClockEdge::Rise);
            let fall = EventWaveforms::from_profile(&profile, ClockEdge::Fall);
            for (rail, event) in EventWaveforms::SLOTS {
                let opposite = match event {
                    ClockEdge::Rise => ClockEdge::Fall,
                    ClockEdge::Fall => ClockEdge::Rise,
                };
                prop_assert_eq!(rise.get(rail, event), fall.get(rail, opposite));
            }
        }
    }

    #[test]
    fn uniform_current_scaling_scales_peak_linearly(
        seed in 0u64..1000,
        k in 0.25..4.0f64,
    ) {
        let design = random_design(seed);
        let eval = NoiseEvaluator::new(&design);
        let base = eval.evaluate(0).unwrap();
        let scaled = eval
            .evaluate_with_variation(
                0,
                &Variation {
                    timing: TimingAdjust::identity(),
                    current_mult: vec![k; design.tree.len()],
                },
            )
            .unwrap();
        let expected = base.peak.value() * k;
        prop_assert!(
            (scaled.peak.value() - expected).abs() <= 1e-9 * expected.max(1.0),
            "peak {} * {k} should be {expected}, got {}", base.peak, scaled.peak
        );
        // Identity timing: the skew is untouched by the current channel.
        prop_assert!((scaled.skew.value() - base.skew.value()).abs() < 1e-12);
    }
}
