//! Differential tests for the progress channel: an enabled tracker is
//! observation-only, so a run with progress streaming must produce
//! bit-identical outcomes to the same run without it — on one thread
//! and on four — and the ticks themselves must be monotone and end
//! with a final `done` event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wavemin::prelude::*;

fn assert_outcomes_identical(a: &Outcome, b: &Outcome, label: &str) {
    assert_eq!(a.assignment, b.assignment, "{label}: assignment");
    assert_eq!(
        a.peak_after.value().to_bits(),
        b.peak_after.value().to_bits(),
        "{label}: peak"
    );
    assert_eq!(a.vdd_noise_after, b.vdd_noise_after, "{label}: vdd");
    assert_eq!(a.gnd_noise_after, b.gnd_noise_after, "{label}: gnd");
    assert_eq!(a.skew_after, b.skew_after, "{label}: skew");
    assert_eq!(a.intervals_tried, b.intervals_tried, "{label}: tried");
}

fn small_config(threads: usize) -> WaveMinConfig {
    let mut cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_threads(threads);
    cfg.max_intervals = Some(6);
    cfg.collect_metrics = true;
    cfg
}

#[test]
fn progress_streaming_is_bit_identical_across_thread_counts() {
    let design = Design::from_benchmark(&Benchmark::s15850(), 7);
    for threads in [1usize, 4] {
        let plain = ClkWaveMin::new(small_config(threads))
            .run(&design)
            .expect("plain run");
        let ticks = Arc::new(AtomicU64::new(0));
        let ticks_in_sink = Arc::clone(&ticks);
        let tracker = ProgressTracker::enabled(Duration::from_millis(5), move |_p| {
            ticks_in_sink.fetch_add(1, Ordering::Relaxed);
        });
        let with_progress = ClkWaveMin::new(small_config(threads))
            .with_progress(tracker)
            .run(&design)
            .expect("progress run");
        assert_outcomes_identical(&plain, &with_progress, &format!("threads={threads}"));
        assert!(
            ticks.load(Ordering::Relaxed) > 0,
            "the tracker must have emitted at least the final tick"
        );
        // The deterministic report content matches too: normalization
        // strips wall-clock fields, everything else must be identical.
        let a = plain.report.as_ref().expect("plain report").normalized();
        let b = with_progress
            .report
            .as_ref()
            .expect("progress report")
            .normalized();
        assert_eq!(a, b, "threads={threads}: normalized reports differ");
    }
}

#[test]
fn progress_ticks_are_monotone_and_finish_with_done() {
    let design = Design::from_benchmark(&Benchmark::s13207(), 3);
    let seen: Arc<Mutex<Vec<Progress>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    let tracker = ProgressTracker::enabled(Duration::from_millis(1), move |p: &Progress| {
        sink_seen.lock().expect("sink lock").push(p.clone());
    });
    ClkWaveMin::new(small_config(2))
        .with_progress(tracker)
        .run(&design)
        .expect("run");
    let ticks = seen.lock().expect("final lock");
    assert!(!ticks.is_empty(), "at least the final tick fires");
    let last = ticks.last().expect("nonempty");
    assert!(last.done, "the final tick must carry done=true");
    // An interval that turns out infeasible bails before solving its
    // remaining zones, so `zones_done` can fall short of the planned
    // total — but never exceed it, and something must have solved.
    assert!(last.zones_done > 0, "some zone solves must have ticked");
    assert!(
        last.zones_done <= last.zones_total,
        "ticks cannot exceed the planned total"
    );
    for w in ticks.windows(2) {
        assert!(
            w[0].zones_done <= w[1].zones_done,
            "zones_done must be monotone"
        );
        assert!(w[0].rung <= w[1].rung, "the ladder only descends");
        assert!(
            w[0].elapsed_ms <= w[1].elapsed_ms,
            "elapsed time is monotone"
        );
    }
    assert_eq!(
        ticks.iter().filter(|p| p.done).count(),
        1,
        "exactly one done tick"
    );
}
