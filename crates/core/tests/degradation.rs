//! End-to-end acceptance tests for resource-governed solving: a tightly
//! budgeted run must finish quickly with a valid (feasible-skew)
//! assignment and a populated degradation record, while an unconstrained
//! run must report no degradation and unchanged results.

use std::time::{Duration, Instant};
use wavemin::prelude::*;

fn design() -> Design {
    Design::from_benchmark(&Benchmark::s15850(), 7)
}

#[test]
fn tight_budget_degrades_but_stays_valid() {
    let d = design();
    // Unbounded exact Pareto enumeration is worst-case exponential in the
    // zone size: one zone spanning the whole die (huge pitch) makes every
    // sink a DAG layer, and with high-dimensional sample vectors almost no
    // label dominates another, so the frontier explodes. A ~100 ms
    // wall-clock budget must force the ladder down instead of letting the
    // solve run unbounded.
    let mut cfg = WaveMinConfig::default()
        .with_solver(SolverKind::Exact { max_labels: None })
        .with_time_budget_ms(100);
    cfg.zone_pitch = wavemin_cells::units::Microns::new(1.0e9);
    let started = Instant::now();
    let out = ClkWaveMin::new(cfg.clone()).run(&d).expect("budgeted run");
    // Generous bound: the point is "did not hang", not a benchmark.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "budgeted run took {:?}",
        started.elapsed()
    );

    let degradation = out.degradation.expect("a 100 ms budget must degrade");
    assert!(degradation.exhausted_solves > 0);
    assert!(degradation.total_solves >= degradation.exhausted_solves);
    assert!(
        !degradation.steps.is_empty(),
        "degradation must say what was relaxed"
    );

    // The result is still a complete, skew-feasible assignment.
    assert_eq!(out.assignment.len(), d.leaves().len());
    assert!(
        out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9,
        "skew {} vs bound {}",
        out.skew_after,
        cfg.skew_bound
    );
    assert!(out.peak_after.value().is_finite());
    assert!(out.peak_after.value() <= out.peak_before.value() + 1e-9);
}

#[test]
fn unconstrained_run_reports_no_degradation() {
    let d = design();
    let free = ClkWaveMin::new(WaveMinConfig::default())
        .run(&d)
        .expect("unconstrained run");
    assert!(
        free.degradation.is_none(),
        "unconstrained run degraded: {:?}",
        free.degradation
    );

    // A budget loose enough to never trip must not change the result.
    let loose = ClkWaveMin::new(WaveMinConfig::default().with_time_budget_ms(3_600_000))
        .run(&d)
        .expect("loosely budgeted run");
    assert!(loose.degradation.is_none());
    assert_eq!(free.peak_after.value(), loose.peak_after.value());
    assert_eq!(free.skew_after.value(), loose.skew_after.value());
}

#[test]
fn multimode_budget_degrades_but_stays_valid() {
    let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 3, 4, 2);
    // The budget must sit well below the unconstrained runtime or the run
    // simply finishes inside it (the vectorized-kernel frontier brought
    // this fixture down to ~15 ms, which is why 2 ms and not 50 ms).
    let cfg = WaveMinConfig::default()
        .with_solver(SolverKind::Exact { max_labels: None })
        .with_time_budget_ms(2);
    let out = ClkWaveMinM::new(cfg)
        .run(&d)
        .expect("budgeted multimode run");
    let degradation = out.degradation.expect("a 2 ms budget must degrade");
    assert!(degradation.exhausted_solves > 0);
    assert_eq!(out.assignment.len(), d.leaves().len());

    let free = ClkWaveMinM::new(WaveMinConfig::default())
        .run(&d)
        .expect("unconstrained multimode run");
    assert!(free.degradation.is_none());
}

#[test]
fn validate_rejects_broken_design_before_solving() {
    let mut d = design();
    let leaf = d.leaves()[0];
    d.tree.node_mut(leaf).sink_cap = wavemin_cells::units::Femtofarads::new(f64::NAN);
    let err = ClkWaveMin::new(WaveMinConfig::default())
        .run(&d)
        .expect_err("NaN sink cap must be rejected");
    assert!(err.to_string().contains("sink cap"), "{err}");
}
