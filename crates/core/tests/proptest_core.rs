//! Property-based tests for the core optimization machinery.

use proptest::prelude::*;
use wavemin::noise_table::{EventWaveforms, SinkOption};
use wavemin::prelude::*;
use wavemin::sampling::SamplePlan;
use wavemin_cells::units::{MicroAmps, Picoseconds};
use wavemin_cells::{CellKind, Waveform};

fn arb_option() -> impl Strategy<Value = SinkOption> {
    (50.0..200.0f64, prop::bool::ANY, 0u32..3).prop_map(|(arrival, adjustable, steps_sel)| {
        let (range, steps) = if adjustable {
            (30.0, [4u32, 8, 12][steps_sel as usize])
        } else {
            (0.0, 0)
        };
        SinkOption {
            cell: if adjustable { "ADB_X8" } else { "BUF_X8" }.to_owned(),
            kind: if adjustable {
                CellKind::Adb
            } else {
                CellKind::Buffer
            },
            delay: Picoseconds::new(20.0),
            arrival: Picoseconds::new(arrival),
            waves: EventWaveforms::zero(),
            adjust_range: Picoseconds::new(range),
            adjust_steps: steps,
        }
    })
}

proptest! {
    #[test]
    fn delay_codes_always_land_inside_the_window(
        opt in arb_option(),
        lo in 40.0..250.0f64,
        width in 1.0..60.0f64,
    ) {
        let lo_t = Picoseconds::new(lo);
        let hi_t = Picoseconds::new(lo + width);
        if let Some(code) = opt.delay_code_for(lo_t, hi_t) {
            let adjusted = opt.arrival + code;
            prop_assert!(adjusted.value() >= lo_t.value() - 1e-6);
            prop_assert!(adjusted.value() <= hi_t.value() + 1e-6);
            prop_assert!(code.value() >= 0.0);
            prop_assert!(code.value() <= opt.adjust_range.value() + 1e-9);
            // Codes sit on the quantization grid.
            if opt.adjust_steps > 0 {
                let step = opt.adjust_range.value() / opt.adjust_steps as f64;
                let frac = (code.value() / step).fract();
                prop_assert!(!(1e-6..=1.0 - 1e-6).contains(&frac));
            }
        }
    }

    #[test]
    fn infeasible_windows_return_none(opt in arb_option(), gap in 1.0..100.0f64) {
        // A window entirely before the arrival can never be reached
        // (adjustable delay only adds).
        let hi = opt.arrival - Picoseconds::new(gap);
        let lo = hi - Picoseconds::new(5.0);
        prop_assert!(opt.delay_code_for(lo, hi).is_none());
        // A window beyond arrival + range is unreachable too.
        let lo2 = opt.arrival + opt.adjust_range + Picoseconds::new(gap);
        let hi2 = lo2 + Picoseconds::new(5.0);
        prop_assert!(opt.delay_code_for(lo2, hi2).is_none());
    }

    #[test]
    fn sample_plan_vector_is_monotone_in_waveform(
        k in 1usize..20,
        peak in 1.0..1000.0f64,
        scale in 0.0..1.0f64,
    ) {
        let tri = Waveform::triangle(
            Picoseconds::new(10.0),
            Picoseconds::new(20.0),
            Picoseconds::new(40.0),
            MicroAmps::new(peak),
        );
        let big = EventWaveforms { vdd_rise: tri.clone(), ..EventWaveforms::zero() };
        let small = EventWaveforms { vdd_rise: tri.scaled(scale), ..EventWaveforms::zero() };
        let plan = SamplePlan::over_window(0.0, 50.0, k);
        let vb = plan.vector_of(&big);
        let vs = plan.vector_of(&small);
        prop_assert_eq!(vb.len(), 4 * k);
        for (b, s) in vb.iter().zip(&vs) {
            prop_assert!(s <= b);
        }
    }

    #[test]
    fn event_waveform_sum_matches_pairwise(
        peaks in proptest::collection::vec(1.0..500.0f64, 1..6),
        t in 0.0..100.0f64,
    ) {
        let items: Vec<EventWaveforms> = peaks
            .iter()
            .enumerate()
            .map(|(i, &p)| EventWaveforms {
                gnd_fall: Waveform::triangle(
                    Picoseconds::new(i as f64 * 7.0),
                    Picoseconds::new(i as f64 * 7.0 + 5.0),
                    Picoseconds::new(i as f64 * 7.0 + 15.0),
                    MicroAmps::new(p),
                ),
                ..EventWaveforms::zero()
            })
            .collect();
        let pooled = EventWaveforms::sum(items.iter());
        let folded = items
            .iter()
            .fold(EventWaveforms::zero(), |acc, w| acc.plus(w));
        let tt = Picoseconds::new(t);
        prop_assert!(
            (pooled.gnd_fall.sample(tt).value() - folded.gnd_fall.sample(tt).value()).abs()
                < 1e-6
        );
    }

    #[test]
    fn assignment_apply_is_idempotent(seed in 0u64..50) {
        let mut d = Design::from_benchmark(&Benchmark::s15850(), seed);
        let leaves = d.leaves();
        let mut a = Assignment::new();
        a.set(leaves[0], "INV_X16");
        a.set(leaves[1], "BUF_X16");
        a.apply_to(&mut d);
        let once = d.tree.clone();
        a.apply_to(&mut d);
        prop_assert_eq!(once, d.tree);
    }
}
