//! Differential tests for the worker-pool execution path: an unbudgeted
//! run must produce bit-identical assignments and noise figures whether it
//! runs on one thread or many — intervals, intersections and power modes
//! are fanned out, but results are collected in input order, so the
//! ranking (and every tie-break) matches the sequential walk exactly.

use wavemin::prelude::*;
use wavemin_cells::units::Volts;

/// Asserts two outcomes are observationally identical (runtime aside).
fn assert_outcomes_identical(seq: &Outcome, par: &Outcome, label: &str) {
    assert_eq!(seq.assignment, par.assignment, "{label}: assignment");
    assert_eq!(seq.peak_after, par.peak_after, "{label}: peak");
    assert_eq!(seq.vdd_noise_after, par.vdd_noise_after, "{label}: vdd");
    assert_eq!(seq.gnd_noise_after, par.gnd_noise_after, "{label}: gnd");
    assert_eq!(seq.skew_after, par.skew_after, "{label}: skew");
    assert!(
        seq.estimated_cost == par.estimated_cost
            || (seq.estimated_cost.is_nan() && par.estimated_cost.is_nan()),
        "{label}: cost {} vs {}",
        seq.estimated_cost,
        par.estimated_cost
    );
    assert_eq!(seq.intervals_tried, par.intervals_tried, "{label}: tried");
    assert_eq!(
        seq.degenerate_zones, par.degenerate_zones,
        "{label}: degenerate zones"
    );
}

#[test]
fn clkwavemin_is_thread_count_independent() {
    for bench in [Benchmark::s15850(), Benchmark::s13207()] {
        let d = Design::from_benchmark(&bench, 7);
        let mut cfg = WaveMinConfig::default().with_sample_count(16);
        cfg.max_intervals = Some(6);
        let seq = ClkWaveMin::new(cfg.clone().with_threads(1))
            .run(&d)
            .expect("sequential run");
        let par = ClkWaveMin::new(cfg.with_threads(4))
            .run(&d)
            .expect("parallel run");
        assert_outcomes_identical(&seq, &par, &bench.name);
    }
}

#[test]
fn fast_variant_is_thread_count_independent() {
    let d = Design::from_benchmark(&Benchmark::s15850(), 11);
    let cfg = WaveMinConfig::default().with_sample_count(16);
    let seq = ClkWaveMinFast::new(cfg.clone().with_threads(1))
        .run(&d)
        .expect("sequential run");
    let par = ClkWaveMinFast::new(cfg.with_threads(4))
        .run(&d)
        .expect("parallel run");
    assert_outcomes_identical(&seq, &par, "fast");
}

#[test]
fn multimode_is_thread_count_independent() {
    let d = Design::from_benchmark_multimode_levels(
        &Benchmark::s15850(),
        3,
        4,
        4,
        Volts::new(0.9),
        Volts::new(1.1),
    );
    let cfg = WaveMinConfig::default()
        .with_skew_bound(wavemin_cells::units::Picoseconds::new(22.0))
        .with_sample_count(8);
    let seq = ClkWaveMinM::new(cfg.clone().with_threads(1))
        .run(&d)
        .expect("sequential run");
    let par = ClkWaveMinM::new(cfg.with_threads(4))
        .run(&d)
        .expect("parallel run");
    assert_outcomes_identical(&seq, &par, "multimode");
}

#[test]
fn dynamic_polarity_is_thread_count_independent() {
    let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 5, 4, 2);
    let cfg = WaveMinConfig::default().with_sample_count(8);
    let seq = DynamicPolarity::new(cfg.clone().with_threads(1))
        .run(&d)
        .expect("sequential run");
    let par = DynamicPolarity::new(cfg.with_threads(4))
        .run(&d)
        .expect("parallel run");
    assert_eq!(seq.xor_sinks, par.xor_sinks, "xor sinks");
    assert_eq!(seq.dynamic_peak_ma, par.dynamic_peak_ma, "dynamic peak");
    assert_eq!(seq.static_peak_ma, par.static_peak_ma, "static peak");
}

#[test]
fn metrics_aggregate_identically_across_thread_counts() {
    // The metrics registry sums per-zone records with commutative relaxed
    // atomics, so an unbudgeted run's RunReport — wall-clock fields
    // stripped by `normalized()` — must be identical whether the zone
    // solves fan out over one worker or four.
    for bench in [Benchmark::s15850(), Benchmark::s13207()] {
        let d = Design::from_benchmark(&bench, 7);
        let mut cfg = WaveMinConfig::default()
            .with_sample_count(16)
            .with_metrics(true);
        cfg.max_intervals = Some(6);
        let seq = ClkWaveMin::new(cfg.clone().with_threads(1))
            .run(&d)
            .expect("sequential run");
        let par = ClkWaveMin::new(cfg.with_threads(4))
            .run(&d)
            .expect("parallel run");
        let seq_report = seq.report.as_ref().expect("sequential report");
        let par_report = par.report.as_ref().expect("parallel report");
        seq_report
            .validate()
            .expect("sequential report consistency");
        par_report.validate().expect("parallel report consistency");
        assert_eq!(
            seq_report.normalized(),
            par_report.normalized(),
            "{}: normalized reports must not depend on the worker count",
            bench.name
        );
        assert_eq!(seq_report.threads, 1, "{}", bench.name);
        assert_eq!(par_report.threads, 4, "{}", bench.name);
    }
}

#[test]
fn report_counters_match_per_zone_sums() {
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    let cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_metrics(true)
        .with_threads(4);
    let out = ClkWaveMin::new(cfg).run(&d).expect("run");
    let report = out.report.as_ref().expect("report");
    let zone_labels: u64 = report.zones.iter().map(|z| z.labels_created).sum();
    assert_eq!(
        report.counters.labels_created, zone_labels,
        "global label count must equal the per-zone sum"
    );
    let zone_solves: u64 = report.zones.iter().map(|z| z.solves).sum();
    assert_eq!(report.counters.zone_solves, zone_solves);
    assert!(
        report.counters.labels_created > 0,
        "an instrumented MOSP run must create labels"
    );
    // Unmetered runs attach no report at all.
    let plain = ClkWaveMin::new(WaveMinConfig::default().with_sample_count(16))
        .run(&d)
        .expect("plain run");
    assert!(plain.report.is_none(), "metrics default to off");
}

#[test]
fn shared_budget_is_drained_across_parallel_solves() {
    // A budgeted parallel run is allowed to differ from a sequential one
    // (the shared work cap drains in worker charge order), but it must
    // still end with a complete, skew-feasible assignment.
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    let cfg = WaveMinConfig::default().with_time_budget_ms(50);
    let out = ClkWaveMin::new(cfg.clone().with_threads(4))
        .run(&d)
        .expect("budgeted parallel run");
    assert_eq!(out.assignment.len(), d.leaves().len());
    assert!(out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9);
}
