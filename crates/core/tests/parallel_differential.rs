//! Differential tests for the worker-pool execution path: an unbudgeted
//! run must produce bit-identical assignments and noise figures whether it
//! runs on one thread or many — intervals, intersections and power modes
//! are fanned out, but results are collected in input order, so the
//! ranking (and every tie-break) matches the sequential walk exactly.

use wavemin::prelude::*;
use wavemin_cells::units::Volts;

/// Asserts two outcomes are observationally identical (runtime aside).
fn assert_outcomes_identical(seq: &Outcome, par: &Outcome, label: &str) {
    assert_eq!(seq.assignment, par.assignment, "{label}: assignment");
    assert_eq!(seq.peak_after, par.peak_after, "{label}: peak");
    assert_eq!(seq.vdd_noise_after, par.vdd_noise_after, "{label}: vdd");
    assert_eq!(seq.gnd_noise_after, par.gnd_noise_after, "{label}: gnd");
    assert_eq!(seq.skew_after, par.skew_after, "{label}: skew");
    assert!(
        seq.estimated_cost == par.estimated_cost
            || (seq.estimated_cost.is_nan() && par.estimated_cost.is_nan()),
        "{label}: cost {} vs {}",
        seq.estimated_cost,
        par.estimated_cost
    );
    assert_eq!(seq.intervals_tried, par.intervals_tried, "{label}: tried");
    assert_eq!(
        seq.degenerate_zones, par.degenerate_zones,
        "{label}: degenerate zones"
    );
}

#[test]
fn clkwavemin_is_thread_count_independent() {
    for bench in [Benchmark::s15850(), Benchmark::s13207()] {
        let d = Design::from_benchmark(&bench, 7);
        let mut cfg = WaveMinConfig::default().with_sample_count(16);
        cfg.max_intervals = Some(6);
        let seq = ClkWaveMin::new(cfg.clone().with_threads(1))
            .run(&d)
            .expect("sequential run");
        let par = ClkWaveMin::new(cfg.with_threads(4))
            .run(&d)
            .expect("parallel run");
        assert_outcomes_identical(&seq, &par, &bench.name);
    }
}

#[test]
fn fast_variant_is_thread_count_independent() {
    let d = Design::from_benchmark(&Benchmark::s15850(), 11);
    let cfg = WaveMinConfig::default().with_sample_count(16);
    let seq = ClkWaveMinFast::new(cfg.clone().with_threads(1))
        .run(&d)
        .expect("sequential run");
    let par = ClkWaveMinFast::new(cfg.with_threads(4))
        .run(&d)
        .expect("parallel run");
    assert_outcomes_identical(&seq, &par, "fast");
}

#[test]
fn multimode_is_thread_count_independent() {
    let d = Design::from_benchmark_multimode_levels(
        &Benchmark::s15850(),
        3,
        4,
        4,
        Volts::new(0.9),
        Volts::new(1.1),
    );
    let cfg = WaveMinConfig::default()
        .with_skew_bound(wavemin_cells::units::Picoseconds::new(22.0))
        .with_sample_count(8);
    let seq = ClkWaveMinM::new(cfg.clone().with_threads(1))
        .run(&d)
        .expect("sequential run");
    let par = ClkWaveMinM::new(cfg.with_threads(4))
        .run(&d)
        .expect("parallel run");
    assert_outcomes_identical(&seq, &par, "multimode");
}

#[test]
fn dynamic_polarity_is_thread_count_independent() {
    let d = Design::from_benchmark_multimode(&Benchmark::s15850(), 5, 4, 2);
    let cfg = WaveMinConfig::default().with_sample_count(8);
    let seq = DynamicPolarity::new(cfg.clone().with_threads(1))
        .run(&d)
        .expect("sequential run");
    let par = DynamicPolarity::new(cfg.with_threads(4))
        .run(&d)
        .expect("parallel run");
    assert_eq!(seq.xor_sinks, par.xor_sinks, "xor sinks");
    assert_eq!(seq.dynamic_peak_ma, par.dynamic_peak_ma, "dynamic peak");
    assert_eq!(seq.static_peak_ma, par.static_peak_ma, "static peak");
}

#[test]
fn shared_budget_is_drained_across_parallel_solves() {
    // A budgeted parallel run is allowed to differ from a sequential one
    // (the shared work cap drains in worker charge order), but it must
    // still end with a complete, skew-feasible assignment.
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    let cfg = WaveMinConfig::default().with_time_budget_ms(50);
    let out = ClkWaveMin::new(cfg.clone().with_threads(4))
        .run(&d)
        .expect("budgeted parallel run");
    assert_eq!(out.assignment.len(), d.leaves().len());
    assert!(out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9);
}
