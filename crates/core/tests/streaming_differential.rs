//! Streaming ≡ materialized differential: the streaming zone pipeline
//! (lazy characterization + compact archive + spill/recompute) must be
//! observationally identical to the historical materialize-everything
//! path — same assignment, same cost bits, same normalized RunReport —
//! across thread counts, kernel families, and under fault injection.
//!
//! The kernel selection is a process-wide switch, so the kernel sweep
//! lives in one `#[test]` that flips it sequentially (see
//! `kernel_differential.rs` for the same pattern).

use wavemin::prelude::*;
use wavemin_mosp::{kernels, Kernel};

/// Runs ClkWaveMin twice — materialized and streaming — on identical
/// configs and asserts the outcomes are bit-for-bit interchangeable.
fn assert_streaming_equivalent(base: &WaveMinConfig, design: &Design, label: &str) {
    let materialized = ClkWaveMin::new(base.clone())
        .run(design)
        .expect("materialized run");
    let streaming = ClkWaveMin::new(base.clone().with_streaming(true))
        .run(design)
        .expect("streaming run");
    assert_eq!(
        materialized.assignment, streaming.assignment,
        "{label}: assignment"
    );
    assert_eq!(
        materialized.estimated_cost.to_bits(),
        streaming.estimated_cost.to_bits(),
        "{label}: cost bits"
    );
    assert_eq!(
        materialized.peak_after, streaming.peak_after,
        "{label}: peak"
    );
    assert_eq!(
        materialized.skew_after, streaming.skew_after,
        "{label}: skew"
    );
    assert_eq!(
        materialized.intervals_tried, streaming.intervals_tried,
        "{label}: intervals"
    );
    assert_eq!(
        materialized.degenerate_zones, streaming.degenerate_zones,
        "{label}: degenerate zones"
    );
    assert_eq!(
        materialized.faulted_zones, streaming.faulted_zones,
        "{label}: faulted zones"
    );
    match (&materialized.report, &streaming.report) {
        (Some(m), Some(s)) => {
            m.validate().expect("materialized report consistency");
            s.validate().expect("streaming report consistency");
            assert_eq!(
                m.normalized(),
                s.normalized(),
                "{label}: normalized reports must not depend on the residency policy"
            );
        }
        (None, None) => {}
        _ => panic!("{label}: one run produced a report and the other did not"),
    }
}

#[test]
fn streaming_matches_materialized_across_threads() {
    for bench in [Benchmark::s15850(), Benchmark::s13207()] {
        let design = Design::from_benchmark(&bench, 7);
        for threads in [1, 4] {
            let mut cfg = WaveMinConfig::default()
                .with_sample_count(16)
                .with_threads(threads)
                .with_metrics(true);
            cfg.max_intervals = Some(6);
            assert_streaming_equivalent(&cfg, &design, &format!("{} x{threads}", bench.name));
        }
    }
}

#[test]
fn streaming_matches_materialized_under_fault_injection() {
    let design = Design::from_benchmark(&Benchmark::s15850(), 3);
    for (seed, rate) in [(1, 1.0), (5, 0.25)] {
        let mut cfg = WaveMinConfig::default()
            .with_sample_count(12)
            .with_metrics(true)
            .with_fault_plan(Some(FaultPlan { seed, rate }));
        cfg.max_intervals = Some(4);
        assert_streaming_equivalent(&cfg, &design, &format!("faults {seed}:{rate}"));
    }
}

#[test]
fn streaming_matches_materialized_on_every_kernel_family() {
    let design = Design::from_benchmark(&Benchmark::s15850(), 11);
    let mut cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_metrics(true);
    cfg.max_intervals = Some(6);
    for kernel in [Kernel::Vector, Kernel::Scalar] {
        kernels::force(Some(kernel));
        assert_streaming_equivalent(&cfg, &design, &format!("{kernel:?}"));
    }
    kernels::force(None);
}

#[test]
fn streaming_matches_materialized_on_synthetic_scale_fixture() {
    // A larger multi-zone tree than the benchmark circuits, exercising
    // the archive across hundreds of zones.
    let design = Design::from_benchmark(&Benchmark::scale("stream_diff", 300), 5);
    let mut cfg = WaveMinConfig::default()
        .with_sample_count(8)
        .with_metrics(true);
    cfg.max_intervals = Some(3);
    assert_streaming_equivalent(&cfg, &design, "scale300");
}
