//! Property-based tests for the trace journal's merge and overflow
//! accounting: the merged view must be timestamp-sorted no matter how the
//! recording threads interleave, and forced overflow must follow the
//! keep-oldest policy with *exact* per-track drop counts.

use proptest::prelude::*;
use wavemin::trace::{TraceEventKind, TraceJournal};

/// Rung values encode `thread_tag * TAG_STRIDE + sequence` so a merged
/// event identifies both its producing thread and its position.
const TAG_STRIDE: usize = 1_000;

proptest! {
    // Each case spawns real threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_sorted_and_overflow_drops_are_exact(
        capacity in 1usize..24,
        counts in prop::collection::vec(1usize..60, 1..5),
    ) {
        let journal = TraceJournal::with_capacity(capacity);
        std::thread::scope(|scope| {
            for (tag, &count) in counts.iter().enumerate() {
                let journal = journal.clone();
                scope.spawn(move || {
                    let mut handle = journal.handle();
                    for i in 0..count {
                        handle.instant(TraceEventKind::RungTransition {
                            rung: tag * TAG_STRIDE + i,
                        });
                    }
                });
            }
        });

        let merged = journal.merged().expect("enabled journal");
        prop_assert_eq!(merged.tracks.len(), counts.len());

        // The merged view is globally timestamp-sorted.
        let ts: Vec<u64> = merged.events.iter().map(|(_, e)| e.ts_ns).collect();
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "merged ts order");

        // Keep-oldest: every track retains exactly the first
        // `min(count, capacity)` events of its thread, in recording
        // order, and counts the remainder as dropped.
        let mut per_track: Vec<Vec<usize>> = vec![Vec::new(); merged.tracks.len()];
        for &(track, ev) in &merged.events {
            match ev.kind {
                TraceEventKind::RungTransition { rung } => per_track[track].push(rung),
                _ => prop_assert!(false, "unexpected event kind"),
            }
        }
        let mut expected_total_drops = 0u64;
        for (track, rungs) in per_track.iter().enumerate() {
            prop_assert!(!rungs.is_empty(), "every thread pushed at least one event");
            let tag = rungs[0] / TAG_STRIDE;
            let count = counts[tag];
            let kept = count.min(capacity);
            let expected: Vec<usize> = (0..kept).map(|i| tag * TAG_STRIDE + i).collect();
            prop_assert_eq!(rungs.as_slice(), expected.as_slice());
            prop_assert_eq!(merged.tracks[track].recorded, kept);
            prop_assert_eq!(merged.tracks[track].dropped, (count - kept) as u64);
            expected_total_drops += (count - kept) as u64;
        }
        prop_assert_eq!(journal.dropped_events(), expected_total_drops);

        // The export surfaces the same total in its otherData footer.
        let json = journal.chrome_trace().expect("enabled journal");
        prop_assert!(json.contains(&format!("\"dropped_events\":{expected_total_drops}")));
    }
}
