//! Differential and end-to-end tests for traced runs (the `--trace-out`
//! path): attaching a journal must not perturb the optimizer — identical
//! outcomes and normalized reports at any worker count — and the exported
//! Chrome trace plus peak attribution must meet the acceptance criteria
//! (valid JSON, zone/layer spans, per-track monotonic timestamps, and an
//! attribution that sums to the reported peak within 1e-9).

use serde::Value;
use std::collections::{HashMap, HashSet};
use wavemin::prelude::*;
use wavemin::trace::{TraceEventKind, TraceJournal};

/// Asserts two outcomes are observationally identical (runtime aside).
fn assert_outcomes_identical(plain: &Outcome, traced: &Outcome, label: &str) {
    assert_eq!(plain.assignment, traced.assignment, "{label}: assignment");
    assert_eq!(plain.peak_after, traced.peak_after, "{label}: peak");
    assert_eq!(
        plain.vdd_noise_after, traced.vdd_noise_after,
        "{label}: vdd"
    );
    assert_eq!(
        plain.gnd_noise_after, traced.gnd_noise_after,
        "{label}: gnd"
    );
    assert_eq!(plain.skew_after, traced.skew_after, "{label}: skew");
    assert!(
        plain.estimated_cost == traced.estimated_cost
            || (plain.estimated_cost.is_nan() && traced.estimated_cost.is_nan()),
        "{label}: cost {} vs {}",
        plain.estimated_cost,
        traced.estimated_cost
    );
    assert_eq!(
        plain.intervals_tried, traced.intervals_tried,
        "{label}: tried"
    );
    assert_eq!(
        plain.degenerate_zones, traced.degenerate_zones,
        "{label}: degenerate zones"
    );
}

#[test]
fn traced_runs_are_identical_to_untraced_runs() {
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    for threads in [1usize, 4] {
        let mut cfg = WaveMinConfig::default()
            .with_sample_count(16)
            .with_metrics(true)
            .with_threads(threads);
        cfg.max_intervals = Some(6);
        let algo = ClkWaveMin::new(cfg);
        let plain = algo.run(&d).expect("untraced run");
        let journal = TraceJournal::enabled();
        let traced = algo.run_traced(&d, &journal).expect("traced run");
        let label = format!("threads={threads}");
        assert_outcomes_identical(&plain, &traced, &label);
        assert_eq!(
            plain.report.as_ref().expect("untraced report").normalized(),
            traced.report.as_ref().expect("traced report").normalized(),
            "{label}: normalized reports must not depend on tracing"
        );
        let merged = journal.merged().expect("enabled journal");
        let zone_spans = merged
            .events
            .iter()
            .filter(|(_, e)| matches!(e.kind, TraceEventKind::ZoneSolve { .. }))
            .count();
        assert!(zone_spans > 0, "{label}: zone spans recorded");
        assert_eq!(journal.dropped_events(), 0, "{label}: no overflow expected");
    }
}

#[test]
fn s15850_trace_export_and_attribution_meet_acceptance() {
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    let mut cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_metrics(true)
        .with_threads(4);
    cfg.max_intervals = Some(6);
    let journal = TraceJournal::enabled();
    let out = ClkWaveMin::new(cfg)
        .run_traced(&d, &journal)
        .expect("traced run");

    // The attribution decomposes the reported worst-mode peak exactly.
    let report = out.report.as_ref().expect("report");
    report.validate().expect("report self-consistency");
    let attr = report.attribution.as_ref().expect("attribution");
    assert!(!attr.contributions.is_empty(), "contributors present");
    let sum: f64 = attr.contributions.iter().map(|c| c.amps_ma).sum();
    assert!(
        (sum - attr.peak_ma).abs() <= 1e-9,
        "contribution sum {sum} must match peak {} to 1e-9",
        attr.peak_ma
    );

    // The exported Chrome trace parses, carries zone and layer spans, and
    // is timestamp-monotonic within every (pid, tid) track.
    let json = journal.chrome_trace().expect("chrome trace");
    let root = serde_json::from_str(&json).expect("valid trace JSON");
    let Value::Map(entries) = &root else {
        panic!("object root");
    };
    let field = |fields: &[(String, Value)], key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let Some(Value::Seq(events)) = field(entries, "traceEvents") else {
        panic!("traceEvents array");
    };
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut names: HashSet<String> = HashSet::new();
    let mut metadata = 0usize;
    for ev in &events {
        let Value::Map(fields) = ev else {
            panic!("event object");
        };
        let Some(Value::Str(ph)) = field(fields, "ph") else {
            panic!("ph field");
        };
        if ph == "M" {
            metadata += 1;
            continue;
        }
        if let Some(Value::Str(name)) = field(fields, "name") {
            names.insert(name);
        }
        let (Some(Value::UInt(pid)), Some(Value::UInt(tid))) =
            (field(fields, "pid"), field(fields, "tid"))
        else {
            panic!("pid/tid fields");
        };
        let Some(Value::Float(ts)) = field(fields, "ts") else {
            panic!("ts field");
        };
        if let Some(prev) = last_ts.insert((pid, tid), ts) {
            assert!(prev <= ts, "ts monotonic within track {tid}");
        }
    }
    assert!(metadata >= 1, "thread_name metadata present");
    assert!(names.contains("zone_solve"), "zone spans exported");
    assert!(names.contains("layer"), "graph-layer spans exported");
    assert!(!last_ts.is_empty(), "at least one worker track");
}
