//! Chaos differential tests for the fault-containment layer: under a
//! deterministic fault plan every run must either finish with a valid
//! (possibly salvaged) `Outcome` or fail with a typed `WaveMinError` —
//! never abort the process — and a checkpointed run killed mid-journal
//! must resume bit-for-bit, re-solving only the zones the journal cannot
//! vouch for.

use std::panic::{catch_unwind, AssertUnwindSafe};
use wavemin::prelude::*;
use wavemin_cells::units::Volts;

/// A unique scratch path under the system temp dir.
fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join("wavemin-fault-differential");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name).to_string_lossy().into_owned()
}

/// The shared small-but-multi-zone configuration. Every test pins the
/// fault plan explicitly so the suite is deterministic even when the
/// process itself runs under `WAVEMIN_FAULTS` (the CI chaos job does).
fn base_config() -> WaveMinConfig {
    let mut cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_fault_plan(None);
    cfg.max_intervals = Some(6);
    cfg
}

fn assert_valid_outcome(d: &Design, cfg: &WaveMinConfig, out: &Outcome, label: &str) {
    assert_eq!(
        out.assignment.len(),
        d.leaves().len(),
        "{label}: every sink must still be assigned"
    );
    assert!(
        out.skew_after.value() <= cfg.skew_bound.value() * 1.05 + 1e-9,
        "{label}: salvaged runs must stay skew-feasible ({} > {})",
        out.skew_after.value(),
        cfg.skew_bound.value()
    );
}

#[test]
fn rate_one_plan_faults_every_zone_and_still_completes() {
    // rate 1.0 fires the ZoneSolve panic site on every zone worker, so
    // every zone takes the catch_unwind -> greedy-salvage path. The run
    // must still produce a complete, skew-feasible outcome that reports
    // each contained fault.
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    let cfg = base_config()
        .with_fault_plan(Some(FaultPlan { seed: 1, rate: 1.0 }))
        .with_metrics(true);
    let out = ClkWaveMin::new(cfg.clone())
        .run(&d)
        .expect("a fully faulted run must still be salvageable");
    assert_valid_outcome(&d, &cfg, &out, "rate-1.0");
    assert!(
        !out.faulted_zones.is_empty(),
        "a rate-1.0 plan must report faulted zones"
    );

    let degradation = out.degradation.as_ref().expect("degradation record");
    let contained = degradation
        .steps
        .iter()
        .filter(|s| matches!(s, DegradationStep::ZoneFaultContained { .. }))
        .count();
    assert!(contained > 0, "contained faults must appear as steps");

    let report = out.report.as_ref().expect("metrics report");
    report.validate().expect("report consistency");
    assert!(report.counters.zone_faults > 0, "fault counter");
    assert_eq!(
        report.counters.zone_faults, report.counters.zone_salvages,
        "every injected fault must be salvaged (the salvage path is injection-free)"
    );
}

#[test]
fn salvaged_outcome_matches_across_thread_counts() {
    // Containment bookkeeping must not break the ordered-collection
    // determinism guarantee: a faulted run is thread-count independent
    // just like a clean one.
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    let cfg = base_config().with_fault_plan(Some(FaultPlan { seed: 5, rate: 1.0 }));
    let seq = ClkWaveMin::new(cfg.clone().with_threads(1))
        .run(&d)
        .expect("sequential faulted run");
    let par = ClkWaveMin::new(cfg.with_threads(4))
        .run(&d)
        .expect("parallel faulted run");
    assert_eq!(seq.assignment, par.assignment, "assignment");
    assert_eq!(seq.peak_after, par.peak_after, "peak");
    assert_eq!(
        seq.estimated_cost.to_bits(),
        par.estimated_cost.to_bits(),
        "cost bits"
    );
    assert_eq!(seq.faulted_zones, par.faulted_zones, "faulted zones");
}

#[test]
fn seed_sweep_never_aborts() {
    // Across a spread of seeds and rates the solver must uphold its
    // chaos contract: a valid outcome or a typed error, never a panic
    // that escapes `run`.
    let d = Design::from_benchmark(&Benchmark::s13207(), 3);
    for seed in 1..=6u64 {
        for rate in [0.05, 0.35, 1.0] {
            let cfg = base_config().with_fault_plan(Some(FaultPlan { seed, rate }));
            let label = format!("seed {seed} rate {rate}");
            let run = catch_unwind(AssertUnwindSafe(|| ClkWaveMin::new(cfg.clone()).run(&d)));
            let result = run.unwrap_or_else(|_| panic!("{label}: panic escaped run()"));
            match result {
                Ok(out) => assert_valid_outcome(&d, &cfg, &out, &label),
                Err(e) => {
                    // Typed errors are acceptable; stringifying proves the
                    // error is well-formed (payloads included).
                    let msg = e.to_string();
                    assert!(!msg.is_empty(), "{label}: error must describe itself");
                }
            }
        }
    }
}

#[test]
fn multimode_chaos_run_is_contained() {
    let d = Design::from_benchmark_multimode_levels(
        &Benchmark::s15850(),
        3,
        4,
        4,
        Volts::new(0.9),
        Volts::new(1.1),
    );
    let cfg = WaveMinConfig::default()
        .with_skew_bound(wavemin_cells::units::Picoseconds::new(22.0))
        .with_sample_count(8)
        .with_fault_plan(Some(FaultPlan { seed: 3, rate: 1.0 }));
    let out = ClkWaveMinM::new(cfg)
        .run(&d)
        .expect("a fully faulted multimode run must still be salvageable");
    assert!(
        !out.faulted_zones.is_empty(),
        "multimode must report faulted zones"
    );
    assert_eq!(
        out.assignment.len(),
        d.leaves().len(),
        "multimode salvage keeps the assignment complete"
    );
}

#[test]
fn checkpoint_resume_reproduces_the_uninterrupted_run_bit_for_bit() {
    let d = Design::from_benchmark(&Benchmark::s15850(), 7);
    let cfg = base_config().with_threads(1).with_metrics(true);

    // Ground truth: same configuration, no journal involved at all.
    let baseline = ClkWaveMin::new(cfg.clone()).run(&d).expect("baseline run");

    // Uninterrupted checkpointed run: must match the baseline exactly and
    // leave a complete journal behind.
    let path = scratch("resume-roundtrip.ckpt");
    let _ = std::fs::remove_file(&path);
    let full = ClkWaveMin::new(cfg.clone().with_checkpoint(&path))
        .run(&d)
        .expect("checkpointed run");
    assert_eq!(baseline.assignment, full.assignment, "journaling is inert");
    assert_eq!(baseline.peak_after, full.peak_after, "journaling is inert");
    let full_solves = full.report.as_ref().expect("report").counters.zone_solves;
    assert!(full_solves > 0, "the run must have solved zones");

    // Simulate a mid-run kill: truncate the journal to its header plus the
    // first `keep` complete zone lines (a dangling partial line is the
    // loader's job and covered by unit tests).
    let keep = 3usize;
    let text = std::fs::read_to_string(&path).expect("read journal");
    let mut lines = text.lines();
    let header = lines.next().expect("journal header").to_owned();
    let kept: Vec<&str> = lines.take(keep).collect();
    assert_eq!(kept.len(), keep, "journal must hold at least {keep} zones");
    std::fs::write(&path, format!("{header}\n{}\n", kept.join("\n"))).expect("truncate journal");

    // Resume: bit-for-bit equal to the uninterrupted run, reusing exactly
    // the surviving zones and re-solving only the rest.
    let resumed = ClkWaveMin::new(cfg.clone().with_checkpoint(&path).with_resume(true))
        .run(&d)
        .expect("resumed run");
    assert_eq!(baseline.assignment, resumed.assignment, "assignment");
    assert_eq!(
        baseline.peak_after.value().to_bits(),
        resumed.peak_after.value().to_bits(),
        "peak bits"
    );
    assert_eq!(
        baseline.estimated_cost.to_bits(),
        resumed.estimated_cost.to_bits(),
        "cost bits"
    );
    let counters = &resumed.report.as_ref().expect("resumed report").counters;
    assert_eq!(counters.zones_reused, keep as u64, "reused zone count");
    assert_eq!(
        counters.zone_solves + keep as u64,
        full_solves,
        "resume must re-solve exactly the zones missing from the journal"
    );

    // Resuming again from the now-complete journal re-solves nothing.
    let replay = ClkWaveMin::new(cfg.with_checkpoint(&path).with_resume(true))
        .run(&d)
        .expect("replay run");
    assert_eq!(baseline.assignment, replay.assignment, "replay assignment");
    let counters = &replay.report.as_ref().expect("replay report").counters;
    assert_eq!(
        counters.zone_solves, 0,
        "a complete journal answers everything"
    );
    assert!(counters.zones_reused >= full_solves, "all zones reused");
}

#[test]
fn checkpoint_under_faults_resumes_identically() {
    // Faulted runs journal their *salvaged* results; a resume must replay
    // them without re-firing the injection (the zone is never re-solved).
    let d = Design::from_benchmark(&Benchmark::s13207(), 3);
    let cfg = base_config()
        .with_threads(1)
        .with_metrics(true)
        .with_fault_plan(Some(FaultPlan { seed: 2, rate: 1.0 }));

    let path = scratch("faulted-resume.ckpt");
    let _ = std::fs::remove_file(&path);
    let full = ClkWaveMin::new(cfg.clone().with_checkpoint(&path))
        .run(&d)
        .expect("faulted checkpointed run");
    assert!(!full.faulted_zones.is_empty(), "faults must fire");

    let resumed = ClkWaveMin::new(cfg.with_checkpoint(&path).with_resume(true))
        .run(&d)
        .expect("faulted resume");
    assert_eq!(full.assignment, resumed.assignment, "assignment");
    assert_eq!(
        full.estimated_cost.to_bits(),
        resumed.estimated_cost.to_bits(),
        "cost bits"
    );
    let counters = &resumed.report.as_ref().expect("report").counters;
    assert_eq!(counters.zone_solves, 0, "nothing left to re-solve");
    assert_eq!(counters.zone_faults, 0, "reused zones cannot fault");
}
