//! Deterministic clock-tree design builders shared across test suites.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wavemin::prelude::*;
use wavemin_cells::units::{Femtofarads, Microns, Volts};

/// A randomized tiny polarity tree: `branches` BUF_X8 buffers under a
/// BUF_X16 root, 3..=`max_sinks` leaves (random BUF_X8 / INV_X8 mix)
/// dealt round-robin below them. This is the design family the
/// exhaustive-conformance suite sweeps; the SDF round-trip property
/// reuses it as an export corpus.
///
/// # Panics
///
/// Panics if `branches` is zero (there would be no parent to deal
/// leaves to).
#[must_use]
pub fn random_polarity_design(seed: u64, branches: usize, max_sinks: usize) -> Design {
    assert!(branches > 0, "need at least one branch buffer");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tree = ClockTree::new(Point::new(0.0, 0.0), "BUF_X16");
    let sinks = rng.gen_range(3..=max_sinks.max(3));
    let mut parents = Vec::with_capacity(branches);
    for b in 0..branches {
        let y = 20.0 * b as f64 - 10.0 * (branches as f64 - 1.0);
        parents.push(tree.add_internal(
            tree.root(),
            Point::new(rng.gen_range(25.0..40.0), y),
            "BUF_X8",
            Microns::new(rng.gen_range(30.0..50.0)),
        ));
    }
    for s in 0..sinks {
        let parent = parents[s % branches];
        tree.add_leaf(
            parent,
            Point::new(rng.gen_range(55.0..75.0), rng.gen_range(-20.0..20.0)),
            if rng.gen_range(0..2) == 0 {
                "BUF_X8"
            } else {
                "INV_X8"
            },
            Microns::new(rng.gen_range(20.0..45.0)),
            Femtofarads::new(rng.gen_range(3.0..8.0)),
        );
    }
    Design::new(
        tree,
        CellLibrary::nangate45(),
        PowerDesign::uniform(Volts::new(1.1)),
    )
}

/// The s15850 benchmark design the session/serve suites exercise.
#[must_use]
pub fn s15850(seed: u64) -> Design {
    Design::from_benchmark(&Benchmark::s15850(), seed)
}

/// The s13207 benchmark design the single-mode integration suite uses.
#[must_use]
pub fn s13207(seed: u64) -> Design {
    Design::from_benchmark(&Benchmark::s13207(), seed)
}
