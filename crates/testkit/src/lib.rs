//! Shared test and benchmark fixtures for the WaveMin workspace.
//!
//! Before this crate existed the same builders were copy-pasted into
//! `wavemin_bench::mosp_fixtures`, `conformance_exhaustive.rs`,
//! `session_cache.rs`, and the top-level integration tests. Everything
//! fixture-shaped now lives here, in three modules:
//!
//! * [`mosp`] — the layered WaveMin-shaped MOSP graph and the median
//!   wall-clock helper used by criterion benches and the JSON emitter;
//! * [`designs`] — deterministic clock-tree designs: benchmark-derived
//!   and randomized polarity trees for conformance sweeps;
//! * [`configs`] — the small/strict/hard [`WaveMinConfig`] presets the
//!   conformance and session suites share;
//! * [`golden`] — the golden-snapshot compare/regenerate helper
//!   (`GOLDEN_REGEN=1` rewrites, peak lines compared to 1e-9).
//!
//! This crate is test support: it is a regular dependency only of
//! `wavemin-bench` and a dev-dependency everywhere else. Like the
//! bench bins, it is loud by design — fixture construction panics
//! rather than propagating errors into every test signature.
#![allow(clippy::expect_used, clippy::unwrap_used)]

pub mod configs;
pub mod designs;
pub mod golden;
pub mod mosp;

pub use wavemin::prelude::WaveMinConfig;
