//! Golden-snapshot compare/regenerate helper.
//!
//! A snapshot is a text file whose first `peak_after_ma = …` line is
//! compared numerically to 1e-9 mA (robust to a formatting-only
//! regeneration) and whose remaining lines — assignment listings, delay
//! codes — must match the frozen text exactly. `GOLDEN_REGEN=1` rewrites
//! the snapshot instead of comparing.

use std::fmt::Write as _;
use std::path::Path;
use wavemin::prelude::Outcome;

/// Prefix of the numerically-compared peak line.
pub const PEAK_PREFIX: &str = "peak_after_ma = ";

/// Stable textual form of an outcome: the peak (full precision) and the
/// complete assignment (BTreeMaps iterate in node order, so the listing
/// is deterministic by construction).
#[must_use]
pub fn render_outcome(out: &Outcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{PEAK_PREFIX}{:.17e}", out.peak_after.value());
    let _ = writeln!(s, "assignment:");
    for (node, cell) in &out.assignment.cells {
        let _ = writeln!(s, "{}={}", node.0, cell);
    }
    for (mode, codes) in out.assignment.delay_codes.iter().enumerate() {
        let _ = writeln!(s, "delay_codes[{mode}]:");
        for (node, code) in codes {
            let _ = writeln!(s, "{}={:.17e}", node.0, code.value());
        }
    }
    s
}

fn peak_of(name: &str, snapshot: &str) -> f64 {
    let line = snapshot
        .lines()
        .find(|l| l.starts_with(PEAK_PREFIX))
        .unwrap_or_else(|| panic!("{name}: snapshot has no '{PEAK_PREFIX}' line"));
    line[PEAK_PREFIX.len()..]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{name}: unparsable peak line: {e}"))
}

/// Compares `got` against the snapshot at `dir/name.txt`, or rewrites it
/// when `GOLDEN_REGEN=1` is set.
///
/// # Panics
///
/// Panics on a mismatch, a missing snapshot (naming the regen command),
/// or an I/O failure while regenerating.
pub fn check_snapshot(dir: &Path, name: &str, got: &str) {
    let path = dir.join(format!("{name}.txt"));
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(dir).expect("create golden dir");
        std::fs::write(&path, got).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with GOLDEN_REGEN=1",
            path.display()
        )
    });
    let got_peak = peak_of(name, got);
    let want_peak = peak_of(name, &want);
    assert!(
        (got_peak - want_peak).abs() <= 1e-9,
        "{name}: peak {got_peak} differs from golden {want_peak}"
    );
    let tail = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with(PEAK_PREFIX))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        tail(got),
        tail(&want),
        "{name}: output diverged from the golden snapshot"
    );
}
