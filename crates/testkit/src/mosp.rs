//! Shared MOSP benchmark fixtures: the layered WaveMin-shaped graph used
//! by both the criterion benches (`benches/mosp_scaling.rs`) and the
//! `bench_mosp` JSON emitter, plus a small timing helper for the emitter.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};
use wavemin_mosp::{MospGraph, VertexId};

/// Builds a WaveMin-shaped layered graph: `rows` sinks × `cols` candidate
/// cells with `dims`-dimensional weights. Every candidate's full fan-in
/// shares one weight vector, so the arena interns it once per (row, col).
///
/// # Panics
///
/// Panics when an arc is rejected (cannot happen for the generated
/// finite, non-negative weights).
#[must_use]
#[allow(clippy::expect_used)]
pub fn layered(
    rows: usize,
    cols: usize,
    dims: usize,
    seed: u64,
) -> (MospGraph, VertexId, VertexId) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = MospGraph::new(dims);
    let src = g.add_vertex();
    let mut prev = vec![src];
    for _ in 0..rows {
        let mut row = Vec::new();
        for _ in 0..cols {
            let v = g.add_vertex();
            let w: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..100.0)).collect();
            for &u in &prev {
                g.add_arc_slice(u, v, &w)
                    .expect("generated weights are valid");
            }
            row.push(v);
        }
        prev = row;
    }
    let dest = g.add_vertex();
    let zero = vec![0.0; dims];
    for &u in &prev {
        g.add_arc_slice(u, dest, &zero)
            .expect("zero weights are valid");
    }
    (g, src, dest)
}

/// Median wall-clock time of `f` over `batches` timed batches, each at
/// least `budget / batches` long — the same scheme as the vendored
/// criterion stand-in, but returning the number instead of printing it.
pub fn median_secs<O, F: FnMut() -> O>(mut f: F, batches: usize, budget: Duration) -> f64 {
    let batches = batches.max(1);
    std::hint::black_box(f()); // warmup
    let per_batch = budget / u32::try_from(batches).unwrap_or(1);
    let mut samples: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() >= per_batch {
                break;
            }
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_builds_the_expected_shape() {
        let (g, src, dest) = layered(3, 4, 8, 1);
        // src + 3 rows × 4 cols + dest.
        assert_eq!(g.vertex_count(), 14);
        assert_eq!(g.out_degree(src), 4);
        assert_eq!(g.out_degree(dest), 0);
        // Fan-in arcs share interned weights: one unique vector per
        // (row, col) plus the zero vector into dest.
        assert_eq!(g.unique_weight_count(), 3 * 4 + 1);
    }

    #[test]
    fn median_secs_measures_something_positive() {
        let t = median_secs(
            || std::hint::black_box((0..100).sum::<u64>()),
            3,
            Duration::from_millis(5),
        );
        assert!(t > 0.0 && t < 1.0);
    }
}
