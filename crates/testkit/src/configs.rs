//! Shared [`WaveMinConfig`] presets.
//!
//! The conformance and session suites used to each carry a private copy
//! of these; a drift between copies silently weakened whichever suite
//! fell behind. One definition here keeps the claims aligned.

use wavemin::prelude::WaveMinConfig;
use wavemin_cells::units::{Microns, Picoseconds};

/// Small quick-solve preset used by the session/zone-cache suites:
/// 16 samples, metrics collected, at most 8 feasible intervals.
#[must_use]
pub fn small_session() -> WaveMinConfig {
    let mut cfg = WaveMinConfig::default()
        .with_sample_count(16)
        .with_metrics(true);
    cfg.max_intervals = Some(8);
    cfg
}

/// Shared base of the exhaustive-conformance families: two-cell polarity
/// problem (BUF_X8 / INV_X8), one zone, generous 150 ps skew bound.
#[must_use]
pub fn polarity_base() -> WaveMinConfig {
    let mut cfg = WaveMinConfig::default().with_skew_bound(Picoseconds::new(150.0));
    cfg.assignment_cells = vec!["BUF_X8".to_owned(), "INV_X8".to_owned()];
    cfg.zone_pitch = Microns::new(100_000.0);
    cfg.max_intervals = None;
    cfg
}

/// The strict conformance family: dense sampling, full window — the
/// exact solver must reproduce the exhaustive optimum bit-for-bit.
#[must_use]
pub fn polarity_strict() -> WaveMinConfig {
    let mut cfg = polarity_base().with_sample_count(1024);
    cfg.window_margin = 1.0;
    cfg
}

/// The hard conformance family: default margin, coarse sampling — every
/// solver is held to a worst-case ratio instead of equality.
#[must_use]
pub fn polarity_hard() -> WaveMinConfig {
    polarity_base().with_sample_count(128)
}
