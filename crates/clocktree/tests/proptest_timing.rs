//! Property-based tests for clock tree synthesis and timing analysis.

use proptest::prelude::*;
use wavemin_cells::units::{Femtofarads, Picoseconds, Volts};
use wavemin_cells::{CellLibrary, Characterizer};
use wavemin_clocktree::prelude::*;

fn arb_sinks() -> impl Strategy<Value = Vec<(Point, Femtofarads)>> {
    proptest::collection::vec((0.0..250.0f64, 0.0..250.0f64, 3.0..9.0f64), 2..24).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, c)| (Point::new(x, y), Femtofarads::new(c)))
            .collect()
    })
}

fn context() -> (CellLibrary, Characterizer) {
    (CellLibrary::nangate45(), Characterizer::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_always_yields_valid_balanced_trees(sinks in arb_sinks()) {
        let (lib, chr) = context();
        let synth = Synthesizer::new(&lib, &chr, SynthesisOptions::default());
        let tree = synth.synthesize(&sinks).unwrap();
        prop_assert_eq!(tree.validate(|c| lib.get(c).is_some()), Ok(()));
        prop_assert_eq!(tree.leaves().len(), sinks.len());
        let skew = synth.measure_skew(&tree).unwrap();
        prop_assert!(skew.value() < 1.0, "skew {} too large", skew);
    }

    #[test]
    fn arrivals_are_monotone_down_every_path(sinks in arb_sinks()) {
        let (lib, chr) = context();
        let synth = Synthesizer::new(&lib, &chr, SynthesisOptions::default());
        let tree = synth.synthesize(&sinks).unwrap();
        let timing = Timing::analyze(
            &tree, &lib, &chr, WireModel::default(),
            &SupplyAssignment::Uniform(Volts::new(1.1)), None,
        ).unwrap();
        for (id, node) in tree.iter() {
            prop_assert!(timing.output_arrival[id.0] >= timing.input_arrival[id.0]);
            if let Some(p) = node.parent() {
                prop_assert!(
                    timing.input_arrival[id.0].value()
                        >= timing.output_arrival[p.0].value() - 1e-9
                );
            }
        }
    }

    #[test]
    fn lower_supply_never_speeds_anything_up(sinks in arb_sinks()) {
        let (lib, chr) = context();
        let synth = Synthesizer::new(&lib, &chr, SynthesisOptions::default());
        let tree = synth.synthesize(&sinks).unwrap();
        let hi = Timing::analyze(
            &tree, &lib, &chr, WireModel::default(),
            &SupplyAssignment::Uniform(Volts::new(1.1)), None,
        ).unwrap();
        let lo = Timing::analyze(
            &tree, &lib, &chr, WireModel::default(),
            &SupplyAssignment::Uniform(Volts::new(0.9)), None,
        ).unwrap();
        for id in tree.ids() {
            prop_assert!(lo.output_arrival[id.0] >= hi.output_arrival[id.0]);
        }
    }

    #[test]
    fn extra_delay_shifts_exactly_one_subtree(sinks in arb_sinks(), extra in 1.0..40.0f64) {
        let (lib, chr) = context();
        let synth = Synthesizer::new(&lib, &chr, SynthesisOptions::default());
        let tree = synth.synthesize(&sinks).unwrap();
        let leaf = tree.leaves()[0];
        let supply = SupplyAssignment::Uniform(Volts::new(1.1));
        let base = Timing::analyze(&tree, &lib, &chr, WireModel::default(), &supply, None).unwrap();
        let mut adj = wavemin_clocktree::timing::TimingAdjust::identity();
        adj.set_extra_delay(leaf, Picoseconds::new(extra));
        let shifted =
            Timing::analyze(&tree, &lib, &chr, WireModel::default(), &supply, Some(&adj)).unwrap();
        for id in tree.leaves() {
            let delta = (shifted.output_arrival[id.0] - base.output_arrival[id.0]).value();
            if id == leaf {
                prop_assert!((delta - extra).abs() < 1e-9);
            } else {
                prop_assert!(delta.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn timing_is_invariant_under_fanout_order(sinks in arb_sinks()) {
        let (lib, chr) = context();
        let synth = Synthesizer::new(&lib, &chr, SynthesisOptions::default());
        let tree = synth.synthesize(&sinks).unwrap();
        let mut canon = tree.clone();
        canon.canonicalize();
        let supply = SupplyAssignment::Uniform(Volts::new(1.1));
        let a = Timing::analyze(&tree, &lib, &chr, WireModel::default(), &supply, None).unwrap();
        let b = Timing::analyze(&canon, &lib, &chr, WireModel::default(), &supply, None).unwrap();
        for id in tree.ids() {
            prop_assert!((a.output_arrival[id.0] - b.output_arrival[id.0]).abs().value() < 1e-9);
            prop_assert!((a.load[id.0] - b.load[id.0]).abs().value() < 1e-9);
        }
    }

    #[test]
    fn tree_io_roundtrip_preserves_timing(sinks in arb_sinks()) {
        let (lib, chr) = context();
        let synth = Synthesizer::new(&lib, &chr, SynthesisOptions::default());
        let tree = synth.synthesize(&sinks).unwrap();
        let text = wavemin_clocktree::io::write_tree(&tree);
        let back = wavemin_clocktree::io::read_tree(&text).unwrap();
        let supply = SupplyAssignment::Uniform(Volts::new(1.1));
        let a = Timing::analyze(&tree, &lib, &chr, WireModel::default(), &supply, None).unwrap();
        let b = Timing::analyze(&back, &lib, &chr, WireModel::default(), &supply, None).unwrap();
        prop_assert!((a.skew(&tree) - b.skew(&back)).abs().value() < 1e-9);
    }

    #[test]
    fn zone_partition_is_exact_and_disjoint(sinks in arb_sinks(), pitch in 20.0..120.0f64) {
        let (lib, chr) = context();
        let synth = Synthesizer::new(&lib, &chr, SynthesisOptions::default());
        let tree = synth.synthesize(&sinks).unwrap();
        let grid = ZoneGrid::partition(&tree, wavemin_cells::units::Microns::new(pitch));
        let mut seen = std::collections::HashSet::new();
        for z in grid.zones() {
            for &s in &z.sinks {
                prop_assert!(seen.insert(s), "sink in two zones");
                prop_assert!(z.rect(grid.pitch()).contains(tree.node(s).location));
            }
        }
        prop_assert_eq!(seen.len(), tree.leaves().len());
    }

    #[test]
    fn variation_multipliers_shift_skew_boundedly(sinks in arb_sinks(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let (lib, chr) = context();
        let synth = Synthesizer::new(&lib, &chr, SynthesisOptions::default());
        let tree = synth.synthesize(&sinks).unwrap();
        let model = wavemin_clocktree::variation::VariationModel::default();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let v = model.sample(&tree, &mut rng);
        let supply = SupplyAssignment::Uniform(Volts::new(1.1));
        let varied = Timing::analyze(
            &tree, &lib, &chr, WireModel::default(), &supply, Some(&v.timing),
        ).unwrap();
        // 5 % sigma, clamped to ±50 %: skew stays below half the total
        // insertion delay.
        let max_arrival = tree
            .leaves()
            .iter()
            .map(|l| varied.output_arrival[l.0].value())
            .fold(0.0f64, f64::max);
        prop_assert!(varied.skew(&tree).value() <= 0.5 * max_arrival);
    }
}
