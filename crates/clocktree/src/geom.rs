//! Planar geometry for cell placement.

use serde::{Deserialize, Serialize};
use std::fmt;
use wavemin_cells::units::Microns;

/// A placement location in microns.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Microns,
    /// Vertical coordinate.
    pub y: Microns,
}

impl Point {
    /// Creates a point from raw micron values.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self {
            x: Microns::new(x),
            y: Microns::new(y),
        }
    }

    /// Manhattan (rectilinear) distance — the routed wirelength metric.
    ///
    /// ```
    /// use wavemin_clocktree::Point;
    /// let d = Point::new(0.0, 0.0).manhattan(Point::new(3.0, 4.0));
    /// assert_eq!(d.value(), 7.0);
    /// ```
    #[must_use]
    pub fn manhattan(&self, other: Point) -> Microns {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance (used only for clustering heuristics).
    #[must_use]
    pub fn euclidean(&self, other: Point) -> Microns {
        Microns::new((self.x - other.x).value().hypot((self.y - other.y).value()))
    }

    /// The midpoint of two points.
    #[must_use]
    pub fn midpoint(&self, other: Point) -> Point {
        Point {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
        }
    }

    /// The centroid of a set of points.
    ///
    /// Returns the origin for an empty set.
    #[must_use]
    pub fn centroid<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Point {
        let mut n = 0usize;
        let (mut sx, mut sy) = (0.0, 0.0);
        for p in points {
            sx += p.x.value();
            sy += p.y.value();
            n += 1;
        }
        if n == 0 {
            Point::default()
        } else {
            Point::new(sx / n as f64, sy / n as f64)
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x.value(), self.y.value())
    }
}

/// An axis-aligned rectangle in microns.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle; the corners are normalized so that
    /// `min <= max` componentwise.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: Point {
                x: a.x.min(b.x),
                y: a.y.min(b.y),
            },
            max: Point {
                x: a.x.max(b.x),
                y: a.y.max(b.y),
            },
        }
    }

    /// A square die with lower-left at the origin.
    #[must_use]
    pub fn die(side: Microns) -> Self {
        Self::new(Point::default(), Point { x: side, y: side })
    }

    /// `true` when the point lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The smallest rectangle covering a set of points (origin-sized for an
    /// empty set).
    #[must_use]
    pub fn bounding<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Rect {
        let mut iter = points.into_iter();
        let Some(first) = iter.next() else {
            return Rect::default();
        };
        let mut r = Rect::new(*first, *first);
        for p in iter {
            r.min.x = r.min.x.min(p.x);
            r.min.y = r.min.y.min(p.y);
            r.max.x = r.max.x.max(p.x);
            r.max.y = r.max.y.max(p.y);
        }
        r
    }

    /// Width of the rectangle.
    #[must_use]
    pub fn width(&self) -> Microns {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    #[must_use]
    pub fn height(&self) -> Microns {
        self.max.y - self.min.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_and_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.manhattan(b).value(), 7.0);
        assert_eq!(a.euclidean(b).value(), 5.0);
        assert_eq!(a.manhattan(a).value(), 0.0);
    }

    #[test]
    fn midpoint_and_centroid() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 8.0);
        let m = a.midpoint(b);
        assert_eq!((m.x.value(), m.y.value()), (2.0, 4.0));
        let pts = [a, b, Point::new(2.0, 4.0)];
        let c = Point::centroid(&pts);
        assert_eq!((c.x.value(), c.y.value()), (2.0, 4.0));
        assert_eq!(Point::centroid([].iter()), Point::default());
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(r.min.x.value(), 1.0);
        assert_eq!(r.max.x.value(), 5.0);
        assert_eq!(r.width().value(), 4.0);
        assert_eq!(r.height().value(), 4.0);
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::die(Microns::new(10.0));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
    }

    #[test]
    fn bounding_box_covers_points() {
        let pts = [
            Point::new(3.0, 7.0),
            Point::new(-1.0, 2.0),
            Point::new(5.0, 4.0),
        ];
        let r = Rect::bounding(&pts);
        for p in &pts {
            assert!(r.contains(*p));
        }
        assert_eq!(r.min.x.value(), -1.0);
        assert_eq!(r.max.y.value(), 7.0);
    }
}
