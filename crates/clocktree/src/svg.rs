//! SVG rendering of clock trees.
//!
//! Renders a placed tree as a standalone SVG document: L-shaped routes,
//! node markers colored by role and polarity (buffers vs inverters — the
//! picture that makes a polarity assignment legible at a glance), and an
//! optional legend. Pure string generation, no graphics dependencies.

use crate::tree::{ClockTree, NodeKind};
use serde::{Deserialize, Serialize};
use wavemin_cells::{CellLibrary, Polarity};

/// Rendering options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvgOptions {
    /// Pixels per micron.
    pub scale: f64,
    /// Canvas margin in pixels.
    pub margin: f64,
    /// Node marker radius in pixels.
    pub node_radius: f64,
    /// Draw the role/polarity legend.
    pub legend: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            scale: 2.0,
            margin: 24.0,
            node_radius: 4.0,
            legend: true,
        }
    }
}

/// Colors: positive-polarity leaves, negative-polarity leaves, internals,
/// the source, wires.
const POSITIVE: &str = "#2563eb";
const NEGATIVE: &str = "#dc2626";
const INTERNAL: &str = "#6b7280";
const SOURCE: &str = "#059669";
const WIRE: &str = "#9ca3af";

/// Renders the tree as a standalone SVG document.
///
/// Leaf markers are colored by the polarity their cell has in `lib`
/// (unknown cells fall back to the internal color).
#[must_use]
pub fn render(tree: &ClockTree, lib: &CellLibrary, options: &SvgOptions) -> String {
    let (min_x, min_y, max_x, max_y) = bounds(tree);
    let scale = options.scale;
    let margin = options.margin;
    let width = (max_x - min_x) * scale + 2.0 * margin;
    let height = (max_y - min_y) * scale + 2.0 * margin + if options.legend { 28.0 } else { 0.0 };
    let px = |x: f64| (x - min_x) * scale + margin;
    // SVG's y axis grows downward; flip so the die reads naturally.
    let py = |y: f64| (max_y - y) * scale + margin;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\">\n"
    ));
    svg.push_str("  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");

    // Wires first (under the markers): L-shaped horizontal-then-vertical.
    for (_, node) in tree.iter() {
        let Some(parent) = node.parent() else {
            continue;
        };
        let p = tree.node(parent).location;
        let c = node.location;
        svg.push_str(&format!(
            "  <path d=\"M {:.1} {:.1} H {:.1} V {:.1}\" stroke=\"{WIRE}\" \
             stroke-width=\"1\" fill=\"none\"/>\n",
            px(p.x.value()),
            py(p.y.value()),
            px(c.x.value()),
            py(c.y.value()),
        ));
    }

    // Markers.
    for (_, node) in tree.iter() {
        let (color, r) = match node.kind {
            NodeKind::Source => (SOURCE, options.node_radius * 1.6),
            NodeKind::Internal => (INTERNAL, options.node_radius),
            NodeKind::Leaf => {
                let color = lib
                    .get(&node.cell)
                    .map_or(INTERNAL, |c| match c.polarity() {
                        Polarity::Positive => POSITIVE,
                        Polarity::Negative => NEGATIVE,
                    });
                (color, options.node_radius)
            }
        };
        svg.push_str(&format!(
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{r:.1}\" fill=\"{color}\">\
             <title>{}</title></circle>\n",
            px(node.location.x.value()),
            py(node.location.y.value()),
            node.cell,
        ));
    }

    if options.legend {
        let y = height - 10.0;
        let mut x = margin;
        for (color, label) in [
            (SOURCE, "source"),
            (INTERNAL, "internal"),
            (POSITIVE, "leaf +"),
            (NEGATIVE, "leaf -"),
        ] {
            svg.push_str(&format!(
                "  <circle cx=\"{x:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"{color}\"/>\n\
                 \x20 <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" \
                 font-family=\"sans-serif\" fill=\"#111\">{label}</text>\n",
                y - 4.0,
                x + 8.0,
                y,
            ));
            x += 70.0;
        }
    }
    svg.push_str("</svg>\n");
    svg
}

fn bounds(tree: &ClockTree) -> (f64, f64, f64, f64) {
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for (_, node) in tree.iter() {
        min_x = min_x.min(node.location.x.value());
        min_y = min_y.min(node.location.y.value());
        max_x = max_x.max(node.location.x.value());
        max_y = max_y.max(node.location.y.value());
    }
    if !min_x.is_finite() {
        (0.0, 0.0, 1.0, 1.0)
    } else {
        (min_x, min_y, max_x.max(min_x + 1.0), max_y.max(min_y + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;

    fn rendered() -> (ClockTree, String) {
        let tree = Benchmark::s15850().synthesize(1);
        let lib = CellLibrary::nangate45();
        let svg = render(&tree, &lib, &SvgOptions::default());
        (tree, svg)
    }

    #[test]
    fn produces_wellformed_svg_skeleton() {
        let (_, svg) = rendered();
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("xmlns=\"http://www.w3.org/2000/svg\""));
    }

    #[test]
    fn draws_every_node_and_wire() {
        let (tree, svg) = rendered();
        let circles = svg.matches("<circle").count();
        let legend_circles = 4;
        assert_eq!(circles, tree.len() + legend_circles);
        let paths = svg.matches("<path").count();
        assert_eq!(paths, tree.len() - 1, "one wire per non-root node");
    }

    #[test]
    fn polarity_colors_follow_cells() {
        let mut tree = Benchmark::s15850().synthesize(1);
        let lib = CellLibrary::nangate45();
        let before = render(&tree, &lib, &SvgOptions::default());
        assert!(
            !before.contains(&NEGATIVE_MARKER()),
            "all-buffer tree has no red leaves"
        );
        let leaf = tree.leaves()[0];
        tree.set_cell(leaf, "INV_X8");
        let after = render(&tree, &lib, &SvgOptions::default());
        assert!(after.contains(&NEGATIVE_MARKER()));
    }

    #[allow(non_snake_case)]
    fn NEGATIVE_MARKER() -> String {
        format!("fill=\"{NEGATIVE}\"><title>INV")
    }

    #[test]
    fn legend_is_optional() {
        let tree = Benchmark::s15850().synthesize(1);
        let lib = CellLibrary::nangate45();
        let options = SvgOptions {
            legend: false,
            ..SvgOptions::default()
        };
        let svg = render(&tree, &lib, &options);
        assert!(!svg.contains("<text"));
        assert_eq!(svg.matches("<circle").count(), tree.len());
    }

    #[test]
    fn titles_carry_cell_names() {
        let (_, svg) = rendered();
        assert!(svg.contains("<title>BUF_X8</title>"));
    }
}
