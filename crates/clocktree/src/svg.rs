//! SVG rendering of clock trees.
//!
//! Renders a placed tree as a standalone SVG document: L-shaped routes,
//! node markers colored by role and polarity (buffers vs inverters — the
//! picture that makes a polarity assignment legible at a glance), and an
//! optional legend. Pure string generation, no graphics dependencies.

use crate::tree::{ClockTree, NodeKind};
use serde::{Deserialize, Serialize};
use wavemin_cells::{CellLibrary, Polarity};

/// Rendering options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvgOptions {
    /// Pixels per micron.
    pub scale: f64,
    /// Canvas margin in pixels.
    pub margin: f64,
    /// Node marker radius in pixels.
    pub node_radius: f64,
    /// Draw the role/polarity legend.
    pub legend: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            scale: 2.0,
            margin: 24.0,
            node_radius: 4.0,
            legend: true,
        }
    }
}

/// Colors: positive-polarity leaves, negative-polarity leaves, internals,
/// the source, wires.
const POSITIVE: &str = "#2563eb";
const NEGATIVE: &str = "#dc2626";
const INTERNAL: &str = "#6b7280";
const SOURCE: &str = "#059669";
const WIRE: &str = "#9ca3af";

/// Renders the tree as a standalone SVG document.
///
/// Leaf markers are colored by the polarity their cell has in `lib`
/// (unknown cells fall back to the internal color).
#[must_use]
pub fn render(tree: &ClockTree, lib: &CellLibrary, options: &SvgOptions) -> String {
    let (min_x, min_y, max_x, max_y) = bounds(tree);
    let scale = options.scale;
    let margin = options.margin;
    let width = (max_x - min_x) * scale + 2.0 * margin;
    let height = (max_y - min_y) * scale + 2.0 * margin + if options.legend { 28.0 } else { 0.0 };
    let px = |x: f64| (x - min_x) * scale + margin;
    // SVG's y axis grows downward; flip so the die reads naturally.
    let py = |y: f64| (max_y - y) * scale + margin;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\">\n"
    ));
    svg.push_str("  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");

    // Wires first (under the markers): L-shaped horizontal-then-vertical.
    for (_, node) in tree.iter() {
        let Some(parent) = node.parent() else {
            continue;
        };
        let p = tree.node(parent).location;
        let c = node.location;
        svg.push_str(&format!(
            "  <path d=\"M {:.1} {:.1} H {:.1} V {:.1}\" stroke=\"{WIRE}\" \
             stroke-width=\"1\" fill=\"none\"/>\n",
            px(p.x.value()),
            py(p.y.value()),
            px(c.x.value()),
            py(c.y.value()),
        ));
    }

    // Markers.
    for (_, node) in tree.iter() {
        let (color, r) = match node.kind {
            NodeKind::Source => (SOURCE, options.node_radius * 1.6),
            NodeKind::Internal => (INTERNAL, options.node_radius),
            NodeKind::Leaf => {
                let color = lib
                    .get(&node.cell)
                    .map_or(INTERNAL, |c| match c.polarity() {
                        Polarity::Positive => POSITIVE,
                        Polarity::Negative => NEGATIVE,
                    });
                (color, options.node_radius)
            }
        };
        svg.push_str(&format!(
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{r:.1}\" fill=\"{color}\">\
             <title>{}</title></circle>\n",
            px(node.location.x.value()),
            py(node.location.y.value()),
            node.cell,
        ));
    }

    if options.legend {
        let y = height - 10.0;
        let mut x = margin;
        for (color, label) in [
            (SOURCE, "source"),
            (INTERNAL, "internal"),
            (POSITIVE, "leaf +"),
            (NEGATIVE, "leaf -"),
        ] {
            svg.push_str(&format!(
                "  <circle cx=\"{x:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"{color}\"/>\n\
                 \x20 <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" \
                 font-family=\"sans-serif\" fill=\"#111\">{label}</text>\n",
                y - 4.0,
                x + 8.0,
                y,
            ));
            x += 70.0;
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// One labeled polyline in a [`render_waveforms`] chart. Plain data, so
/// callers in any crate can build series without new dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveSeries {
    /// Legend label.
    pub label: String,
    /// Stroke color (`""` picks from the built-in palette by index).
    pub color: String,
    /// `(x, y)` samples in data units, in ascending-x order.
    pub points: Vec<(f64, f64)>,
}

/// Options for [`render_waveforms`].
#[derive(Debug, Clone, PartialEq)]
pub struct WaveChartOptions {
    /// Canvas width in pixels.
    pub width: f64,
    /// Canvas height in pixels.
    pub height: f64,
    /// Margin around the plot area in pixels.
    pub margin: f64,
    /// An `(x, y)` instant to mark with a circle and a vertical guide
    /// (the peak-attribution argmax, typically).
    pub marker: Option<(f64, f64)>,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
}

impl Default for WaveChartOptions {
    fn default() -> Self {
        Self {
            width: 720.0,
            height: 360.0,
            margin: 48.0,
            marker: None,
            x_label: "time (ps)".to_owned(),
            y_label: "current (mA)".to_owned(),
        }
    }
}

/// Fallback stroke palette for series without an explicit color.
const PALETTE: [&str; 6] = [
    "#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2",
];

/// Renders sampled waveforms as an SVG line chart: one polyline per
/// series, a shared linear scale over all points, an optional argmax
/// marker, and a legend. Pure string generation like [`render`].
///
/// Series with no points are skipped (but keep their palette slot so
/// colors stay stable under filtering).
#[must_use]
pub fn render_waveforms(series: &[WaveSeries], options: &WaveChartOptions) -> String {
    let margin = options.margin;
    let width = options.width.max(2.0 * margin + 1.0);
    let height = options.height.max(2.0 * margin + 1.0);

    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = 0.0_f64;
    let mut max_y = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
    }
    if let Some((mx, my)) = options.marker {
        min_x = min_x.min(mx);
        max_x = max_x.max(mx);
        min_y = min_y.min(my);
        max_y = max_y.max(my);
    }
    if !min_x.is_finite() {
        min_x = 0.0;
        max_x = 1.0;
    }
    if !max_y.is_finite() {
        max_y = 1.0;
    }
    let span_x = (max_x - min_x).max(1e-12);
    let span_y = (max_y - min_y).max(1e-12);
    let px = |x: f64| margin + (x - min_x) / span_x * (width - 2.0 * margin);
    let py = |y: f64| height - margin - (y - min_y) / span_y * (height - 2.0 * margin);

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\">\n"
    ));
    svg.push_str("  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    // Axes.
    svg.push_str(&format!(
        "  <path d=\"M {m:.1} {m:.1} V {b:.1} H {r:.1}\" stroke=\"#111\" \
         stroke-width=\"1\" fill=\"none\"/>\n",
        m = margin,
        b = height - margin,
        r = width - margin,
    ));
    svg.push_str(&format!(
        "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" font-family=\"sans-serif\" \
         fill=\"#111\" text-anchor=\"middle\">{}</text>\n",
        width / 2.0,
        height - margin / 4.0,
        xml_escape(&options.x_label),
    ));
    svg.push_str(&format!(
        "  <text x=\"{x:.1}\" y=\"{y:.1}\" font-size=\"11\" font-family=\"sans-serif\" \
         fill=\"#111\" text-anchor=\"middle\" transform=\"rotate(-90 {x:.1} {y:.1})\">{label}</text>\n",
        x = margin / 3.0,
        y = height / 2.0,
        label = xml_escape(&options.y_label),
    ));

    for (i, s) in series.iter().enumerate() {
        if s.points.is_empty() {
            continue;
        }
        let color: &str = if s.color.is_empty() {
            PALETTE[i % PALETTE.len()]
        } else {
            &s.color
        };
        let mut d = String::new();
        for &(x, y) in &s.points {
            if !d.is_empty() {
                d.push(' ');
            }
            d.push_str(&format!("{:.1},{:.1}", px(x), py(y)));
        }
        svg.push_str(&format!(
            "  <polyline points=\"{d}\" stroke=\"{color}\" stroke-width=\"1.5\" \
             fill=\"none\"><title>{}</title></polyline>\n",
            xml_escape(&s.label),
        ));
        // Legend entry.
        let ly = margin / 2.0 + i as f64 * 14.0;
        svg.push_str(&format!(
            "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"10\" height=\"3\" fill=\"{color}\"/>\n\
             \x20 <text x=\"{:.1}\" y=\"{ly:.1}\" font-size=\"10\" \
             font-family=\"sans-serif\" fill=\"#111\" dominant-baseline=\"middle\">{}</text>\n",
            width - margin - 130.0,
            ly - 1.5,
            width - margin - 115.0,
            xml_escape(&s.label),
        ));
    }

    if let Some((mx, my)) = options.marker {
        svg.push_str(&format!(
            "  <path d=\"M {x:.1} {t:.1} V {b:.1}\" stroke=\"#9ca3af\" stroke-width=\"1\" \
             stroke-dasharray=\"4 3\" fill=\"none\"/>\n\
             \x20 <circle cx=\"{x:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"none\" stroke=\"#111\" \
             stroke-width=\"1.5\"><title>peak</title></circle>\n",
            py(my),
            x = px(mx),
            t = margin,
            b = height - margin,
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Minimal XML text escaping for labels.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn bounds(tree: &ClockTree) -> (f64, f64, f64, f64) {
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for (_, node) in tree.iter() {
        min_x = min_x.min(node.location.x.value());
        min_y = min_y.min(node.location.y.value());
        max_x = max_x.max(node.location.x.value());
        max_y = max_y.max(node.location.y.value());
    }
    if !min_x.is_finite() {
        (0.0, 0.0, 1.0, 1.0)
    } else {
        (min_x, min_y, max_x.max(min_x + 1.0), max_y.max(min_y + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;

    fn rendered() -> (ClockTree, String) {
        let tree = Benchmark::s15850().synthesize(1);
        let lib = CellLibrary::nangate45();
        let svg = render(&tree, &lib, &SvgOptions::default());
        (tree, svg)
    }

    #[test]
    fn produces_wellformed_svg_skeleton() {
        let (_, svg) = rendered();
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("xmlns=\"http://www.w3.org/2000/svg\""));
    }

    #[test]
    fn draws_every_node_and_wire() {
        let (tree, svg) = rendered();
        let circles = svg.matches("<circle").count();
        let legend_circles = 4;
        assert_eq!(circles, tree.len() + legend_circles);
        let paths = svg.matches("<path").count();
        assert_eq!(paths, tree.len() - 1, "one wire per non-root node");
    }

    #[test]
    fn polarity_colors_follow_cells() {
        let mut tree = Benchmark::s15850().synthesize(1);
        let lib = CellLibrary::nangate45();
        let before = render(&tree, &lib, &SvgOptions::default());
        assert!(
            !before.contains(&NEGATIVE_MARKER()),
            "all-buffer tree has no red leaves"
        );
        let leaf = tree.leaves()[0];
        tree.set_cell(leaf, "INV_X8");
        let after = render(&tree, &lib, &SvgOptions::default());
        assert!(after.contains(&NEGATIVE_MARKER()));
    }

    #[allow(non_snake_case)]
    fn NEGATIVE_MARKER() -> String {
        format!("fill=\"{NEGATIVE}\"><title>INV")
    }

    #[test]
    fn legend_is_optional() {
        let tree = Benchmark::s15850().synthesize(1);
        let lib = CellLibrary::nangate45();
        let options = SvgOptions {
            legend: false,
            ..SvgOptions::default()
        };
        let svg = render(&tree, &lib, &options);
        assert!(!svg.contains("<text"));
        assert_eq!(svg.matches("<circle").count(), tree.len());
    }

    #[test]
    fn titles_carry_cell_names() {
        let (_, svg) = rendered();
        assert!(svg.contains("<title>BUF_X8</title>"));
    }

    fn wave(label: &str, points: Vec<(f64, f64)>) -> WaveSeries {
        WaveSeries {
            label: label.to_owned(),
            color: String::new(),
            points,
        }
    }

    #[test]
    fn waveform_chart_draws_one_polyline_per_nonempty_series() {
        let series = vec![
            wave("total", vec![(0.0, 0.0), (10.0, 5.0), (20.0, 1.0)]),
            wave("sink 3", vec![(0.0, 0.0), (10.0, 3.0), (20.0, 0.5)]),
            wave("empty", Vec::new()),
        ];
        let svg = render_waveforms(&series, &WaveChartOptions::default());
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("<title>total</title>"));
        assert!(svg.contains("<title>sink 3</title>"));
    }

    #[test]
    fn waveform_chart_marks_the_peak_instant() {
        let series = vec![wave("total", vec![(0.0, 0.0), (10.0, 5.0), (20.0, 1.0)])];
        let with = render_waveforms(
            &series,
            &WaveChartOptions {
                marker: Some((10.0, 5.0)),
                ..WaveChartOptions::default()
            },
        );
        let without = render_waveforms(&series, &WaveChartOptions::default());
        assert!(with.contains("<title>peak</title>"));
        assert!(!without.contains("<title>peak</title>"));
        assert!(with.contains("stroke-dasharray"));
    }

    #[test]
    fn waveform_chart_survives_degenerate_input() {
        // No series, no points: still a well-formed document.
        let svg = render_waveforms(&[], &WaveChartOptions::default());
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One flat series at a single x: scales clamp, no NaN/inf output.
        let flat = render_waveforms(
            &[wave("flat", vec![(5.0, 0.0)])],
            &WaveChartOptions::default(),
        );
        assert!(!flat.contains("NaN"));
        assert!(!flat.contains("inf"));
    }

    #[test]
    fn waveform_chart_escapes_labels() {
        let svg = render_waveforms(
            &[wave("a<b&c", vec![(0.0, 1.0), (1.0, 2.0)])],
            &WaveChartOptions::default(),
        );
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b&c"));
    }
}
