//! A plain-text power-intent format (a UPF-flavoured miniature).
//!
//! Captures what multi-mode optimization needs: the voltage islands and
//! the per-mode supply of each island.
//!
//! ```text
//! # wavemin power intent v1
//! default 1.1
//! domain A1 0 0 100 200
//! domain A2 100 0 200 200
//! mode M1 1.1 1.1
//! mode M2 1.1 0.9
//! ```
//!
//! # Example
//!
//! ```
//! use wavemin_clocktree::{power_io, PowerDesign};
//! use wavemin_cells::units::Microns;
//!
//! let design = PowerDesign::random(Microns::new(200.0), 4, 2, 7);
//! let text = power_io::write_power(&design);
//! let back = power_io::read_power(&text)?;
//! assert_eq!(design, back);
//! # Ok::<(), power_io::PowerIoError>(())
//! ```

use crate::geom::{Point, Rect};
use crate::modes::{PowerDesign, PowerDomain, PowerMode};
use std::fmt;
use wavemin_cells::units::Volts;

/// Errors from reading the power-intent format.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerIoError {
    /// A line's keyword is unknown.
    UnknownKeyword {
        /// 1-based line number.
        line: usize,
        /// The keyword found.
        keyword: String,
    },
    /// A line has the wrong number of fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Raw value.
        value: String,
    },
    /// A mode's supply count differs from the domain count.
    ModeArity {
        /// 1-based line number.
        line: usize,
        /// Supplies listed.
        found: usize,
        /// Domains defined.
        domains: usize,
    },
    /// No `mode` lines were found.
    NoModes,
}

impl fmt::Display for PowerIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerIoError::UnknownKeyword { line, keyword } => {
                write!(f, "line {line}: unknown keyword '{keyword}'")
            }
            PowerIoError::BadFieldCount { line, found } => {
                write!(f, "line {line}: unexpected field count {found}")
            }
            PowerIoError::BadNumber { line, value } => {
                write!(f, "line {line}: cannot parse number '{value}'")
            }
            PowerIoError::ModeArity {
                line,
                found,
                domains,
            } => write!(
                f,
                "line {line}: mode lists {found} supplies but {domains} domains are defined"
            ),
            PowerIoError::NoModes => write!(f, "power intent defines no modes"),
        }
    }
}

impl std::error::Error for PowerIoError {}

/// Serializes a power design (lossless for [`read_power`]).
#[must_use]
pub fn write_power(design: &PowerDesign) -> String {
    let mut out = String::from("# wavemin power intent v1\n");
    // The default supply is recoverable from any uniform design; emit it
    // from the vdd at an unreachable point outside all domains.
    out.push_str(&format!(
        "default {}\n",
        design.vdd_at(Point::new(-1e18, -1e18), 0).value()
    ));
    for d in design.domains() {
        out.push_str(&format!(
            "domain {} {} {} {} {}\n",
            d.name,
            d.region.min.x.value(),
            d.region.min.y.value(),
            d.region.max.x.value(),
            d.region.max.y.value(),
        ));
    }
    for m in design.modes() {
        out.push_str(&format!("mode {}", m.name));
        for v in &m.vdd {
            out.push_str(&format!(" {}", v.value()));
        }
        out.push('\n');
    }
    out
}

/// Parses a power design written by [`write_power`].
///
/// # Errors
///
/// Returns a [`PowerIoError`] locating the first problem.
pub fn read_power(input: &str) -> Result<PowerDesign, PowerIoError> {
    let mut default_vdd = Volts::new(1.1);
    let mut domains: Vec<PowerDomain> = Vec::new();
    let mut modes: Vec<PowerMode> = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        let num = |raw: &str| -> Result<f64, PowerIoError> {
            raw.parse().map_err(|_| PowerIoError::BadNumber {
                line,
                value: raw.to_owned(),
            })
        };
        match fields[0] {
            "default" => {
                if fields.len() != 2 {
                    return Err(PowerIoError::BadFieldCount {
                        line,
                        found: fields.len(),
                    });
                }
                default_vdd = Volts::new(num(fields[1])?);
            }
            "domain" => {
                if fields.len() != 6 {
                    return Err(PowerIoError::BadFieldCount {
                        line,
                        found: fields.len(),
                    });
                }
                domains.push(PowerDomain {
                    name: fields[1].to_owned(),
                    region: Rect::new(
                        Point::new(num(fields[2])?, num(fields[3])?),
                        Point::new(num(fields[4])?, num(fields[5])?),
                    ),
                });
            }
            "mode" => {
                if fields.len() < 2 {
                    return Err(PowerIoError::BadFieldCount {
                        line,
                        found: fields.len(),
                    });
                }
                let vdd: Result<Vec<Volts>, _> =
                    fields[2..].iter().map(|f| num(f).map(Volts::new)).collect();
                let vdd = vdd?;
                if vdd.len() != domains.len() {
                    return Err(PowerIoError::ModeArity {
                        line,
                        found: vdd.len(),
                        domains: domains.len(),
                    });
                }
                modes.push(PowerMode {
                    name: fields[1].to_owned(),
                    vdd,
                });
            }
            other => {
                return Err(PowerIoError::UnknownKeyword {
                    line,
                    keyword: other.to_owned(),
                })
            }
        }
    }
    if modes.is_empty() {
        return Err(PowerIoError::NoModes);
    }
    Ok(PowerDesign::new(domains, modes, default_vdd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavemin_cells::units::Microns;

    #[test]
    fn roundtrip_random_design() {
        for seed in [1, 7, 42] {
            let design = PowerDesign::random(Microns::new(250.0), 5, 4, seed);
            let text = write_power(&design);
            let back = read_power(&text).unwrap();
            assert_eq!(design, back, "seed {seed}");
        }
    }

    #[test]
    fn roundtrip_uniform_design() {
        let design = PowerDesign::uniform(Volts::new(1.1));
        let back = read_power(&write_power(&design)).unwrap();
        assert_eq!(design, back);
    }

    #[test]
    fn parses_the_doc_example() {
        let text = "# c\ndefault 1.1\ndomain A1 0 0 100 200\ndomain A2 100 0 200 200\n\
                    mode M1 1.1 1.1\nmode M2 1.1 0.9\n";
        let d = read_power(text).unwrap();
        assert_eq!(d.domains().len(), 2);
        assert_eq!(d.mode_count(), 2);
        assert_eq!(d.vdd_at(Point::new(150.0, 50.0), 1), Volts::new(0.9));
        assert_eq!(d.vdd_at(Point::new(50.0, 50.0), 1), Volts::new(1.1));
    }

    #[test]
    fn errors_are_located() {
        assert!(matches!(
            read_power("flux A1\n").unwrap_err(),
            PowerIoError::UnknownKeyword { line: 1, .. }
        ));
        assert!(matches!(
            read_power("domain A1 0 0 100\nmode M1\n").unwrap_err(),
            PowerIoError::BadFieldCount { line: 1, .. }
        ));
        assert!(matches!(
            read_power("domain A1 0 0 x 200\n").unwrap_err(),
            PowerIoError::BadNumber { .. }
        ));
        assert!(matches!(
            read_power("domain A1 0 0 1 1\nmode M1 1.1 0.9\n").unwrap_err(),
            PowerIoError::ModeArity {
                found: 2,
                domains: 1,
                ..
            }
        ));
        assert_eq!(
            read_power("default 1.0\n").unwrap_err(),
            PowerIoError::NoModes
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hello\nmode M1\n\n";
        let d = read_power(text).unwrap();
        assert_eq!(d.mode_count(), 1);
        assert!(d.domains().is_empty());
    }
}
