//! Synthetic benchmark circuits.
//!
//! The paper evaluates on five ISCAS'89 circuits and two ISPD'09 CTS
//! contest benchmarks, synthesized with a commercial flow. We generate
//! synthetic designs whose **buffering-element counts match Table V
//! exactly** (`n` total nodes, `|L|` leaves) and whose sink density matches
//! the paper's reported zone occupancy (≈4.3 sinks per 50×50 µm zone for
//! ISCAS'89, ≈4.9 for ISPD'09, 7.1 for s35932). Placements are seeded and
//! reproducible.

use crate::geom::Point;
use crate::synthesis::{SynthesisOptions, Synthesizer};
use crate::tree::ClockTree;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wavemin_cells::units::Femtofarads;
use wavemin_cells::{CellLibrary, Characterizer};

/// A benchmark circuit description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Circuit name (e.g. `"s35932"`).
    pub name: String,
    /// Total buffering elements, the paper's `n` (leaves + non-leaves).
    pub total_nodes: usize,
    /// Leaf buffering elements, the paper's `|L|`.
    pub leaf_count: usize,
    /// Die side length in microns.
    pub die_side_um: u32,
    /// Clustering arity used during synthesis.
    pub arity: usize,
}

impl Benchmark {
    /// `s13207` — Table V: n = 58, |L| = 50.
    #[must_use]
    pub fn s13207() -> Self {
        Self::iscas("s13207", 58, 50)
    }

    /// `s15850` — Table V: n = 22, |L| = 19.
    #[must_use]
    pub fn s15850() -> Self {
        Self::iscas("s15850", 22, 19)
    }

    /// `s35932` — Table V: n = 323, |L| = 246 (denser: 7.1 sinks/zone).
    #[must_use]
    pub fn s35932() -> Self {
        let die = zone_grid_side(246, 7.1);
        Self::with_counts("s35932", 323, 246, die)
    }

    /// `s38417` — Table V: n = 304, |L| = 228.
    #[must_use]
    pub fn s38417() -> Self {
        Self::iscas("s38417", 304, 228)
    }

    /// `s38584` — Table V: n = 210, |L| = 169.
    #[must_use]
    pub fn s38584() -> Self {
        Self::iscas("s38584", 210, 169)
    }

    /// `ispd09f31` — Table V: n = 328, |L| = 111 (deep repeater chains).
    #[must_use]
    pub fn ispd09f31() -> Self {
        let die = zone_grid_side(111, 4.9);
        Self::with_counts("ispd09f31", 328, 111, die)
    }

    /// `ispd09f34` — Table V: n = 210, |L| = 69.
    #[must_use]
    pub fn ispd09f34() -> Self {
        let die = zone_grid_side(69, 4.9);
        Self::with_counts("ispd09f34", 210, 69, die)
    }

    /// All seven benchmark circuits of Table V, in paper order.
    #[must_use]
    pub fn all() -> Vec<Self> {
        vec![
            Self::s13207(),
            Self::s15850(),
            Self::s35932(),
            Self::s38417(),
            Self::s38584(),
            Self::ispd09f31(),
            Self::ispd09f34(),
        ]
    }

    /// A synthetic scale benchmark: `leaves` sinks at the ISCAS zone
    /// density (≈4.3 sinks per 50 µm zone), clustering arity 8, and a
    /// node budget equal to the cluster tree exactly — no repeater
    /// padding, whose longest-wire scan is O(n) *per repeater* and
    /// would dominate synthesis at 10⁵+ sinks.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    #[must_use]
    pub fn scale(name: impl Into<String>, leaves: usize) -> Self {
        assert!(leaves >= 1, "benchmark needs at least one sink");
        let arity = 8;
        Self {
            name: name.into(),
            total_nodes: leaves + cluster_internal_count(leaves, arity),
            leaf_count: leaves,
            die_side_um: zone_grid_side(leaves, 4.3),
            arity,
        }
    }

    /// A custom benchmark with explicit counts.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_count` is zero or exceeds `total_nodes - 1` (at
    /// least a source must exist).
    #[must_use]
    pub fn with_counts(
        name: impl Into<String>,
        total_nodes: usize,
        leaf_count: usize,
        die_side_um: u32,
    ) -> Self {
        assert!(leaf_count >= 1, "benchmark needs at least one sink");
        assert!(
            total_nodes > leaf_count,
            "total nodes must exceed leaf count (source + internals)"
        );
        let internal = total_nodes - leaf_count;
        // Pick the smallest arity whose cluster tree needs no more
        // internals than the target; repeaters make up any shortfall.
        let mut arity = 2;
        while arity < 16 && cluster_internal_count(leaf_count, arity) > internal {
            arity += 1;
        }
        Self {
            name: name.into(),
            total_nodes,
            leaf_count,
            die_side_um,
            arity,
        }
    }

    fn iscas(name: &str, total: usize, leaves: usize) -> Self {
        Self::with_counts(name, total, leaves, zone_grid_side(leaves, 4.3))
    }

    /// Generates the seeded sink placement: `leaf_count` sinks uniform in
    /// the die with FF loads in 3–9 fF.
    #[must_use]
    pub fn sinks(&self, seed: u64) -> Vec<(Point, Femtofarads)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ hash_name(&self.name));
        let side = self.die_side_um as f64;
        (0..self.leaf_count)
            .map(|_| {
                (
                    Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                    Femtofarads::new(rng.gen_range(3.0..9.0)),
                )
            })
            .collect()
    }

    /// Synthesizes the benchmark tree with the default library and
    /// characterizer, then pads with chain repeaters until the total node
    /// count matches `n` exactly.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails (the default library always contains the
    /// configured cells).
    // Convenience wrapper whose panic is the documented contract; the
    // fallible form is `synthesize_with`.
    #[allow(clippy::expect_used)]
    #[must_use]
    pub fn synthesize(&self, seed: u64) -> ClockTree {
        let lib = CellLibrary::nangate45();
        let chr = Characterizer::default();
        self.synthesize_with(&lib, &chr, seed)
            .expect("default library covers all synthesis cells")
    }

    /// Synthesizes with an explicit library and characterizer.
    ///
    /// # Errors
    ///
    /// Returns a timing error if a configured cell is missing from `lib`.
    pub fn synthesize_with(
        &self,
        lib: &CellLibrary,
        chr: &Characterizer,
        seed: u64,
    ) -> Result<ClockTree, crate::timing::TimingError> {
        let options = SynthesisOptions {
            arity: self.arity,
            ..SynthesisOptions::default()
        };
        self.synthesize_with_options(lib, chr, seed, options)
    }

    /// Synthesizes with explicit synthesis options (the options' `arity`
    /// is honored as given — set it to `self.arity` to match the node
    /// budget exactly).
    ///
    /// # Errors
    ///
    /// Returns a timing error if a configured cell is missing from `lib`.
    pub fn synthesize_with_options(
        &self,
        lib: &CellLibrary,
        chr: &Characterizer,
        seed: u64,
        options: SynthesisOptions,
    ) -> Result<ClockTree, crate::timing::TimingError> {
        let synth = Synthesizer::new(lib, chr, options);
        let mut tree = synth.synthesize(&self.sinks(seed))?;

        // Pad with chain repeaters on the longest wires until n matches.
        let had_repeaters = tree.len() < self.total_nodes;
        while tree.len() < self.total_nodes {
            let longest = tree.ids().filter(|&id| id != tree.root()).max_by(|&a, &b| {
                tree.node(a)
                    .wire_to_parent
                    .value()
                    .total_cmp(&tree.node(b).wire_to_parent.value())
            });
            // A root-only tree has no wire to split; stop padding.
            let Some(longest) = longest else { break };
            tree.insert_repeater(longest, "BUF_X16");
        }
        if had_repeaters {
            // Repeaters add delay on their paths: re-equalize.
            synth.equalize_skew(&mut tree)?;
        }
        Ok(tree)
    }
}

/// Die side (µm) giving the requested sinks-per-zone density on a square
/// grid of 50 µm zones.
fn zone_grid_side(leaves: usize, per_zone: f64) -> u32 {
    let zones = (leaves as f64 / per_zone).max(1.0);
    let grid = zones.sqrt().ceil() as u32;
    grid.max(1) * 50
}

/// Internal node count of an `arity`-ary bottom-up cluster tree over
/// `leaves` sinks (including the root/source).
fn cluster_internal_count(leaves: usize, arity: usize) -> usize {
    let mut count = 1; // source
    let mut level = leaves;
    while level > 1 {
        level = level.div_ceil(arity);
        if level > 1 {
            count += level;
        }
    }
    // The last clustering step merges into the source itself.
    count
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_counts_are_exact() {
        for (bench, n, l) in [
            (Benchmark::s13207(), 58, 50),
            (Benchmark::s15850(), 22, 19),
            (Benchmark::s35932(), 323, 246),
            (Benchmark::s38417(), 304, 228),
            (Benchmark::s38584(), 210, 169),
            (Benchmark::ispd09f31(), 328, 111),
            (Benchmark::ispd09f34(), 210, 69),
        ] {
            assert_eq!(bench.total_nodes, n, "{}", bench.name);
            assert_eq!(bench.leaf_count, l, "{}", bench.name);
        }
    }

    #[test]
    fn synthesized_counts_match_spec() {
        // The two smallest plus the repeater-heavy f34 keep this test fast.
        for bench in [
            Benchmark::s15850(),
            Benchmark::s13207(),
            Benchmark::ispd09f34(),
        ] {
            let tree = bench.synthesize(7);
            assert_eq!(tree.len(), bench.total_nodes, "{} n", bench.name);
            assert_eq!(tree.leaves().len(), bench.leaf_count, "{} |L|", bench.name);
            assert_eq!(tree.validate(|_| true), Ok(()));
        }
    }

    #[test]
    fn placement_is_seeded_and_reproducible() {
        let b = Benchmark::s13207();
        assert_eq!(b.sinks(1), b.sinks(1));
        assert_ne!(b.sinks(1), b.sinks(2));
    }

    #[test]
    fn different_circuits_differ_under_same_seed() {
        assert_ne!(
            Benchmark::s13207().sinks(1).len(),
            Benchmark::s15850().sinks(1).len()
        );
        let a = Benchmark::ispd09f31().sinks(1);
        let b =
            Benchmark::with_counts("other", 328, 111, Benchmark::ispd09f31().die_side_um).sinks(1);
        assert_ne!(a, b, "name participates in the seed");
    }

    #[test]
    fn die_sizes_match_zone_density() {
        // s13207: 50 sinks at 4.3 per 50 µm zone -> ~12 zones -> 4x4 grid.
        assert_eq!(Benchmark::s13207().die_side_um, 200);
        // s35932 uses the paper's 7.1 per-zone density.
        assert_eq!(Benchmark::s35932().die_side_um, 300);
    }

    #[test]
    fn all_returns_seven_in_paper_order() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].name, "s13207");
        assert_eq!(all[6].name, "ispd09f34");
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn zero_leaves_rejected() {
        let _ = Benchmark::with_counts("bad", 5, 0, 100);
    }

    #[test]
    #[should_panic(expected = "must exceed leaf count")]
    fn too_few_totals_rejected() {
        let _ = Benchmark::with_counts("bad", 10, 10, 100);
    }

    #[test]
    fn scale_benchmark_needs_no_repeater_padding() {
        let b = Benchmark::scale("scale4k", 4096);
        assert_eq!(b.leaf_count, 4096);
        assert_eq!(b.arity, 8);
        let tree = b.synthesize(42);
        assert_eq!(tree.len(), b.total_nodes, "no padding loop at scale");
        assert_eq!(tree.leaves().len(), 4096);
        assert_eq!(tree.validate(|_| true), Ok(()));
    }

    #[test]
    fn sink_caps_in_range() {
        for (_, cap) in Benchmark::s38584().sinks(3) {
            assert!((3.0..9.0).contains(&cap.value()));
        }
    }
}
