//! Elmore-delay timing analysis over the buffered clock tree.
//!
//! Arrival times are propagated from the clock source to every node,
//! tracking which clock edge each node sees: a negative-polarity cell
//! (inverter / ADI) flips the edge for its entire subtree, and rise/fall
//! delays differ, so polarity assignment genuinely perturbs arrival times —
//! the effect the paper's feasible-interval machinery controls.

use crate::tree::{ClockTree, NodeId, TreeError};
use crate::wire::WireModel;
use serde::{Deserialize, Serialize};
use std::fmt;
use wavemin_cells::characterize::ClockEdge;
use wavemin_cells::kind::Polarity;
use wavemin_cells::units::{Femtofarads, Picoseconds, Volts};
use wavemin_cells::{CellLibrary, Characterizer};

/// Supply voltage seen by each node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SupplyAssignment {
    /// Every node operates at the same supply (single power mode).
    Uniform(Volts),
    /// Per-node supply, indexed by [`NodeId`] (voltage islands).
    PerNode(Vec<Volts>),
}

impl SupplyAssignment {
    /// The supply at a node.
    ///
    /// # Panics
    ///
    /// Panics if a `PerNode` vector is shorter than the node index.
    #[must_use]
    pub fn at(&self, id: NodeId) -> Volts {
        match self {
            SupplyAssignment::Uniform(v) => *v,
            SupplyAssignment::PerNode(v) => v[id.0],
        }
    }
}

/// Per-node adjustments applied during analysis: process-variation
/// multipliers and ADB/ADI extra delay codes.
///
/// All vectors are indexed by node id; an empty vector means "no
/// adjustment".
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingAdjust {
    /// Multiplier on each node's cell delay (process variation).
    pub cell_delay_mult: Vec<f64>,
    /// Additive delay from an adjustable cell's delay code.
    pub extra_delay: Vec<Picoseconds>,
    /// Multiplier on each node's upstream wire resistance.
    pub wire_r_mult: Vec<f64>,
    /// Multiplier on each node's upstream wire capacitance.
    pub wire_c_mult: Vec<f64>,
}

impl TimingAdjust {
    /// An adjustment that changes nothing.
    #[must_use]
    pub fn identity() -> Self {
        Self::default()
    }

    fn delay_mult(&self, id: NodeId) -> f64 {
        self.cell_delay_mult.get(id.0).copied().unwrap_or(1.0)
    }

    fn extra(&self, id: NodeId) -> Picoseconds {
        self.extra_delay
            .get(id.0)
            .copied()
            .unwrap_or(Picoseconds::ZERO)
    }

    fn r_mult(&self, id: NodeId) -> f64 {
        self.wire_r_mult.get(id.0).copied().unwrap_or(1.0)
    }

    fn c_mult(&self, id: NodeId) -> f64 {
        self.wire_c_mult.get(id.0).copied().unwrap_or(1.0)
    }

    /// Sets the extra delay of one node (ADB/ADI delay code), growing the
    /// vector as needed.
    pub fn set_extra_delay(&mut self, id: NodeId, dt: Picoseconds) {
        if self.extra_delay.len() <= id.0 {
            self.extra_delay.resize(id.0 + 1, Picoseconds::ZERO);
        }
        self.extra_delay[id.0] = dt;
    }
}

/// Errors from timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingError {
    /// A node references a cell absent from the library.
    UnknownCell(NodeId, String),
    /// The tree failed structural validation.
    Structure(TreeError),
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::UnknownCell(n, c) => {
                write!(f, "node {n} references unknown cell '{c}'")
            }
            TimingError::Structure(e) => write!(f, "invalid clock tree: {e}"),
        }
    }
}

impl std::error::Error for TimingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TimingError::Structure(e) => Some(e),
            TimingError::UnknownCell(..) => None,
        }
    }
}

impl From<TreeError> for TimingError {
    fn from(e: TreeError) -> Self {
        TimingError::Structure(e)
    }
}

/// The result of a timing analysis pass: arrivals, slews, loads and the
/// clock edge seen at each node, all indexed by node id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timing {
    /// Arrival of the tracked clock edge at each node's input.
    pub input_arrival: Vec<Picoseconds>,
    /// Arrival of the clock edge at each node's output (= the flip-flop
    /// clock pin time for leaves).
    pub output_arrival: Vec<Picoseconds>,
    /// Input slew at each node.
    pub input_slew: Vec<Picoseconds>,
    /// Capacitive load driven by each node's cell.
    pub load: Vec<Femtofarads>,
    /// Clock edge seen at each node's input when the source rises.
    pub input_edge: Vec<ClockEdge>,
}

impl Timing {
    /// Runs the analysis.
    ///
    /// The tracked event is a **rising edge at the clock source**; negative
    /// polarity cells flip the edge for their fanout.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::UnknownCell`] if a node's cell is not in
    /// `lib`, or [`TimingError::Structure`] for a malformed tree.
    pub fn analyze(
        tree: &ClockTree,
        lib: &CellLibrary,
        chr: &Characterizer,
        wire: WireModel,
        supply: &SupplyAssignment,
        adjust: Option<&TimingAdjust>,
    ) -> Result<Self, TimingError> {
        tree.validate(|_| true)?;
        let n = tree.len();
        let identity = TimingAdjust::identity();
        let adj = adjust.unwrap_or(&identity);

        let mut input_arrival = vec![Picoseconds::ZERO; n];
        let mut output_arrival = vec![Picoseconds::ZERO; n];
        let mut input_slew = vec![Picoseconds::new(20.0); n];
        let mut load = vec![Femtofarads::ZERO; n];
        let mut input_edge = vec![ClockEdge::Rise; n];

        // Loads first (children's wires + input pins, or the FF load).
        for id in tree.ids() {
            let node = tree.node(id);
            let mut c = node.sink_cap;
            for &child in node.children() {
                let cn = tree.node(child);
                let cell = lib
                    .get(&cn.cell)
                    .ok_or_else(|| TimingError::UnknownCell(child, cn.cell.clone()))?;
                c += wire.capacitance(cn.wire_to_parent) * adj.c_mult(child) + cell.c_in();
            }
            load[id.0] = c;
        }

        for id in tree.topological_order() {
            let node = tree.node(id);
            let cell = lib
                .get(&node.cell)
                .ok_or_else(|| TimingError::UnknownCell(id, node.cell.clone()))?;
            let vdd = supply.at(id);
            let (t_d, slew_out) =
                chr.timing(cell, load[id.0], input_slew[id.0], vdd, input_edge[id.0]);
            output_arrival[id.0] = input_arrival[id.0] + t_d * adj.delay_mult(id) + adj.extra(id);
            let out_edge = match cell.polarity() {
                Polarity::Positive => input_edge[id.0],
                Polarity::Negative => match input_edge[id.0] {
                    ClockEdge::Rise => ClockEdge::Fall,
                    ClockEdge::Fall => ClockEdge::Rise,
                },
            };
            for &child in node.children() {
                let cn = tree.node(child);
                let ccell = lib
                    .get(&cn.cell)
                    .ok_or_else(|| TimingError::UnknownCell(child, cn.cell.clone()))?;
                let len = cn.wire_to_parent;
                let r_mult = adj.r_mult(child);
                let c_mult = adj.c_mult(child);
                let r = wire.resistance(len) * r_mult;
                let c = wire.capacitance(len) * c_mult;
                let wire_delay = 0.69 * (r * (c / 2.0 + ccell.c_in()));
                let wire_slew = 2.2 * (r * (c / 2.0 + ccell.c_in()));
                input_arrival[child.0] = output_arrival[id.0] + wire_delay + cn.delay_trim;
                input_slew[child.0] = Picoseconds::new(slew_out.value().hypot(wire_slew.value()));
                input_edge[child.0] = out_edge;
            }
        }

        Ok(Self {
            input_arrival,
            output_arrival,
            input_slew,
            load,
            input_edge,
        })
    }

    /// `(sink, arrival)` pairs for all leaves, in arena order.
    #[must_use]
    pub fn sink_arrivals(&self, tree: &ClockTree) -> Vec<(NodeId, Picoseconds)> {
        tree.leaves()
            .into_iter()
            .map(|id| (id, self.output_arrival[id.0]))
            .collect()
    }

    /// The clock skew: spread of arrival times over the sinks.
    #[must_use]
    pub fn skew(&self, tree: &ClockTree) -> Picoseconds {
        let leaves = tree.leaves();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for id in leaves {
            let a = self.output_arrival[id.0].value();
            min = min.min(a);
            max = max.max(a);
        }
        if min.is_finite() && max.is_finite() {
            Picoseconds::new(max - min)
        } else {
            Picoseconds::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use wavemin_cells::units::Microns;

    fn setup() -> (ClockTree, CellLibrary, Characterizer) {
        let mut t = ClockTree::new(Point::new(0.0, 0.0), "BUF_X32");
        let a = t.add_internal(
            t.root(),
            Point::new(50.0, 0.0),
            "BUF_X16",
            Microns::new(50.0),
        );
        t.add_leaf(
            a,
            Point::new(100.0, 0.0),
            "BUF_X4",
            Microns::new(60.0),
            Femtofarads::new(4.0),
        );
        t.add_leaf(
            a,
            Point::new(100.0, 10.0),
            "BUF_X4",
            Microns::new(60.0),
            Femtofarads::new(4.0),
        );
        (t, CellLibrary::nangate45(), Characterizer::default())
    }

    fn uniform() -> SupplyAssignment {
        SupplyAssignment::Uniform(Volts::new(1.1))
    }

    #[test]
    fn arrivals_increase_down_the_tree() {
        let (t, lib, chr) = setup();
        let timing =
            Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), None).unwrap();
        for (id, node) in t.iter() {
            if let Some(p) = node.parent() {
                assert!(
                    timing.input_arrival[id.0]
                        > timing.output_arrival[p.0] - Picoseconds::new(1e-9)
                );
            }
            assert!(timing.output_arrival[id.0] > timing.input_arrival[id.0]);
        }
    }

    #[test]
    fn symmetric_tree_has_zero_skew() {
        let (t, lib, chr) = setup();
        let timing =
            Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), None).unwrap();
        assert!(timing.skew(&t).value() < 1e-9);
    }

    #[test]
    fn inverter_flips_edge_for_subtree() {
        let (mut t, lib, chr) = setup();
        let leaf = t.leaves()[0];
        t.set_cell(leaf, "INV_X4");
        let timing =
            Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), None).unwrap();
        // The inverter's own input still sees the source edge...
        assert_eq!(timing.input_edge[leaf.0], ClockEdge::Rise);
        // ...and resizing changed arrival (INV_X4 differs from BUF_X4).
        assert!(timing.skew(&t).value() > 0.1);
    }

    #[test]
    fn internal_inverter_flips_children_edges() {
        let (mut t, lib, chr) = setup();
        let internal = t.node(t.root()).children()[0];
        t.set_cell(internal, "INV_X16");
        let timing =
            Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), None).unwrap();
        for leaf in t.leaves() {
            assert_eq!(timing.input_edge[leaf.0], ClockEdge::Fall);
        }
    }

    #[test]
    fn lower_supply_increases_arrival() {
        let (t, lib, chr) = setup();
        let hi = Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), None).unwrap();
        let lo = Timing::analyze(
            &t,
            &lib,
            &chr,
            WireModel::default(),
            &SupplyAssignment::Uniform(Volts::new(0.9)),
            None,
        )
        .unwrap();
        let leaf = t.leaves()[0];
        assert!(lo.output_arrival[leaf.0] > hi.output_arrival[leaf.0]);
    }

    #[test]
    fn per_node_supply_creates_skew() {
        let (t, lib, chr) = setup();
        let mut v = vec![Volts::new(1.1); t.len()];
        let slow_leaf = t.leaves()[0];
        v[slow_leaf.0] = Volts::new(0.9);
        let timing = Timing::analyze(
            &t,
            &lib,
            &chr,
            WireModel::default(),
            &SupplyAssignment::PerNode(v),
            None,
        )
        .unwrap();
        assert!(timing.skew(&t).value() > 0.5);
    }

    #[test]
    fn extra_delay_shifts_one_sink() {
        let (t, lib, chr) = setup();
        let mut adj = TimingAdjust::identity();
        let leaf = t.leaves()[1];
        adj.set_extra_delay(leaf, Picoseconds::new(12.0));
        let timing =
            Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), Some(&adj)).unwrap();
        assert!((timing.skew(&t).value() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn variation_multipliers_change_delay() {
        let (t, lib, chr) = setup();
        let mut adj = TimingAdjust::identity();
        adj.cell_delay_mult = vec![1.1; t.len()];
        let base = Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), None).unwrap();
        let slow =
            Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), Some(&adj)).unwrap();
        let leaf = t.leaves()[0];
        assert!(slow.output_arrival[leaf.0] > base.output_arrival[leaf.0]);
    }

    #[test]
    fn unknown_cell_is_reported() {
        let (mut t, lib, chr) = setup();
        let leaf = t.leaves()[0];
        t.set_cell(leaf, "MISSING_X1");
        let err =
            Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), None).unwrap_err();
        assert!(matches!(err, TimingError::UnknownCell(_, _)));
        assert!(err.to_string().contains("MISSING_X1"));
    }

    #[test]
    fn loads_include_wire_and_pin_caps() {
        let (t, lib, chr) = setup();
        let timing =
            Timing::analyze(&t, &lib, &chr, WireModel::default(), &uniform(), None).unwrap();
        let internal = t.node(t.root()).children()[0];
        // Two leaf children: 2 × (60 µm × 0.16 fF/µm + 1 fF) = 21.2 fF.
        let expect = 2.0 * (60.0 * 0.16 + 1.0);
        assert!((timing.load[internal.0].value() - expect).abs() < 1e-9);
        // Leaf load is the FF cap.
        let leaf = t.leaves()[0];
        assert_eq!(timing.load[leaf.0], Femtofarads::new(4.0));
    }
}
